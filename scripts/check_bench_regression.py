#!/usr/bin/env python
"""Fail when benchmarks regress past a threshold against a committed baseline.

Compares two ``pytest-benchmark`` JSON files (``--benchmark-json`` output) by
test fullname, using each benchmark's *min* time (the least noise-sensitive
statistic for CI runners).  A benchmark regresses when::

    current_min > baseline_min * (1 + threshold)

Benchmarks present on only one side are reported but never fail the check
(new benchmarks have no baseline yet; retired ones no longer matter).  The
baseline is refreshed through the ``workflow_dispatch`` path of the CI
workflow (``refresh-baseline`` input), which uploads a fresh
``BENCH_baseline.json`` artifact to commit as ``benchmarks/baseline.json``.

Absolute wall-clock times only compare meaningfully on similar hardware, so
when the two files were produced on machines with different CPU counts (e.g.
a 1-core dev container vs. a 4-vCPU CI runner) the comparison is reported but
never fails: the right fix is refreshing the baseline on the CI runner class,
not chasing a cross-machine ratio.

Usage::

    python scripts/check_bench_regression.py baseline.json current.json \
        [--threshold 0.25]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as handle:
        data = json.load(handle)
    benches = {bench["fullname"]: bench["stats"] for bench in data.get("benchmarks", [])}
    return benches, data.get("machine_info", {})


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline, baseline_machine = load_benchmarks(args.baseline)
    current, current_machine = load_benchmarks(args.current)
    comparable = baseline_machine.get("cpu", {}).get("count") == current_machine.get(
        "cpu", {}
    ).get("count")

    regressions = []
    width = max((len(name) for name in current), default=10)
    print("%-*s  %10s  %10s  %7s" % (width, "benchmark", "base min", "now min", "ratio"))
    for name in sorted(current):
        stats = current[name]
        base = baseline.get(name)
        if base is None:
            print("%-*s  %10s  %10.4f  %7s" % (width, name, "-", stats["min"], "new"))
            continue
        ratio = stats["min"] / base["min"] if base["min"] else float("inf")
        flag = "SLOW" if ratio > 1.0 + args.threshold else "ok"
        print(
            "%-*s  %10.4f  %10.4f  %6.2fx %s"
            % (width, name, base["min"], stats["min"], ratio, flag)
        )
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
    for name in sorted(set(baseline) - set(current)):
        print("%-*s  %10.4f  %10s  %7s" % (width, name, baseline[name]["min"], "-", "gone"))

    print()
    if regressions and not comparable:
        print(
            "WARNING: %d benchmark(s) beyond the %.0f%% threshold, but the "
            "baseline was produced on a machine with a different CPU count "
            "(%r vs %r) -- not failing.  Refresh benchmarks/baseline.json on "
            "this runner class (workflow_dispatch with refresh-baseline)."
            % (
                len(regressions),
                args.threshold * 100,
                baseline_machine.get("cpu", {}).get("count"),
                current_machine.get("cpu", {}).get("count"),
            )
        )
        return 0
    if regressions:
        print(
            "FAIL: %d benchmark(s) regressed more than %.0f%%:"
            % (len(regressions), args.threshold * 100)
        )
        for name, ratio in regressions:
            print("  %s: %.2fx" % (name, ratio))
        return 1
    print("OK: no benchmark regressed more than %.0f%%" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
