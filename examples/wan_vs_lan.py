"""LAN vs WAN: how propagation delays shape B-Neck's convergence.

Runs the same mass-arrival workload (Experiment 1 style) on the Small
transit-stub network configured as a LAN (1 microsecond links) and as a WAN
(1-10 ms router links), and reports time to quiescence, control packets and
packets per session for a few population sizes.

The paper's observations that this example lets you reproduce interactively:

* LAN quiescence times are nearly negligible until sessions start interacting;
* WAN quiescence times are dominated by probe-cycle round trips (tens of ms);
* the LAN scenario transmits more packets than the WAN scenario because its
  fast probe cycles react to more transient configurations.

Run with::

    python examples/wan_vs_lan.py [session counts ...]
"""

import sys

from repro.experiments.experiment1 import Experiment1Config, run_experiment1
from repro.experiments.reporting import format_experiment1_table


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    counts = tuple(int(value) for value in argv) if argv else (10, 50, 150)
    config = Experiment1Config(
        session_counts=counts,
        sizes=("small",),
        delay_models=("lan", "wan"),
        seed=17,
    )
    rows = run_experiment1(config, progress=lambda row: print("finished %r" % row))
    print()
    print(format_experiment1_table(rows))
    print()
    lan_rows = [row for row in rows if row.scenario_label.endswith("lan")]
    wan_rows = [row for row in rows if row.scenario_label.endswith("wan")]
    for lan_row, wan_row in zip(lan_rows, wan_rows):
        ratio = wan_row.time_to_quiescence / max(lan_row.time_to_quiescence, 1e-12)
        print(
            "%4d sessions: WAN takes %.0fx longer to become quiescent, "
            "LAN sends %.1fx the packets"
            % (
                lan_row.session_count,
                ratio,
                lan_row.total_packets / max(wan_row.total_packets, 1),
            )
        )


if __name__ == "__main__":
    main()
