"""Dynamic sessions: joins, leaves and rate changes, with API.Rate callbacks.

This example exercises the full session API of the paper on a parking-lot
topology, driven through the shared experiment entry point
(:class:`~repro.experiments.runner.ExperimentRunner` over a
:class:`~repro.experiments.runner.ScenarioSpec` with a custom topology):

* ``API.Join`` -- sessions arrive one after the other and B-Neck renegotiates
  the max-min rates each time;
* ``API.Change`` -- a session lowers its maximum requested rate, freeing
  bandwidth for the others;
* ``API.Leave`` -- a session departs and the remaining ones are upgraded;
* ``API.Rate`` -- every renegotiated rate is delivered to the application
  (a subclass of :class:`SessionApplication` that prints each notification).
  Deliveries are batched per simulation instant -- the protocol default --
  so an application sees one callback per renegotiated instant.

After every change the protocol becomes quiescent again: each
:meth:`~repro.experiments.runner.ExperimentRunner.checkpoint` validates the
allocation against the centralized oracle and reports the number of control
packets spent on the reconfiguration.

Run with::

    python examples/dynamic_sessions.py [--engine sequential|sharded[:K]]

The ``--engine`` flag picks the execution engine for the walkthrough.  This
example drives the session API directly with a custom printing application
(which cannot be replayed inside worker processes), so the parallel engine
falls back to its bit-identical serial sharded schedule here; use
``examples/experiment1_sweep.py --engine sharded:K/parallel`` or the sharded
benchmarks for workloads that exercise the persistent worker pool.
"""

import argparse
import sys

from repro import MBPS, parking_lot_topology
from repro.core import SessionApplication
from repro.experiments import ExperimentRunner, ScenarioSpec
from repro.simulator.clock import microseconds
from repro.simulator.sharding import parse_engine


class PrintingApplication(SessionApplication):
    """An application that logs every API.Rate notification it receives."""

    def on_rate(self, time, rate):
        print(
            "    [t=%7.3f ms] API.Rate(%s, %.2f Mbps)"
            % (time * 1e3, self.session_id, rate / MBPS)
        )


def run_step(runner, description):
    print("%s" % description)
    measurement = runner.checkpoint(description)
    assert measurement.validated
    print(
        "    quiescent again at t=%.3f ms (+%d control packets)"
        % (measurement.quiescence_time * 1e3, measurement.packets)
    )
    print()


def parse_arguments(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        default="sequential",
        help=(
            "execution engine: 'sequential' (default) or 'sharded[:K]'; "
            "'sharded:K/parallel' runs this walkthrough on the bit-identical "
            "serial sharded schedule (see the module docstring)"
        ),
    )
    return parser.parse_args(argv)


def main(argv=None):
    arguments = parse_arguments(argv)
    try:
        _kind, shards, parallel = parse_engine(arguments.engine)
    except ValueError as error:
        print("ERROR: %s" % error, file=sys.stderr)
        return 2
    engine = arguments.engine
    if parallel:
        engine = "sharded:%d" % shards
        print(
            "note: this walkthrough joins sessions with a custom printing "
            "application, which cannot be replayed in worker processes; "
            "running the bit-identical serial schedule %r instead" % engine
        )
    # Three 100 Mbps links in a row: r0 - r1 - r2 - r3.
    spec = ScenarioSpec(
        name="parking-lot",
        network_builder=lambda: parking_lot_topology(3, capacity=100 * MBPS),
        engine=engine,
    )
    with ExperimentRunner(spec) as runner:
        network, protocol = runner.network, runner.protocol

        def new_session(name, source_router, destination_router, demand=float("inf")):
            source = network.attach_host(source_router, 1000 * MBPS, microseconds(1))
            sink = network.attach_host(destination_router, 1000 * MBPS, microseconds(1))
            session = protocol.create_session(
                source.node_id, sink.node_id, demand=demand, session_id=name
            )
            application = PrintingApplication(name, demand)
            protocol.join(session, application=application)
            return application

        new_session("long", "r0", "r3")
        run_step(runner, "1. 'long' joins and gets the whole path (100 Mbps)")

        new_session("short-a", "r0", "r1")
        run_step(runner, "2. 'short-a' joins on the first hop: both drop to 50 Mbps")

        new_session("short-b", "r1", "r2")
        new_session("short-c", "r2", "r3")
        run_step(runner, "3. 'short-b' and 'short-c' join: every link is now a 50/50 bottleneck")

        protocol.change("short-a", 20 * MBPS)
        run_step(runner, "4. 'short-a' caps itself at 20 Mbps: 'long' can only use 50 elsewhere")

        protocol.leave("short-b")
        run_step(runner, "5. 'short-b' leaves: 'long' is still limited by the last hop")

        protocol.leave("short-c")
        run_step(runner, "6. 'short-c' leaves too: 'long' grows to 80 Mbps (short-a keeps 20)")

        print("final rates:")
        allocation = protocol.current_allocation()
        for session_id, rate in sorted(allocation.as_dict().items()):
            print("    %-8s %7.2f Mbps" % (session_id, rate / MBPS))
        print("total control packets over the whole run: %d" % runner.tracer.total)
    return 0


if __name__ == "__main__":
    sys.exit(main())
