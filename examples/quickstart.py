"""Quickstart: max-min fair rates on a dumbbell network with B-Neck.

Builds a dumbbell topology (a single 100 Mbps bottleneck between two sets of
edge routers), starts three sessions across the bottleneck plus one local
session that never touches it, runs the distributed B-Neck protocol until it
becomes quiescent, and compares the resulting rates against the centralized
oracle.

Run with::

    python examples/quickstart.py
"""

from repro import BNeckProtocol, MBPS, dumbbell_topology, validate_against_oracle
from repro.core import check_stability
from repro.simulator.clock import microseconds


def main():
    # A dumbbell: west0..west2 -- left == right -- east0..east2, with a
    # 100 Mbps bottleneck between "left" and "right".
    network = dumbbell_topology(side_count=3, bottleneck_capacity=100 * MBPS)
    protocol = BNeckProtocol(network)

    def add_session(name, source_router, destination_router, demand):
        source = network.attach_host(source_router, 1000 * MBPS, microseconds(1))
        sink = network.attach_host(destination_router, 1000 * MBPS, microseconds(1))
        session = protocol.create_session(
            source.node_id, sink.node_id, demand=demand, session_id=name
        )
        return protocol.join(session)

    # Three sessions across the bottleneck; one of them only wants 10 Mbps.
    applications = {
        "bulk-1": add_session("bulk-1", "west0", "east0", demand=float("inf")),
        "bulk-2": add_session("bulk-2", "west1", "east1", demand=float("inf")),
        "capped": add_session("capped", "west2", "east2", demand=10 * MBPS),
    }
    # A local session between two hosts on the same edge router: it is not
    # limited by the bottleneck at all.
    applications["local"] = add_session("local", "west0", "west1", demand=float("inf"))

    quiescence_time = protocol.run_until_quiescent()

    print("B-Neck became quiescent after %.3f ms of simulated time" % (quiescence_time * 1e3))
    print("control packets transmitted: %d" % protocol.tracer.total)
    print()
    print("max-min fair rates notified through API.Rate:")
    for name, application in sorted(applications.items()):
        print("  %-8s -> %7.2f Mbps" % (name, application.current_rate / MBPS))

    # The "capped" session keeps 10 Mbps, so the two bulk sessions share the
    # remaining 90 Mbps of the bottleneck: 45 Mbps each.  The local session
    # never crosses the bottleneck: it gets whatever its 1000 Mbps edge links
    # have left over after the bulk sessions' share.
    validation = validate_against_oracle(protocol)
    print()
    print("validation against the centralized oracle: %s" % ("OK" if validation.valid else "FAILED"))
    print("network stability (Definition 2): %s" % bool(check_stability(protocol)))


if __name__ == "__main__":
    main()
