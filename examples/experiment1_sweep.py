"""Full Experiment 1 sweep (Figure 5), at a user-selected scale.

By default this reproduces the scaled-down sweep used by the benchmark harness
(Small/Medium/Big networks, LAN and WAN, 10..1,000 sessions).  Users with time
to spare can raise the session counts and switch to the paper's full-size
Medium/Big topologies::

    python examples/experiment1_sweep.py --sizes small medium big --counts 10 100 1000 3000
    python examples/experiment1_sweep.py --sizes paper-medium --counts 100 1000

Every run is validated against the centralized oracle; the script exits with a
non-zero status if any validation fails.
"""

import argparse
import sys

from repro.experiments.experiment1 import Experiment1Config, run_experiment1
from repro.experiments.reporting import format_experiment1_table
from repro.workloads.scenarios import NETWORK_SIZES


def parse_arguments(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--counts",
        type=int,
        nargs="+",
        default=[10, 30, 100, 300, 1000],
        help="numbers of sessions to sweep",
    )
    parser.add_argument(
        "--sizes",
        nargs="+",
        default=["small", "medium", "big"],
        choices=sorted(NETWORK_SIZES),
        help="network sizes to sweep",
    )
    parser.add_argument(
        "--delay-models",
        nargs="+",
        default=["lan", "wan"],
        choices=["lan", "wan"],
        help="delay scenarios to sweep",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine",
        default="sequential",
        help=(
            "execution engine for every run: 'sequential' (default), "
            "'sharded[:K]' (serial lockstep shards) or 'sharded:K/parallel' "
            "(persistent worker pool, one process per shard)"
        ),
    )
    return parser.parse_args(argv)


def main(argv=None):
    arguments = parse_arguments(argv)
    try:
        config = Experiment1Config(
            session_counts=tuple(arguments.counts),
            sizes=tuple(arguments.sizes),
            delay_models=tuple(arguments.delay_models),
            seed=arguments.seed,
            engine=arguments.engine,
        )
    except ValueError as error:
        print("ERROR: %s" % error, file=sys.stderr)
        return 2
    rows = run_experiment1(config, progress=lambda row: print("finished %r" % row))
    print()
    print(format_experiment1_table(rows))
    if not all(row.validated for row in rows):
        print("ERROR: some runs did not match the centralized oracle", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
