"""B-Neck against the non-quiescent protocols (Experiment 3 in miniature).

Runs an identical churn workload (a mass join with a partial leave in the first
five milliseconds) under B-Neck, BFYZ, CG and RCP on the Small/LAN network, and
prints, for each protocol:

* when (and whether) it converged to within 1% of the max-min fair rates;
* whether it became quiescent;
* the control packets it transmitted, in total and in the final third of the
  run (where B-Neck transmits nothing at all).

Run with::

    python examples/baseline_comparison.py
"""

from repro.experiments.experiment3 import Experiment3Config, run_experiment3
from repro.experiments.reporting import format_experiment3_table


def main():
    config = Experiment3Config(
        size="small",
        initial_sessions=120,
        leave_count=12,
        churn_window=5e-3,
        sample_interval=3e-3,
        horizon=60e-3,
        protocols=("bneck", "bfyz", "cg", "rcp"),
        seed=23,
    )
    result = run_experiment3(
        config, progress=lambda series: print("finished %s" % series.name)
    )
    print()
    print(format_experiment3_table(result))
    print()
    print("summary:")
    tail_start = 2.0 * config.horizon / 3.0
    for name in result.protocol_names():
        series = result.series(name)
        tail_packets = sum(
            total for start, total in series.packets_series if start >= tail_start
        )
        convergence = (
            "%.1f ms" % (series.convergence_time * 1e3)
            if series.convergence_time is not None
            else "never (within the horizon)"
        )
        print(
            "  %-6s converged: %-26s quiescent: %-3s packets: %6d (last third: %d)"
            % (
                name,
                convergence,
                "yes" if series.quiescent else "no",
                series.total_packets,
                tail_packets,
            )
        )


if __name__ == "__main__":
    main()
