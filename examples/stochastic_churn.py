"""Stochastic scenario walkthrough: open-loop churn on any execution engine.

Runs one of the stochastic workloads from :mod:`repro.workloads.stochastic`
through the shared :class:`~repro.experiments.runner.ExperimentRunner` entry
point and prints one row per round (quiescence time, control packets,
``API.Rate`` callbacks, oracle validation):

* ``poisson-churn`` -- Poisson session arrivals with exponential holding
  times (sustained open-loop churn; the population climbs toward the
  M/M/inf steady state);
* ``flash-crowd`` -- a burst of correlated joins whose destinations all land
  in one stub-domain subtree, then drains away;
* ``heavy-tailed-demand`` -- storms of rate changes with Pareto-distributed
  new demands;
* ``capacity-dynamics`` -- deep link-capacity cuts and a final restore, each
  validated against the water-filling oracle on the updated network.

Every scenario is resolved into broadcastable action batches on the driver,
so the same seed replays bit-identically on every engine::

    python examples/stochastic_churn.py --workload poisson-churn
    python examples/stochastic_churn.py --workload capacity-dynamics --engine sharded:4
    python examples/stochastic_churn.py --workload flash-crowd --engine sharded:2/parallel

The script exits non-zero if any round fails oracle validation.
"""

import argparse
import sys

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.workloads.scenarios import NETWORK_SIZES
from repro.workloads.stochastic import WORKLOADS


def parse_arguments(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload",
        default="poisson-churn",
        choices=sorted(WORKLOADS),
        help="stochastic scenario to run (default: poisson-churn)",
    )
    parser.add_argument(
        "--size",
        default="small",
        choices=sorted(NETWORK_SIZES),
        help="transit-stub topology size",
    )
    parser.add_argument(
        "--delay-model", default="lan", choices=["lan", "wan"], help="delay scenario"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--engine",
        default="sequential",
        help=(
            "execution engine: 'sequential' (default), 'sharded[:K]' (serial "
            "lockstep shards) or 'sharded:K/parallel' (persistent worker "
            "pool); the scenario replays bit-identically on all of them"
        ),
    )
    return parser.parse_args(argv)


def main(argv=None):
    arguments = parse_arguments(argv)
    try:
        spec = ScenarioSpec(
            size=arguments.size,
            delay_model=arguments.delay_model,
            seed=arguments.seed,
            engine=arguments.engine,
            workload=arguments.workload,
        )
    except ValueError as error:
        print("ERROR: %s" % error, file=sys.stderr)
        return 2

    with ExperimentRunner(spec) as runner:
        try:
            measurements = runner.run_scenario()
        except RuntimeError as error:
            # run_scenario fails fast on the first round whose allocation
            # diverges from the oracles.
            print("ERROR: %s" % error, file=sys.stderr)
            return 1
        rows = [
            (
                measurement.description,
                measurement.quiescence_time * 1e3,
                measurement.packets,
                measurement.rate_callbacks,
                "yes" if measurement.validated else "NO",
            )
            for measurement in measurements
        ]
        print(
            format_table(
                ("round", "quiescent at [ms]", "packets", "API.Rate", "validated"),
                rows,
            )
        )
        print(
            "%d sessions active at the end; %d control packets total"
            % (len(runner.active_ids), runner.tracer.total)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
