"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works in offline environments that lack the
``wheel`` package required by PEP 517 editable builds
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of B-Neck: a distributed and quiescent max-min fair algorithm"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
