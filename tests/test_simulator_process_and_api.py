"""Unit tests for the Process actor base class and the session application API."""

import pytest

from repro.core.api import RateNotification, SessionApplication
from repro.network.units import MBPS
from repro.simulator.process import Process
from repro.simulator.simulation import Simulator


class Echo(Process):
    """A process that records everything it receives."""

    def __init__(self, simulator, name):
        super(Echo, self).__init__(simulator, name)
        self.received = []

    def receive(self, message, sender):
        self.received.append((message, sender))


class TestProcess(object):
    def test_send_delivers_after_delay(self):
        simulator = Simulator()
        alice = Echo(simulator, "alice")
        bob = Echo(simulator, "bob")
        alice.send(bob, "hello", delay=0.25)
        assert bob.received == []
        simulator.run_until_quiescent()
        assert bob.received == [("hello", alice)]
        assert simulator.now == pytest.approx(0.25)

    def test_send_uses_message_type_as_default_tag(self):
        simulator = Simulator()
        alice = Echo(simulator, "alice")
        bob = Echo(simulator, "bob")
        event = alice.send(bob, {"kind": "probe"}, delay=0.1)
        assert event.tag == "dict"
        tagged = alice.send(bob, "x", delay=0.1, tag="custom")
        assert tagged.tag == "custom"

    def test_call_later_runs_local_timer(self):
        simulator = Simulator()
        alice = Echo(simulator, "alice")
        fired = []
        alice.call_later(0.5, lambda: fired.append(simulator.now))
        simulator.run_until_quiescent()
        assert fired == [0.5]

    def test_base_receive_is_abstract(self):
        simulator = Simulator()
        process = Process(simulator, "bare")
        with pytest.raises(NotImplementedError):
            process.receive("anything", None)

    def test_repr_mentions_name(self):
        assert "alice" in repr(Echo(Simulator(), "alice"))


class TestSessionApplication(object):
    def test_records_notifications_in_order(self):
        application = SessionApplication("s1", 100 * MBPS)
        assert application.current_rate is None
        assert application.notification_count == 0
        application.deliver_rate(0.001, 40 * MBPS)
        application.deliver_rate(0.002, 25 * MBPS)
        assert application.notification_count == 2
        assert application.current_rate == 25 * MBPS
        assert [n.rate for n in application.notifications] == [40 * MBPS, 25 * MBPS]

    def test_on_rate_hook_is_invoked(self):
        calls = []

        class Reactive(SessionApplication):
            def on_rate(self, time, rate):
                calls.append((time, rate))

        application = Reactive("s1", 10 * MBPS)
        application.deliver_rate(0.5, 5 * MBPS)
        assert calls == [(0.5, 5 * MBPS)]

    def test_notification_record_fields(self):
        notification = RateNotification(0.25, "s1", 12.5)
        assert notification.time == 0.25
        assert notification.session_id == "s1"
        assert notification.rate == 12.5
        assert "s1" in repr(notification)
