"""Unit tests for the gt-itm-style transit-stub generator."""

import pytest

from repro.network.transit_stub import (
    BIG_PARAMETERS,
    HOST_LINK_CAPACITY,
    LAN,
    LAN_LINK_DELAY,
    MEDIUM_PARAMETERS,
    SMALL_PARAMETERS,
    STUB_LINK_CAPACITY,
    TRANSIT_LINK_CAPACITY,
    TransitStubParameters,
    WAN,
    WAN_MAX_DELAY,
    WAN_MIN_DELAY,
    generate_transit_stub,
    medium_network,
    small_network,
    stub_routers,
    transit_routers,
)


def test_parameter_router_counts():
    assert SMALL_PARAMETERS.total_routers() == 110
    assert TransitStubParameters(1, 2, 3, 4).total_routers() == 2 + 2 * 3 * 4
    assert MEDIUM_PARAMETERS.total_routers() > SMALL_PARAMETERS.total_routers()
    assert BIG_PARAMETERS.total_routers() > MEDIUM_PARAMETERS.total_routers()


def test_parameters_reject_non_positive_values():
    with pytest.raises(ValueError):
        TransitStubParameters(0, 1, 1, 1)


def test_small_network_matches_parameters_and_is_connected():
    network = small_network(LAN, seed=3)
    assert network.number_of_nodes() == SMALL_PARAMETERS.total_routers()
    assert network.is_connected()


def test_tiers_partition_routers():
    network = small_network(LAN, seed=1)
    stubs = set(stub_routers(network))
    transits = set(transit_routers(network))
    assert stubs
    assert transits
    assert not stubs & transits
    assert len(stubs) + len(transits) == network.number_of_nodes()


def test_capacity_tiers():
    network = small_network(LAN, seed=2)
    transits = set(transit_routers(network))
    for link in network.links():
        if link.source in transits or link.target in transits:
            assert link.capacity == TRANSIT_LINK_CAPACITY
        else:
            assert link.capacity == STUB_LINK_CAPACITY
    assert HOST_LINK_CAPACITY < STUB_LINK_CAPACITY < TRANSIT_LINK_CAPACITY


def test_lan_delays_are_constant():
    network = small_network(LAN, seed=4)
    assert all(link.propagation_delay == LAN_LINK_DELAY for link in network.links())


def test_wan_delays_are_in_range_and_not_constant():
    network = small_network(WAN, seed=5)
    delays = [link.propagation_delay for link in network.links()]
    assert all(WAN_MIN_DELAY <= delay <= WAN_MAX_DELAY for delay in delays)
    assert len(set(delays)) > 1


def test_generation_is_deterministic_per_seed():
    first = small_network(LAN, seed=9)
    second = small_network(LAN, seed=9)
    assert {link.endpoints for link in first.links()} == {link.endpoints for link in second.links()}
    third = small_network(LAN, seed=10)
    assert {link.endpoints for link in first.links()} != {link.endpoints for link in third.links()}


def test_every_stub_domain_reaches_the_transit_core():
    network = medium_network(LAN, seed=6)
    assert network.is_connected()


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        generate_transit_stub(SMALL_PARAMETERS, scenario="metro")


def test_multi_domain_topologies_are_connected():
    parameters = TransitStubParameters(3, 4, 2, 3)
    network = generate_transit_stub(parameters, scenario=LAN, seed=8)
    assert network.number_of_nodes() == parameters.total_routers()
    assert network.is_connected()
