"""End-to-end integration tests on the paper's evaluation topologies.

These runs exercise the whole stack together -- transit-stub topology
generation, workload generation, the distributed protocol, quiescence
detection, packet accounting and oracle validation -- on both LAN and WAN
scenarios and through several rounds of churn, mimicking (at reduced scale) the
paper's Experiments 1 and 2.
"""

import pytest

from repro.core.protocol import BNeckProtocol
from repro.core.quiescence import check_stability
from repro.core.validation import validate_against_oracle
from repro.network.transit_stub import LAN, WAN
from repro.network.units import MBPS
from repro.simulator.tracing import PacketTracer
from repro.workloads.dynamics import DynamicPhase, apply_phase
from repro.workloads.generator import WorkloadGenerator, mixed_demand, uniform_demand
from repro.workloads.scenarios import build_network


@pytest.mark.parametrize("delay_model", [LAN, WAN])
def test_mass_arrival_on_small_transit_stub(delay_model):
    network = build_network("small", delay_model, seed=41)
    tracer = PacketTracer(interval=5e-3)
    protocol = BNeckProtocol(network, tracer=tracer)
    generator = WorkloadGenerator(network, seed=41)
    generator.populate(
        protocol,
        80,
        join_window=(0.0, 1e-3),
        demand_sampler=mixed_demand(0.5, 1 * MBPS, 80 * MBPS),
    )
    quiescence_time = protocol.run_until_quiescent()

    assert quiescence_time > 0
    assert protocol.quiescent
    assert check_stability(protocol).stable
    assert validate_against_oracle(protocol).valid
    assert len(protocol.registry) == 80
    # Every active session got at least one API.Rate notification.
    notified = {notification.session_id for notification in protocol.notifications}
    assert {session.session_id for session in protocol.registry} <= notified
    # Packet accounting is closed: the interval series sums to the total.
    assert sum(total for _, total in tracer.totals_per_interval()) == tracer.total


def test_five_phase_churn_on_small_network_stays_correct():
    network = build_network("small", LAN, seed=43)
    protocol = BNeckProtocol(network)
    generator = WorkloadGenerator(network, seed=43)
    demand_sampler = uniform_demand(1 * MBPS, 80 * MBPS)

    phases = [
        DynamicPhase("join", joins=60),
        DynamicPhase("leave", leaves=12),
        DynamicPhase("change", changes=12),
        DynamicPhase("join2", joins=12),
        DynamicPhase("mixed", joins=12, leaves=12, changes=12),
    ]
    active_ids = []
    start_time = 0.0
    expected_active = 0
    for phase in phases:
        outcome = apply_phase(
            protocol,
            generator,
            phase,
            active_ids,
            start_time=start_time,
            demand_sampler=demand_sampler,
        )
        removed = set(outcome.left_ids)
        active_ids = [sid for sid in active_ids if sid not in removed] + outcome.joined_ids
        expected_active = expected_active - len(outcome.left_ids) + len(outcome.joined_ids)

        # After every single phase the protocol is quiescent, stable and
        # exactly max-min fair for the surviving configuration.
        assert protocol.quiescent
        assert check_stability(protocol).stable
        assert validate_against_oracle(protocol).valid
        assert len(protocol.registry) == expected_active
        start_time = outcome.quiescence_time + 1e-3

    # 60 join, 12 leave, 12 change (no membership effect), 12 join, then a
    # mixed phase joining and leaving 12 each: 60 sessions remain.
    assert expected_active == 60


def test_wan_and_lan_reach_the_same_rates():
    """Propagation delays change timing and packet counts, never the rates."""
    allocations = {}
    quiescence = {}
    for delay_model in (LAN, WAN):
        network = build_network("small", delay_model, seed=47)
        protocol = BNeckProtocol(network)
        generator = WorkloadGenerator(network, seed=47)
        generator.populate(protocol, 50, join_window=(0.0, 1e-3))
        quiescence[delay_model] = protocol.run_until_quiescent()
        allocations[delay_model] = protocol.current_allocation()
        assert validate_against_oracle(protocol).valid
    assert allocations[LAN].equals(allocations[WAN])
    assert quiescence[WAN] > quiescence[LAN]


def test_paper_scale_medium_network_spot_check():
    """A single heavier run on the Medium topology (kept small enough for CI)."""
    network = build_network("medium", LAN, seed=53)
    protocol = BNeckProtocol(network)
    generator = WorkloadGenerator(network, seed=53)
    generator.populate(
        protocol, 150, join_window=(0.0, 1e-3), demand_sampler=mixed_demand(0.7, 1 * MBPS, 80 * MBPS)
    )
    protocol.run_until_quiescent()
    assert validate_against_oracle(protocol).valid
    assert check_stability(protocol).stable
    # The per-session control-packet cost stays moderate (the paper reports a
    # few packets per session for static workloads; mass simultaneous arrival
    # costs more but stays within the same order of magnitude).
    assert protocol.tracer.packets_per_session() < 500
