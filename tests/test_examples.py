"""Smoke tests for the runnable examples.

Each example is loaded from the ``examples/`` directory and executed with a
small workload, so the documented entry points keep working as the library
evolves.
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name + ".py"))
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs_and_validates(capsys):
    module = load_example("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "quiescent" in output
    assert "validation against the centralized oracle: OK" in output
    assert "45.00 Mbps" in output


def test_dynamic_sessions_walkthrough(capsys):
    module = load_example("dynamic_sessions")
    assert module.main([]) == 0
    output = capsys.readouterr().out
    assert "API.Rate" in output
    assert "80.00 Mbps" in output
    assert "quiescent again" in output


def test_dynamic_sessions_sharded_engine(capsys):
    module = load_example("dynamic_sessions")
    assert module.main(["--engine", "sharded:2"]) == 0
    output = capsys.readouterr().out
    assert "80.00 Mbps" in output


def test_dynamic_sessions_parallel_engine_falls_back_to_serial(capsys):
    module = load_example("dynamic_sessions")
    assert module.main(["--engine", "sharded:2/parallel"]) == 0
    output = capsys.readouterr().out
    assert "bit-identical serial schedule" in output
    assert "80.00 Mbps" in output


def test_dynamic_sessions_rejects_bad_engine(capsys):
    module = load_example("dynamic_sessions")
    assert module.main(["--engine", "sharded:0"]) == 2


def test_wan_vs_lan_small_counts(capsys):
    module = load_example("wan_vs_lan")
    module.main(["10"])
    output = capsys.readouterr().out
    assert "small-lan" in output
    assert "small-wan" in output
    assert "longer to become quiescent" in output


def test_experiment1_sweep_parallel_engine(capsys):
    module = load_example("experiment1_sweep")
    exit_code = module.main(
        ["--counts", "5", "--sizes", "small", "--delay-models", "lan",
         "--engine", "sharded:2/parallel"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "small-lan" in output


def test_experiment1_sweep_rejects_bad_engine(capsys):
    module = load_example("experiment1_sweep")
    exit_code = module.main(
        ["--counts", "5", "--sizes", "small", "--delay-models", "lan",
         "--engine", "sharded:2/turbo"]
    )
    assert exit_code == 2
    assert "sharded:K[/parallel]" in capsys.readouterr().err


def test_experiment1_sweep_tiny(capsys):
    module = load_example("experiment1_sweep")
    exit_code = module.main(["--counts", "5", "--sizes", "small", "--delay-models", "lan"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "small-lan" in output


def test_experiment1_sweep_rejects_unknown_size():
    module = load_example("experiment1_sweep")
    with pytest.raises(SystemExit):
        module.parse_arguments(["--sizes", "galactic"])


def test_stochastic_churn_default_workload(capsys):
    module = load_example("stochastic_churn")
    assert module.main([]) == 0
    output = capsys.readouterr().out
    assert "poisson-churn segment" in output
    assert "sessions active at the end" in output


def test_stochastic_churn_capacity_dynamics_parallel_engine(capsys):
    module = load_example("stochastic_churn")
    assert module.main(
        ["--workload", "capacity-dynamics", "--engine", "sharded:2/parallel",
         "--seed", "13"]
    ) == 0
    output = capsys.readouterr().out
    assert "capacity-dynamics restore" in output
    assert "NO" not in output


def test_stochastic_churn_rejects_bad_engine():
    module = load_example("stochastic_churn")
    assert module.main(["--engine", "sharded:0"]) == 2
