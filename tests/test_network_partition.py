"""Tests for the topology-aware shard partitioner."""

import math

import pytest

from repro.network.partition import ShardPlan, partition_network
from repro.network.topology import dumbbell_topology, line_topology
from repro.network.transit_stub import (
    STUB_TIER,
    TRANSIT_TIER,
    medium_network,
    small_network,
)
from repro.simulator.clock import microseconds
from repro.network.units import MBPS


class TestTransitStubPartition(object):
    def test_covers_every_router(self):
        network = small_network("lan", seed=0)
        plan = partition_network(network, 4)
        for node in network.routers():
            assert 0 <= plan.shard_of(node.node_id) < 4

    def test_single_shard_has_no_cut_links(self):
        network = small_network("lan", seed=0)
        plan = partition_network(network, 1)
        assert plan.cut_links == []
        assert plan.lookahead == math.inf
        assert set(plan.shard_of(n.node_id) for n in network.routers()) == {0}

    def test_cut_links_are_transit_to_transit_only(self):
        network = medium_network("lan", seed=2)
        plan = partition_network(network, 4)
        assert plan.cut_links
        for link in plan.cut_links:
            assert network.node(link.source).tier == TRANSIT_TIER
            assert network.node(link.target).tier == TRANSIT_TIER

    def test_stub_domains_follow_their_sponsor(self):
        network = small_network("lan", seed=1)
        plan = partition_network(network, 4)
        # Every stub router must share its shard with the transit router that
        # anchors its cluster: walking stub-only edges never crosses shards.
        for node in network.routers():
            if node.tier != STUB_TIER:
                continue
            for neighbor in network.neighbors(node.node_id):
                if network.node(neighbor).tier == STUB_TIER:
                    assert plan.shard_of(neighbor) == plan.shard_of(node.node_id)

    def test_shards_are_balanced(self):
        network = medium_network("lan", seed=0)
        plan = partition_network(network, 4)
        sizes = plan.shard_sizes()
        assert len(sizes) == 4
        assert all(size > 0 for size in sizes)
        # Largest-first greedy placement keeps shards within one cluster of
        # each other; clusters of the medium network are ~28 routers each.
        assert max(sizes) - min(sizes) <= max(sizes) // 2 + 1

    def test_lookahead_is_min_cut_control_delay(self):
        network = medium_network("lan", seed=0)
        plan = partition_network(network, 2)
        expected = min(link.control_delay() for link in plan.cut_links)
        assert plan.lookahead == expected
        assert plan.lookahead > 0

    def test_deterministic_for_a_given_network(self):
        first = partition_network(small_network("lan", seed=3), 4)
        second = partition_network(small_network("lan", seed=3), 4)
        routers = [n.node_id for n in first.network.routers()]
        assert [first.shard_of(r) for r in routers] == [
            second.shard_of(r) for r in routers
        ]


class TestHostResolution(object):
    def test_hosts_inherit_their_attached_router(self):
        network = small_network("lan", seed=0)
        plan = partition_network(network, 4)
        router = network.routers()[5].node_id
        host = network.attach_host(router, 100 * MBPS, microseconds(1))
        assert plan.shard_of(host.node_id) == plan.shard_of(router)

    def test_attaching_hosts_never_changes_the_lookahead(self):
        network = small_network("lan", seed=0)
        plan = partition_network(network, 4)
        lookahead = plan.lookahead
        for index in range(6):
            network.attach_host(
                network.routers()[index].node_id, 100 * MBPS, microseconds(1)
            )
        # Cut links were computed over the router graph; host access links can
        # never cross shards.
        assert plan.lookahead == lookahead
        for link in network.links():
            if network.node(link.source).is_host or network.node(link.target).is_host:
                assert plan.shard_of(link.source) == plan.shard_of(link.target)

    def test_unattached_node_raises(self):
        network = line_topology(3)
        plan = partition_network(network, 2)
        with pytest.raises(KeyError):
            plan.shard_of("no-such-node")


class TestGenericTopologies(object):
    def test_networks_without_transit_tier_partition_per_router(self):
        network = dumbbell_topology(side_count=4, bottleneck_capacity=100 * MBPS,
                                    delay=microseconds(1))
        plan = partition_network(network, 2)
        shards = set(plan.shard_of(n.node_id) for n in network.routers())
        assert shards == {0, 1}
        assert plan.lookahead > 0

    def test_more_shards_than_clusters_leaves_some_empty(self):
        network = line_topology(2)
        plan = partition_network(network, 4)
        sizes = plan.shard_sizes()
        assert sum(sizes) == 2
        assert len(sizes) == 4

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            partition_network(line_topology(2), 0)

    def test_plan_repr_mentions_shards(self):
        plan = partition_network(line_topology(3), 2)
        assert isinstance(plan, ShardPlan)
        assert "ShardPlan" in repr(plan)
