"""Unit tests for the synthetic topology builders."""

import pytest

from repro.network.topology import (
    dumbbell_topology,
    line_topology,
    parking_lot_topology,
    random_mesh_topology,
    single_link_topology,
    star_topology,
    tree_topology,
)
from repro.network.units import MBPS
from repro.simulator.random_source import RandomSource


def test_single_link_topology():
    network = single_link_topology(capacity=42 * MBPS)
    assert network.number_of_nodes() == 2
    assert network.link("r0", "r1").capacity == 42 * MBPS
    assert network.is_connected()


def test_line_topology_structure():
    network = line_topology(5)
    assert network.number_of_nodes() == 5
    # 4 undirected segments -> 8 directed links.
    assert network.number_of_links() == 8
    assert network.has_link("r2", "r3")
    assert not network.has_link("r0", "r2")
    assert network.is_connected()


def test_line_topology_requires_two_routers():
    with pytest.raises(ValueError):
        line_topology(1)


def test_parking_lot_is_a_line_of_hops():
    network = parking_lot_topology(4)
    assert network.number_of_nodes() == 5
    assert network.has_link("r3", "r4")


def test_star_topology_structure():
    network = star_topology(6)
    assert network.number_of_nodes() == 7
    assert all(network.has_link("hub", "leaf%d" % index) for index in range(6))
    assert not network.has_link("leaf0", "leaf1")
    assert network.is_connected()


def test_star_topology_requires_a_leaf():
    with pytest.raises(ValueError):
        star_topology(0)


def test_dumbbell_topology_structure():
    network = dumbbell_topology(side_count=2, bottleneck_capacity=10 * MBPS)
    assert network.has_link("left", "right")
    assert network.link("left", "right").capacity == 10 * MBPS
    # Edge links are faster than the bottleneck by default.
    assert network.link("west0", "left").capacity > 10 * MBPS
    assert network.number_of_nodes() == 6
    assert network.is_connected()


def test_dumbbell_explicit_edge_capacity():
    network = dumbbell_topology(side_count=1, bottleneck_capacity=10 * MBPS, edge_capacity=20 * MBPS)
    assert network.link("west0", "left").capacity == 20 * MBPS


def test_dumbbell_requires_a_side_router():
    with pytest.raises(ValueError):
        dumbbell_topology(0)


def test_tree_topology_counts():
    network = tree_topology(depth=2, fanout=3)
    # 1 + 3 + 9 routers.
    assert network.number_of_nodes() == 13
    assert network.is_connected()


def test_tree_depth_zero_is_single_router():
    network = tree_topology(depth=0, fanout=2)
    assert network.number_of_nodes() == 1


def test_tree_rejects_bad_parameters():
    with pytest.raises(ValueError):
        tree_topology(depth=-1, fanout=2)
    with pytest.raises(ValueError):
        tree_topology(depth=1, fanout=0)


def test_random_mesh_is_connected_for_any_seed():
    for seed in range(5):
        network = random_mesh_topology(20, random_source=RandomSource(seed))
        assert network.is_connected()
        assert network.number_of_nodes() == 20


def test_random_mesh_extra_edges_increase_with_probability():
    sparse = random_mesh_topology(15, extra_edge_probability=0.0, random_source=RandomSource(1))
    dense = random_mesh_topology(15, extra_edge_probability=0.9, random_source=RandomSource(1))
    assert dense.number_of_links() > sparse.number_of_links()
    # With no extra edges the mesh is exactly a spanning tree: 14 segments.
    assert sparse.number_of_links() == 2 * 14


def test_random_mesh_is_deterministic_per_seed():
    first = random_mesh_topology(12, random_source=RandomSource(7))
    second = random_mesh_topology(12, random_source=RandomSource(7))
    assert {link.endpoints for link in first.links()} == {link.endpoints for link in second.links()}


def test_random_mesh_requires_two_routers():
    with pytest.raises(ValueError):
        random_mesh_topology(1)
