"""Unit tests for bottleneck analysis and max-min verification."""

import pytest

from repro.fairness.allocation import RateAllocation
from repro.fairness.bottleneck import analyze_bottlenecks, link_load, session_bottlenecks
from repro.fairness.verification import is_max_min_fair, verify_allocation
from repro.fairness.waterfilling import water_filling
from repro.network.units import MBPS
from tests.conftest import make_session


@pytest.fixture
def parking_lot_case(parking_lot_network):
    sessions = [
        make_session(parking_lot_network, "long", "r0", "r3"),
        make_session(parking_lot_network, "shortA", "r0", "r1"),
        make_session(parking_lot_network, "shortB", "r0", "r1"),
        make_session(parking_lot_network, "shortC", "r1", "r2"),
    ]
    allocation = water_filling(sessions)
    return parking_lot_network, sessions, allocation


class TestBottleneckAnalysis(object):
    def test_link_load(self, parking_lot_case):
        network, sessions, allocation = parking_lot_case
        first_hop = network.link("r0", "r1")
        assert link_load(sessions, allocation, first_hop) == pytest.approx(100 * MBPS)

    def test_session_bottlenecks_identifies_the_tight_link(self, parking_lot_case):
        network, sessions, allocation = parking_lot_case
        long_session = sessions[0]
        bottlenecks = session_bottlenecks(long_session, sessions, allocation)
        assert network.link("r0", "r1") in bottlenecks
        assert network.link("r2", "r3") not in bottlenecks

    def test_restricted_and_unrestricted_sets(self, parking_lot_case):
        network, sessions, allocation = parking_lot_case
        analysis = analyze_bottlenecks(sessions, allocation)
        first_hop = network.link("r0", "r1").endpoints
        second_hop = network.link("r1", "r2").endpoints
        assert analysis.restricted[first_hop] == {"long", "shortA", "shortB"}
        assert analysis.unrestricted[first_hop] == set()
        # On the second hop the long session is restricted elsewhere; shortC
        # is the one restricted here.
        assert analysis.restricted[second_hop] == {"shortC"}
        assert analysis.unrestricted[second_hop] == {"long"}

    def test_bottleneck_rates(self, parking_lot_case):
        network, sessions, allocation = parking_lot_case
        analysis = analyze_bottlenecks(sessions, allocation)
        first_hop = network.link("r0", "r1").endpoints
        assert analysis.bottleneck_rate[first_hop] == pytest.approx(100 * MBPS / 3.0)

    def test_system_bottlenecks(self, parking_lot_case):
        network, sessions, allocation = parking_lot_case
        analysis = analyze_bottlenecks(sessions, allocation)
        system = {link.endpoints for link in analysis.system_bottlenecks()}
        assert network.link("r0", "r1").endpoints in system
        assert network.link("r1", "r2").endpoints not in system

    def test_saturated_links(self, parking_lot_case):
        network, sessions, allocation = parking_lot_case
        analysis = analyze_bottlenecks(sessions, allocation)
        saturated = {link.endpoints for link in analysis.saturated_links()}
        assert network.link("r0", "r1").endpoints in saturated
        assert network.link("r1", "r2").endpoints in saturated
        # The third hop only carries the long session (33 Mbps): not saturated.
        assert network.link("r2", "r3").endpoints not in saturated

    def test_unsaturated_network_has_no_bottlenecks(self, parking_lot_network):
        sessions = [make_session(parking_lot_network, "tiny", "r0", "r3", demand=MBPS)]
        allocation = RateAllocation({"tiny": float(MBPS)})
        analysis = analyze_bottlenecks(sessions, allocation)
        assert analysis.saturated_links() == []
        assert analysis.bottleneck_links_of["tiny"] == []


class TestVerification(object):
    def test_water_filling_output_passes(self, parking_lot_case):
        _, sessions, allocation = parking_lot_case
        assert verify_allocation(sessions, allocation) == []
        assert is_max_min_fair(sessions, allocation)

    def test_underallocation_is_detected(self, parking_lot_case):
        _, sessions, allocation = parking_lot_case
        starved = RateAllocation(
            {session_id: rate * 0.5 for session_id, rate in allocation.as_dict().items()}
        )
        violations = verify_allocation(sessions, starved)
        assert any(violation.kind == "no-bottleneck" for violation in violations)
        assert not is_max_min_fair(sessions, starved)

    def test_overloaded_link_is_detected(self, parking_lot_case):
        _, sessions, allocation = parking_lot_case
        greedy = RateAllocation(
            {session_id: rate * 1.5 for session_id, rate in allocation.as_dict().items()}
        )
        violations = verify_allocation(sessions, greedy)
        assert any(violation.kind == "overloaded-link" for violation in violations)

    def test_exceeded_demand_is_detected(self, single_link_network):
        session = make_session(single_link_network, "capped", "r0", "r1", demand=10 * MBPS)
        allocation = RateAllocation({"capped": 20 * MBPS})
        violations = verify_allocation([session], allocation)
        assert any(violation.kind == "demand-exceeded" for violation in violations)

    def test_missing_rate_is_detected(self, single_link_network):
        session = make_session(single_link_network, "s", "r0", "r1")
        violations = verify_allocation([session], RateAllocation({}))
        assert [violation.kind for violation in violations] == ["missing-rate"]

    def test_demand_limited_sessions_need_no_bottleneck(self, single_link_network):
        session = make_session(single_link_network, "capped", "r0", "r1", demand=10 * MBPS)
        allocation = RateAllocation({"capped": 10 * MBPS})
        assert is_max_min_fair([session], allocation)

    def test_unfair_but_feasible_allocation_fails(self, single_link_network):
        sessions = [
            make_session(single_link_network, "a", "r0", "r1"),
            make_session(single_link_network, "b", "r0", "r1"),
        ]
        # Feasible (sums to 100) but not max-min fair (b could not increase
        # without decreasing a larger session -- but a is above b, so b has no
        # bottleneck of its own).
        lopsided = RateAllocation({"a": 70 * MBPS, "b": 30 * MBPS})
        assert lopsided.is_feasible(sessions)
        assert not is_max_min_fair(sessions, lopsided)
