"""Tests for the workload generation package (scenarios, generator, dynamics)."""

import math

import pytest

from repro.core.protocol import BNeckProtocol
from repro.core.validation import validate_against_oracle
from repro.network.transit_stub import LAN, WAN
from repro.network.units import MBPS
from repro.workloads.dynamics import DynamicPhase, apply_phase
from repro.workloads.generator import (
    WorkloadGenerator,
    infinite_demand,
    mixed_demand,
    uniform_demand,
)
from repro.workloads.scenarios import NETWORK_SIZES, NetworkScenario, build_network
from repro.simulator.random_source import RandomSource


class TestScenarios(object):
    def test_known_sizes(self):
        assert {"small", "medium", "big"} <= set(NETWORK_SIZES)

    def test_build_small_lan(self):
        scenario = NetworkScenario("small", LAN, seed=1)
        network = scenario.build()
        assert network.number_of_nodes() == NETWORK_SIZES["small"].total_routers()
        assert scenario.label == "small-lan"

    def test_build_network_shorthand(self):
        network = build_network("small", WAN, seed=2)
        assert network.is_connected()

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkScenario("gigantic", LAN)

    def test_unknown_delay_model_rejected(self):
        with pytest.raises(ValueError):
            NetworkScenario("small", "metro")


class TestDemandSamplers(object):
    def test_infinite(self):
        sampler = infinite_demand()
        assert math.isinf(sampler(RandomSource(1)))

    def test_uniform_range(self):
        sampler = uniform_demand(1 * MBPS, 10 * MBPS)
        source = RandomSource(2)
        for _ in range(50):
            value = sampler(source)
            assert 1 * MBPS <= value <= 10 * MBPS

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            uniform_demand(0.0, 10.0)
        with pytest.raises(ValueError):
            uniform_demand(10.0, 1.0)

    def test_mixed_produces_both_kinds(self):
        sampler = mixed_demand(0.5, 1 * MBPS, 10 * MBPS)
        source = RandomSource(3)
        values = [sampler(source) for _ in range(100)]
        assert any(math.isinf(value) for value in values)
        assert any(not math.isinf(value) for value in values)

    def test_mixed_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            mixed_demand(1.5, 1.0, 2.0)


class TestWorkloadGenerator(object):
    def make_generator(self, seed=0):
        network = build_network("small", LAN, seed=seed)
        return network, WorkloadGenerator(network, seed=seed)

    def test_specs_have_valid_fields(self):
        _, generator = self.make_generator()
        specs = generator.generate(20, join_window=(0.0, 1e-3))
        assert len(specs) == 20
        assert len({spec.session_id for spec in specs}) == 20
        for spec in specs:
            assert spec.source_router != spec.destination_router
            assert 0.0 <= spec.join_time <= 1e-3
            assert spec.demand > 0

    def test_generation_is_deterministic_per_seed(self):
        _, first = self.make_generator(seed=5)
        _, second = self.make_generator(seed=5)
        specs_a = first.generate(10)
        specs_b = second.generate(10)
        assert [(s.source_router, s.destination_router, s.join_time) for s in specs_a] == [
            (s.source_router, s.destination_router, s.join_time) for s in specs_b
        ]

    def test_different_seeds_differ(self):
        _, first = self.make_generator(seed=5)
        _, second = self.make_generator(seed=6)
        specs_a = first.generate(10)
        specs_b = second.generate(10)
        assert [(s.source_router, s.destination_router) for s in specs_a] != [
            (s.source_router, s.destination_router) for s in specs_b
        ]

    def test_bad_join_window_rejected(self):
        _, generator = self.make_generator()
        with pytest.raises(ValueError):
            generator.generate(5, join_window=(1e-3, 0.0))

    def test_install_joins_sessions_on_protocol(self):
        network, generator = self.make_generator(seed=7)
        protocol = BNeckProtocol(network)
        installed = generator.populate(protocol, 15, join_window=(0.0, 1e-3))
        assert len(installed) == 15
        protocol.run_until_quiescent()
        assert len(protocol.registry) == 15
        assert validate_against_oracle(protocol).valid

    def test_pick_sessions_and_random_times(self):
        _, generator = self.make_generator(seed=8)
        picked = generator.pick_sessions(["a", "b", "c", "d"], 2)
        assert len(picked) == 2
        assert len(set(picked)) == 2
        with pytest.raises(ValueError, match="population of 1"):
            generator.pick_sessions(["a"], 5)
        assert generator.pick_sessions(["a"], 5, clamp=True) == ["a"]
        times = generator.random_times(3, (1.0, 2.0))
        assert len(times) == 3
        assert all(1.0 <= t <= 2.0 for t in times)
        with pytest.raises(ValueError, match="exceeds its end"):
            generator.random_times(3, (2.0, 1.0))

    def test_requires_two_attachment_routers(self):
        network = build_network("small", LAN, seed=1)
        with pytest.raises(ValueError):
            WorkloadGenerator(network, attachment_routers=["only-one"])


class TestDynamicPhases(object):
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            DynamicPhase("bad", joins=-1)
        with pytest.raises(ValueError):
            DynamicPhase("bad", window=0.0)
        phase = DynamicPhase("ok", joins=2, leaves=1, changes=3)
        assert phase.total_actions() == 6

    def test_apply_join_phase(self):
        network = build_network("small", LAN, seed=9)
        generator = WorkloadGenerator(network, seed=9)
        protocol = BNeckProtocol(network)
        outcome = apply_phase(
            protocol, generator, DynamicPhase("join", joins=20), active_ids=[]
        )
        assert len(outcome.joined_ids) == 20
        assert outcome.active_after == 20
        assert outcome.duration > 0
        assert outcome.packets > 0
        assert protocol.quiescent
        assert validate_against_oracle(protocol).valid

    def test_apply_leave_and_change_phase(self):
        network = build_network("small", LAN, seed=10)
        generator = WorkloadGenerator(network, seed=10)
        protocol = BNeckProtocol(network)
        first = apply_phase(protocol, generator, DynamicPhase("join", joins=20), active_ids=[])
        active = first.joined_ids
        mixed = apply_phase(
            protocol,
            generator,
            DynamicPhase("mixed", joins=5, leaves=5, changes=5),
            active_ids=active,
            demand_sampler=uniform_demand(1 * MBPS, 50 * MBPS),
            start_time=protocol.simulator.now + 1e-3,
        )
        assert len(mixed.left_ids) == 5
        assert len(mixed.changed_ids) == 5
        assert len(mixed.joined_ids) == 5
        assert mixed.active_after == 20
        assert set(mixed.left_ids) & set(mixed.changed_ids) == set()
        assert len(protocol.registry) == 20
        assert validate_against_oracle(protocol).valid

    def test_phase_without_running_to_quiescence(self):
        network = build_network("small", LAN, seed=11)
        generator = WorkloadGenerator(network, seed=11)
        protocol = BNeckProtocol(network)
        outcome = apply_phase(
            protocol,
            generator,
            DynamicPhase("join", joins=5),
            active_ids=[],
            run_to_quiescence=False,
        )
        assert outcome.quiescence_time == outcome.start_time
        assert protocol.simulator.pending_events > 0
