"""Tests for the experiment harnesses, metrics and reporting."""

import pytest

from repro.experiments.experiment1 import Experiment1Config, run_experiment1, run_experiment1_case
from repro.experiments.experiment2 import DEFAULT_PHASES, Experiment2Config, run_experiment2
from repro.experiments.experiment3 import Experiment3Config, run_experiment3
from repro.experiments.metrics import (
    bottleneck_link_errors,
    convergence_time,
    error_summary,
    relative_errors,
)
from repro.experiments.reporting import (
    format_experiment1_table,
    format_experiment2_table,
    format_experiment3_table,
    format_table,
)
from repro.fairness.allocation import RateAllocation
from repro.fairness.waterfilling import water_filling
from repro.simulator.statistics import summarize
from repro.workloads.scenarios import NetworkScenario
from tests.conftest import make_session


class TestMetrics(object):
    def test_relative_errors_basic(self):
        reference = RateAllocation({"a": 100.0, "b": 50.0})
        assigned = RateAllocation({"a": 110.0, "b": 25.0})
        errors = dict(zip(["a", "b"], relative_errors(assigned, reference)))
        assert errors["a"] == pytest.approx(10.0)
        assert errors["b"] == pytest.approx(-50.0)

    def test_relative_errors_skip_zero_and_missing_reference(self):
        reference = RateAllocation({"a": 0.0, "b": 50.0})
        assigned = RateAllocation({"a": 10.0, "b": 50.0, "ghost": 1.0})
        errors = relative_errors(assigned, reference)
        assert errors == [pytest.approx(0.0)]

    def test_relative_errors_missing_assignment_counts_as_zero_rate(self):
        reference = RateAllocation({"a": 50.0})
        assigned = RateAllocation({})
        assert relative_errors(assigned, reference) == [pytest.approx(-100.0)]

    def test_error_summary_uses_percentiles(self):
        stats = error_summary([-10.0, 0.0, 10.0])
        assert stats.median == pytest.approx(0.0)
        assert stats.mean == pytest.approx(0.0)

    def test_bottleneck_link_errors(self, parking_lot_network):
        sessions = [
            make_session(parking_lot_network, "long", "r0", "r3"),
            make_session(parking_lot_network, "short", "r0", "r1"),
        ]
        reference = water_filling(sessions)
        # Underestimate both sessions by 50%: the (single) bottleneck link sees
        # half the expected aggregate rate.
        assigned = RateAllocation(
            {sid: rate * 0.5 for sid, rate in reference.as_dict().items()}
        )
        errors = bottleneck_link_errors(sessions, assigned, reference)
        assert len(errors) >= 1
        assert all(error == pytest.approx(-50.0) for error in errors)

    def test_convergence_time_requires_staying_converged(self):
        series = [
            (1.0, summarize([-50.0, 10.0])),
            (2.0, summarize([-0.5, 0.5])),
            (3.0, summarize([-30.0, 0.0])),
            (4.0, summarize([-0.2, 0.1])),
            (5.0, summarize([0.0, 0.0])),
        ]
        assert convergence_time(series, tolerance_percent=1.0) == 4.0

    def test_convergence_time_none_when_never_converged(self):
        series = [(1.0, summarize([-50.0, 10.0]))]
        assert convergence_time(series) is None


class TestExperiment1(object):
    def test_single_case(self):
        scenario = NetworkScenario("small", "lan", seed=2)
        row = run_experiment1_case(scenario, 20, Experiment1Config(seed=2))
        assert row.validated
        assert row.session_count == 20
        assert row.time_to_quiescence > 0
        assert row.total_packets > 0
        assert row.packets_per_session == pytest.approx(row.total_packets / 20.0)
        assert set(row.as_dict()) >= {"scenario", "sessions", "packets", "validated"}

    def test_sweep_covers_all_cells_and_reports_progress(self):
        config = Experiment1Config(
            session_counts=(5, 15), sizes=("small",), delay_models=("lan", "wan"), seed=3
        )
        seen = []
        rows = run_experiment1(config, progress=seen.append)
        assert len(rows) == 4
        assert len(seen) == 4
        assert all(row.validated for row in rows)
        labels = {row.scenario_label for row in rows}
        assert labels == {"small-lan", "small-wan"}

    def test_wan_slower_than_lan(self):
        config = Experiment1Config(
            session_counts=(20,), sizes=("small",), delay_models=("lan", "wan"), seed=4
        )
        rows = {row.scenario_label: row for row in run_experiment1(config)}
        assert rows["small-wan"].time_to_quiescence > rows["small-lan"].time_to_quiescence


class TestExperiment2(object):
    def test_default_phases_scale_with_population(self):
        phases = DEFAULT_PHASES(100, churn_fraction=0.2)
        assert [phase.name for phase in phases] == ["join", "leave", "change", "join2", "mixed"]
        assert phases[0].joins == 100
        assert phases[1].leaves == 20
        assert phases[4].total_actions() == 60

    def test_run_experiment2_small(self):
        config = Experiment2Config(size="small", initial_sessions=40, seed=5)
        result = run_experiment2(config)
        assert result.validated
        durations = result.phase_durations()
        assert set(durations) == {"join", "leave", "change", "join2", "mixed"}
        assert all(duration > 0 for duration in durations.values())
        assert result.total_packets() > 0
        assert sum(result.phase_packets().values()) == result.total_packets()
        # The interval series accounts for every packet of the run.
        total_in_series = sum(sum(counts.values()) for _, counts in result.interval_series)
        assert total_in_series == result.total_packets()


class TestExperiment3(object):
    @pytest.fixture(scope="class")
    def result(self):
        config = Experiment3Config(
            size="small",
            initial_sessions=40,
            leave_count=4,
            churn_window=2e-3,
            sample_interval=3e-3,
            horizon=30e-3,
            protocols=("bneck", "bfyz"),
            seed=6,
        )
        return run_experiment3(config)

    def test_series_structure(self, result):
        assert set(result.protocol_names()) == {"bneck", "bfyz"}
        bneck = result.series("bneck")
        assert len(bneck.source_error_series) == 10
        assert bneck.total_packets > 0

    def test_bneck_converges_exactly_and_goes_quiescent(self, result):
        bneck = result.series("bneck")
        assert bneck.quiescent
        assert bneck.convergence_time is not None
        final = bneck.final_source_error()
        assert abs(final.mean) < 1e-6

    def test_bfyz_keeps_sending_packets(self, result):
        bneck = result.series("bneck")
        bfyz = result.series("bfyz")
        assert not bfyz.quiescent
        assert bfyz.total_packets > bneck.total_packets
        # BFYZ transmits in the last interval; B-Neck does not.
        assert bfyz.packets_series[-1][1] > 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            Experiment3Config(protocols=("bneck", "mystery"))


class TestReporting(object):
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("alpha", 1.0), ("b", 123456)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_experiment1_table_contains_rows(self):
        config = Experiment1Config(
            session_counts=(5,), sizes=("small",), delay_models=("lan",), seed=7
        )
        rows = run_experiment1(config)
        text = format_experiment1_table(rows)
        assert "small-lan" in text
        assert "quiescence [ms]" in text

    def test_experiment2_table_lists_phases_and_types(self):
        config = Experiment2Config(size="small", initial_sessions=20, seed=8)
        result = run_experiment2(config)
        text = format_experiment2_table(result)
        for phase_name in ("join", "leave", "change", "join2", "mixed"):
            assert phase_name in text
        assert "Join" in text and "Response" in text

    def test_experiment3_table_mentions_protocols(self):
        config = Experiment3Config(
            size="small",
            initial_sessions=20,
            leave_count=2,
            horizon=20e-3,
            protocols=("bneck",),
            seed=9,
        )
        result = run_experiment3(config)
        text = format_experiment3_table(result)
        assert "protocol: bneck" in text
        assert "src err median" in text
