"""Unit tests for the RateAllocation container."""

import pytest

from repro.fairness.allocation import RateAllocation
from repro.network.units import MBPS
from tests.conftest import make_session


class TestMappingBehaviour(object):
    def test_set_get_contains(self):
        allocation = RateAllocation()
        allocation.set_rate("s1", 10.0)
        assert "s1" in allocation
        assert allocation.rate("s1") == 10.0
        assert allocation.get("missing") is None
        assert allocation.get("missing", 0.0) == 0.0
        assert len(allocation) == 1
        assert list(allocation) == ["s1"]
        assert allocation.session_ids() == ["s1"]

    def test_constructor_accepts_mapping(self):
        allocation = RateAllocation({"a": 1.0, "b": 2.0})
        assert allocation.total_rate() == pytest.approx(3.0)
        assert allocation.as_dict() == {"a": 1.0, "b": 2.0}

    def test_items(self):
        allocation = RateAllocation({"a": 1.0})
        assert dict(allocation.items()) == {"a": 1.0}


class TestComparison(object):
    def test_equals_same_rates(self):
        first = RateAllocation({"a": 50 * MBPS, "b": 25 * MBPS})
        second = RateAllocation({"a": 50 * MBPS, "b": 25 * MBPS})
        assert first.equals(second)

    def test_equals_tolerates_rounding(self):
        base = 100 * MBPS / 3.0
        first = RateAllocation({"a": base})
        second = RateAllocation({"a": base * (1.0 + 1e-12)})
        assert first.equals(second)

    def test_equals_rejects_different_sessions(self):
        assert not RateAllocation({"a": 1.0}).equals(RateAllocation({"b": 1.0}))
        assert not RateAllocation({"a": 1.0}).equals(RateAllocation({"a": 1.0, "b": 1.0}))

    def test_equals_rejects_different_rates(self):
        assert not RateAllocation({"a": 1.0}).equals(RateAllocation({"a": 2.0}))

    def test_max_relative_difference(self):
        first = RateAllocation({"a": 110.0, "b": 50.0})
        second = RateAllocation({"a": 100.0, "b": 50.0})
        assert first.max_relative_difference(second) == pytest.approx(0.1)

    def test_max_relative_difference_ignores_missing(self):
        first = RateAllocation({"a": 1.0, "extra": 99.0})
        second = RateAllocation({"a": 1.0})
        assert first.max_relative_difference(second) == 0.0


class TestFeasibility(object):
    def test_link_load(self, parking_lot_network):
        long_session = make_session(parking_lot_network, "long", "r0", "r3")
        short_session = make_session(parking_lot_network, "short", "r0", "r1")
        allocation = RateAllocation({"long": 40 * MBPS, "short": 50 * MBPS})
        shared = parking_lot_network.link("r0", "r1")
        lonely = parking_lot_network.link("r2", "r3")
        sessions = [long_session, short_session]
        assert allocation.link_load(sessions, shared) == pytest.approx(90 * MBPS)
        assert allocation.link_load(sessions, lonely) == pytest.approx(40 * MBPS)

    def test_feasible_allocation(self, parking_lot_network):
        sessions = [
            make_session(parking_lot_network, "long", "r0", "r3"),
            make_session(parking_lot_network, "short", "r0", "r1"),
        ]
        allocation = RateAllocation({"long": 50 * MBPS, "short": 50 * MBPS})
        assert allocation.is_feasible(sessions)

    def test_overloaded_link_is_infeasible(self, parking_lot_network):
        sessions = [
            make_session(parking_lot_network, "long", "r0", "r3"),
            make_session(parking_lot_network, "short", "r0", "r1"),
        ]
        allocation = RateAllocation({"long": 80 * MBPS, "short": 50 * MBPS})
        assert not allocation.is_feasible(sessions)

    def test_exceeding_demand_is_infeasible(self, parking_lot_network):
        session = make_session(parking_lot_network, "capped", "r0", "r1", demand=10 * MBPS)
        allocation = RateAllocation({"capped": 20 * MBPS})
        assert not allocation.is_feasible([session])

    def test_missing_rates_count_as_zero(self, parking_lot_network):
        session = make_session(parking_lot_network, "s", "r0", "r1")
        allocation = RateAllocation({})
        assert allocation.is_feasible([session])
        assert allocation.link_load([session], parking_lot_network.link("r0", "r1")) == 0.0
