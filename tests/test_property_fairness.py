"""Property-based tests (hypothesis) for the max-min fairness substrate.

These tests generate random small networks and session populations and check
the library's core invariants:

* the two independent oracles (water-filling and Centralized B-Neck) always
  agree;
* their output always satisfies the bottleneck characterization of max-min
  fairness and never overloads a link;
* classic monotonicity properties of max-min fairness (scaling capacities,
  adding sessions) hold.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.centralized import centralized_bneck
from repro.fairness.verification import is_max_min_fair, verify_allocation
from repro.fairness.waterfilling import water_filling
from repro.network.graph import Network
from repro.network.routing import PathComputer, path_links
from repro.network.session import Session
from repro.network.units import MBPS
from repro.simulator.clock import microseconds

CAPACITY_CHOICES = [10 * MBPS, 50 * MBPS, 100 * MBPS, 200 * MBPS]
DEMAND_CHOICES = [math.inf, 5 * MBPS, 20 * MBPS, 80 * MBPS, 150 * MBPS]


@st.composite
def random_workload(draw, max_routers=6, max_sessions=8):
    """A random connected router chain/mesh plus a random session population."""
    router_count = draw(st.integers(min_value=2, max_value=max_routers))
    capacities = draw(
        st.lists(
            st.sampled_from(CAPACITY_CHOICES),
            min_size=router_count - 1,
            max_size=router_count - 1,
        )
    )
    extra_edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, router_count - 1),
                st.integers(0, router_count - 1),
                st.sampled_from(CAPACITY_CHOICES),
            ),
            max_size=3,
        )
    )

    network = Network("property")
    for index in range(router_count):
        network.add_router("r%d" % index)
    for index, capacity in enumerate(capacities):
        network.add_link("r%d" % index, "r%d" % (index + 1), capacity, microseconds(1))
    for first, second, capacity in extra_edges:
        if first == second:
            continue
        if network.has_link("r%d" % first, "r%d" % second):
            continue
        network.add_link("r%d" % first, "r%d" % second, capacity, microseconds(1))

    session_count = draw(st.integers(min_value=1, max_value=max_sessions))
    endpoints = draw(
        st.lists(
            st.tuples(
                st.integers(0, router_count - 1),
                st.integers(0, router_count - 1),
                st.sampled_from(DEMAND_CHOICES),
            ),
            min_size=session_count,
            max_size=session_count,
        )
    )
    computer = PathComputer(network)
    sessions = []
    for index, (source_index, sink_index, demand) in enumerate(endpoints):
        if source_index == sink_index:
            sink_index = (sink_index + 1) % router_count
        source_host = network.attach_host("r%d" % source_index, 1000 * MBPS, microseconds(1))
        sink_host = network.attach_host("r%d" % sink_index, 1000 * MBPS, microseconds(1))
        node_path = computer.route(source_host.node_id, sink_host.node_id)
        links = path_links(network, node_path)
        sessions.append(
            Session("p%d" % index, source_host.node_id, sink_host.node_id, node_path, links, demand)
        )
    return network, sessions


@settings(max_examples=60, deadline=None)
@given(random_workload())
def test_oracles_agree_and_are_max_min_fair(workload):
    _, sessions = workload
    filled = water_filling(sessions)
    centralized = centralized_bneck(sessions)
    assert filled.equals(centralized)
    assert verify_allocation(sessions, filled) == []
    assert verify_allocation(sessions, centralized) == []
    assert filled.is_feasible(sessions)


@settings(max_examples=40, deadline=None)
@given(random_workload())
def test_rates_never_exceed_demand_or_access_capacity(workload):
    _, sessions = workload
    allocation = water_filling(sessions)
    for session in sessions:
        rate = allocation.rate(session.session_id)
        assert rate <= session.effective_demand() * (1 + 1e-9)
        assert rate > 0


@settings(max_examples=40, deadline=None)
@given(random_workload(), st.sampled_from([2.0, 3.0, 0.5]))
def test_scaling_capacities_scales_unbounded_rates(workload, factor):
    network, sessions = workload
    # Restrict to unbounded sessions: demand caps do not scale with capacity.
    unbounded = [session for session in sessions if math.isinf(session.demand)]
    if not unbounded:
        return
    base = water_filling(unbounded)

    scaled_sessions = []
    scaled_links = {}
    for session in unbounded:
        links = []
        for link in session.links:
            key = link.endpoints
            if key not in scaled_links:
                from repro.network.graph import Link

                scaled_links[key] = Link(
                    link.source, link.target, link.capacity * factor, link.propagation_delay
                )
            links.append(scaled_links[key])
        scaled_sessions.append(
            Session(session.session_id, session.source, session.destination,
                    session.node_path, links, session.demand)
        )
    scaled = water_filling(scaled_sessions)
    for session in unbounded:
        assert scaled.rate(session.session_id) == \
            __import__("pytest").approx(base.rate(session.session_id) * factor, rel=1e-6)


# Note: max-min fairness is NOT monotone under adding/removing individual
# sessions (removing one session can let a second grow until it saturates a
# different link and squeezes a third), so no such "monotonicity" property is
# asserted here.  The properties below are actual theorems.


@settings(max_examples=40, deadline=None)
@given(random_workload(max_sessions=6), st.randoms(use_true_random=False))
def test_allocation_is_independent_of_session_order(workload, rng):
    # The max-min fair allocation is unique, so the order in which sessions are
    # fed to the algorithms must not matter.
    _, sessions = workload
    shuffled = list(sessions)
    rng.shuffle(shuffled)
    assert water_filling(sessions).equals(water_filling(shuffled))
    assert centralized_bneck(sessions).equals(centralized_bneck(shuffled))


@settings(max_examples=40, deadline=None)
@given(random_workload(max_sessions=6))
def test_max_min_maximizes_the_minimum_rate(workload):
    # The max-min fair allocation maximizes the smallest rate over all feasible
    # allocations; in particular its minimum is at least the minimum of the
    # always-feasible "equal share of every crossed link" allocation.
    _, sessions = workload
    allocation = water_filling(sessions)
    crossing_counts = {}
    for session in sessions:
        for link in session.links:
            crossing_counts[link.endpoints] = crossing_counts.get(link.endpoints, 0) + 1
    equal_share_minimum = min(
        min(
            min(link.capacity / crossing_counts[link.endpoints] for link in session.links),
            session.effective_demand(),
        )
        for session in sessions
    )
    max_min_minimum = min(allocation.rate(session.session_id) for session in sessions)
    assert max_min_minimum >= equal_share_minimum * (1 - 1e-9)
    assert is_max_min_fair(sessions, allocation)
