"""Unit tests for packet tracing and the statistics helpers."""

import pytest

from repro.simulator.statistics import Histogram, TimeSeries, mean, percentile, summarize
from repro.simulator.tracing import PacketTracer, Tracer


class TestPacketTracer(object):
    def test_counts_by_type_and_session(self):
        tracer = PacketTracer()
        tracer.record(0.0, "Join", "s1")
        tracer.record(0.1, "Join", "s2")
        tracer.record(0.2, "Response", "s1")
        assert tracer.total == 3
        assert tracer.by_type["Join"] == 2
        assert tracer.by_type["Response"] == 1
        assert tracer.by_session["s1"] == 2

    def test_packets_per_session(self):
        tracer = PacketTracer()
        assert tracer.packets_per_session() == 0.0
        tracer.record(0.0, "Join", "s1")
        tracer.record(0.1, "Probe", "s1")
        tracer.record(0.2, "Join", "s2")
        assert tracer.packets_per_session() == pytest.approx(1.5)

    def test_records_kept_only_when_requested(self):
        counting = PacketTracer(keep_records=False)
        counting.record(0.0, "Join", "s1")
        assert counting.records == []
        full = PacketTracer(keep_records=True)
        full.record(0.0, "Join", "s1", link=("a", "b"), direction="downstream")
        assert len(full.records) == 1
        assert full.records[0].link == ("a", "b")

    def test_interval_series_buckets(self):
        tracer = PacketTracer(interval=1.0)
        tracer.record(0.2, "Join", "s1")
        tracer.record(0.8, "Probe", "s1")
        tracer.record(2.5, "Leave", "s1")
        series = tracer.interval_series()
        assert len(series) == 3
        assert series[0][1] == {"Join": 1, "Probe": 1}
        assert series[1][1] == {}
        assert series[2][1] == {"Leave": 1}

    def test_totals_per_interval(self):
        tracer = PacketTracer(interval=1.0)
        tracer.record(0.5, "Join", "s1")
        tracer.record(0.6, "Join", "s2")
        tracer.record(1.5, "Leave", "s1")
        assert tracer.totals_per_interval() == [(0.0, 2), (1.0, 1)]

    def test_interval_series_without_interval_raises(self):
        tracer = PacketTracer()
        with pytest.raises(ValueError):
            tracer.interval_series()

    def test_last_packet_time_tracked(self):
        tracer = PacketTracer()
        tracer.record(0.3, "Join", "s1")
        tracer.record(0.1, "Probe", "s1")
        assert tracer.last_packet_time == 0.3

    def test_clear_resets_everything(self):
        tracer = PacketTracer(keep_records=True, interval=1.0)
        tracer.record(0.3, "Join", "s1")
        tracer.clear()
        assert tracer.total == 0
        assert tracer.records == []
        assert tracer.interval_series() == []


class TestTracer(object):
    def test_counts_event_tags(self):
        tracer = Tracer()
        tracer.on_event(0.1, "Join")
        tracer.on_event(0.2, "Join")
        tracer.on_event(0.3, "Response")
        assert tracer.count_by_kind() == {"Join": 2, "Response": 1}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.on_event(0.1, "Join")
        assert tracer.events == []


class TestStatistics(object):
    def test_percentile_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == pytest.approx(5.0)
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 10.0

    def test_percentile_single_value(self):
        assert percentile([3.0], 0.9) == 3.0

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            mean([])

    def test_summarize_known_values(self):
        stats = summarize(range(1, 11))
        assert stats.count == 10
        assert stats.mean == pytest.approx(5.5)
        assert stats.median == pytest.approx(5.5)
        assert stats.minimum == 1
        assert stats.maximum == 10
        assert stats.p10 == pytest.approx(1.9)
        assert stats.p90 == pytest.approx(9.1)
        assert set(stats.as_dict()) == {"count", "mean", "median", "p10", "p90", "min", "max"}

    def test_time_series_enforces_order(self):
        series = TimeSeries("quiescence")
        series.append(0.0, 1)
        series.append(1.0, 2)
        with pytest.raises(ValueError):
            series.append(0.5, 3)
        assert series.times() == [0.0, 1.0]
        assert series.values() == [1, 2]
        assert series.last() == (1.0, 2)
        assert len(series) == 2

    def test_time_series_empty_last_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()

    def test_histogram_bins(self):
        histogram = Histogram(bin_width=10.0)
        histogram.add(3.0)
        histogram.add(7.0)
        histogram.add(15.0, weight=2)
        assert histogram.total == 4
        assert histogram.as_sorted_bins() == [(0.0, 2), (10.0, 2)]

    def test_histogram_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0)
