"""Regression tests for the hot-path refactor and event-queue accounting fixes.

Three families of guarantees are pinned down here:

* **Cross-process determinism**: a fixed-seed scenario reproduces exact packet
  counts, event counts, quiescence times and final allocations, independent of
  ``PYTHONHASHSEED``.  The golden values in ``tests/data/hot_path_goldens.json``
  were captured once and must never drift as the hot path evolves.
* **Event-queue accounting**: cancelling an already-fired event must not
  corrupt ``Simulator.pending_events`` (and with it ``BNeckProtocol.quiescent``).
* **API-call scheduling**: an API call requested at exactly ``simulator.now``
  is enqueued with a fresh ``(time, sequence)`` slot, so it interleaves
  deterministically with packet deliveries pending at the same instant instead
  of jumping the queue.
* **Cross-engine determinism**: the same scenarios executed on the sharded
  engine (2 and 4 shards, serial lockstep) must reproduce the *sequential*
  goldens' final allocations bit-exactly, and their own packet/event counts
  pinned in ``tests/data/cross_engine_goldens.json``.
"""

import json
import math
import os

import pytest

from repro.core.protocol import BNeckProtocol
from repro.core.validation import validate_against_oracle
from repro.network.partition import partition_network
from repro.network.topology import single_link_topology
from repro.network.units import MBPS
from repro.simulator.clock import microseconds
from repro.simulator.sharding import ShardedSimulator
from repro.simulator.simulation import Simulator
from repro.simulator.tracing import NullPacketTracer
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import NetworkScenario

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "hot_path_goldens.json")
CROSS_ENGINE_GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "cross_engine_goldens.json"
)

with open(GOLDEN_PATH) as handle:
    GOLDENS = json.load(handle)

with open(CROSS_ENGINE_GOLDEN_PATH) as handle:
    CROSS_ENGINE_GOLDENS = json.load(handle)


def _run_scenario(key, trace_packets=True, shards=None):
    size, delay, seed, count = key.split("-")
    seed = int(seed[1:])
    count = int(count[1:])
    network = NetworkScenario(size, delay, seed=seed).build()
    simulator = None
    plan = None
    if shards is not None:
        plan = partition_network(network, shards)
        simulator = ShardedSimulator(plan, seed=seed)
    protocol = BNeckProtocol(network, simulator=simulator, trace_packets=trace_packets)
    if plan is not None:
        protocol.use_shard_plan(plan)
    generator = WorkloadGenerator(network, seed=seed + count)
    generator.populate(protocol, count, join_window=(0.0, 1e-3))
    quiescence = protocol.run_until_quiescent()
    return protocol, quiescence


class TestSeedDeterminism(object):
    @pytest.mark.parametrize("key", sorted(GOLDENS))
    def test_reproduces_golden_counts_and_allocation(self, key):
        golden = GOLDENS[key]
        protocol, quiescence = _run_scenario(key)
        assert protocol.tracer.total == golden["packets"]
        assert protocol.simulator.events_processed == golden["events"]
        assert repr(quiescence) == golden["quiescence"]
        assert dict(protocol.tracer.by_type) == golden["by_type"]
        allocation = protocol.current_allocation().as_dict()
        assert {sid: repr(rate) for sid, rate in allocation.items()} == golden["allocation"]
        assert validate_against_oracle(protocol).valid

    def test_null_tracer_does_not_change_the_simulation(self):
        key = sorted(GOLDENS)[-1]
        golden = GOLDENS[key]
        protocol, quiescence = _run_scenario(key, trace_packets=False)
        assert isinstance(protocol.tracer, NullPacketTracer)
        assert protocol.tracer.total == 0
        # Tracing off must be invisible to the simulation itself.
        assert protocol.simulator.events_processed == golden["events"]
        assert repr(quiescence) == golden["quiescence"]
        allocation = protocol.current_allocation().as_dict()
        assert {sid: repr(rate) for sid, rate in allocation.items()} == golden["allocation"]

    def test_incremental_unrestricted_load_stays_in_sync(self):
        protocol, _ = _run_scenario(sorted(GOLDENS)[0])
        states = protocol.all_link_states()
        assert states
        for state in states:
            assert state.unrestricted_load() == pytest.approx(
                state._recomputed_unrestricted_load(), rel=1e-12, abs=1e-6
            )


class TestCrossEngineDeterminism(object):
    """Sequential vs. sharded:2 vs. sharded:4 on the golden scenarios.

    The sharded engine reorders event execution across lanes, yet the final
    allocation must stay *bit-identical* to the sequential engine's committed
    goldens -- the correctness contract of the sharding refactor.  Packet and
    event counts are additionally pinned per engine (they are allowed to
    differ from sequential in principle, since cross-shard ties resolve in
    mailbox order; in practice the scenarios below reproduce them exactly).
    """

    @pytest.mark.parametrize("key", sorted(GOLDENS))
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_reproduces_sequential_allocation_bits(self, key, shards):
        protocol, quiescence = _run_scenario(key, shards=shards)
        allocation = protocol.current_allocation().as_dict()
        assert {
            sid: repr(rate) for sid, rate in allocation.items()
        } == GOLDENS[key]["allocation"]
        golden = CROSS_ENGINE_GOLDENS[key]["sharded:%d" % shards]
        assert protocol.tracer.total == golden["packets"]
        assert protocol.simulator.events_processed == golden["events"]
        assert repr(quiescence) == golden["quiescence"]
        assert dict(protocol.tracer.by_type) == golden["by_type"]
        assert validate_against_oracle(protocol).valid


class TestMultiPhaseChurnDeterminism(object):
    """Five-phase Experiment-2-style churn, bit-identical on every engine.

    Phase N+1 is scheduled only after phase N's *observed* quiescence time --
    the workload shape the persistent-worker parallel engine exists for.  The
    committed golden was captured from the sequential engine; the serial
    sharded engines and the persistent-parallel engines (2 and 4 shards) must
    reproduce its per-phase quiescence times, per-phase packet deltas, packet
    and event totals, ``API.Rate`` callback count and final allocation
    bit-exactly.
    """

    CHURN_KEY = "churn-medium-lan-s5-n60"

    ENGINES = ["sequential", "sharded:2", "sharded:4"]
    if hasattr(os, "fork"):
        ENGINES += ["sharded:2/parallel", "sharded:4/parallel"]

    def _run_churn(self, engine):
        from repro.experiments.runner import ExperimentRunner, ScenarioSpec
        from repro.workloads.dynamics import DynamicPhase
        from repro.workloads.generator import uniform_demand

        _name, size, delay, seed, count = self.CHURN_KEY.split("-")
        seed = int(seed[1:])
        count = int(count[1:])
        spec = ScenarioSpec(size=size, delay_model=delay, seed=seed, engine=engine)
        runner = ExperimentRunner(spec, generator_seed=seed)
        churn = count // 5
        phases = [
            DynamicPhase("join", joins=count),
            DynamicPhase("leave", leaves=churn),
            DynamicPhase("change", changes=churn),
            DynamicPhase("join2", joins=churn),
            DynamicPhase("mixed", joins=churn, leaves=churn, changes=churn),
        ]
        outcomes = runner.run_phases(
            phases,
            demand_sampler=uniform_demand(1e6, 80e6),
            inter_phase_gap=1e-3,
        )
        final = runner.checkpoint("after churn")
        return runner, outcomes, final

    @pytest.mark.parametrize("engine", ENGINES)
    def test_churn_reproduces_the_sequential_golden(self, engine):
        golden = CROSS_ENGINE_GOLDENS[self.CHURN_KEY]["sequential"]
        runner, outcomes, final = self._run_churn(engine)
        protocol = runner.protocol
        if engine.endswith("/parallel"):
            # The run must actually have executed on the worker pool, not
            # have fallen back to serial.
            assert protocol.simulator.workers_live
        assert final.validated
        assert [repr(o.quiescence_time) for o in outcomes] == golden["phase_quiescence"]
        assert [o.packets for o in outcomes] == golden["phase_packets"]
        assert protocol.tracer.total == golden["packets"]
        assert protocol.simulator.events_processed == golden["events"]
        assert dict(protocol.tracer.by_type) == golden["by_type"]
        assert protocol.rate_callbacks == golden["rate_callbacks"]
        allocation = protocol.current_allocation().as_dict()
        assert {
            sid: repr(rate) for sid, rate in sorted(allocation.items())
        } == golden["allocation"]
        runner.close()


class TestCancelAccounting(object):
    def test_cancel_after_fire_keeps_pending_events_exact(self):
        simulator = Simulator()
        fired = simulator.schedule(1.0, lambda: None, tag="fired")
        simulator.schedule(2.0, lambda: None, tag="later")
        assert simulator.pending_events == 2
        assert simulator.step()
        assert simulator.pending_events == 1
        simulator.cancel(fired)          # already fired: must be a no-op
        assert simulator.pending_events == 1
        simulator.cancel(fired)
        assert simulator.pending_events == 1
        assert simulator.step()
        assert simulator.pending_events == 0

    def test_protocol_quiescence_not_fooled_by_stale_cancel(self):
        # With the old accounting a stale cancel() made pending_events
        # undercount, so `quiescent` could report True with a control packet
        # still in flight.
        network = single_link_topology(capacity=100 * MBPS, delay=microseconds(1))
        protocol = BNeckProtocol(network)
        source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
        sink = network.attach_host("r1", 1000 * MBPS, microseconds(1))
        protocol.open_session(source.node_id, sink.node_id, session_id="a")
        simulator = protocol.simulator
        # Fire one event, then cancel it twice after the fact.
        assert simulator.step()
        fired_count = simulator.events_processed
        assert fired_count == 1
        # The popped event is not exposed here; emulate a stale handle by
        # scheduling + firing + cancelling our own marker event.
        marker = simulator.schedule(0.0, lambda: None, tag="marker")
        while not marker.consumed:
            assert simulator.step()
        pending_before = simulator.pending_events
        simulator.cancel(marker)
        simulator.cancel(marker)
        assert simulator.pending_events == pending_before
        assert not protocol.quiescent
        protocol.run_until_quiescent()
        assert protocol.quiescent
        assert protocol.in_flight_packets == 0


class TestSameInstantApiCalls(object):
    def _single_session_protocol(self):
        network = single_link_topology(capacity=100 * MBPS, delay=microseconds(1))
        protocol = BNeckProtocol(network)
        source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
        sink = network.attach_host("r1", 1000 * MBPS, microseconds(1))
        return protocol, source.node_id, sink.node_id

    def test_join_at_now_is_enqueued_not_synchronous(self):
        protocol, source, sink = self._single_session_protocol()
        session = protocol.create_session(source, sink, session_id="a")
        assert protocol.simulator.now == 0.0
        protocol.join(session, at=0.0)
        # The activation must wait for its (time, sequence) slot.
        assert "a" not in protocol.registry
        assert protocol.simulator.pending_events == 1
        protocol.run_until_quiescent()
        assert "a" in protocol.registry
        assert protocol.current_allocation().as_dict()["a"] == pytest.approx(100 * MBPS)

    def test_api_call_at_now_runs_after_events_already_queued_at_that_time(self):
        protocol, source, sink = self._single_session_protocol()
        session, _ = protocol.open_session(source, sink, session_id="a")
        quiescence = protocol.run_until_quiescent()
        simulator = protocol.simulator
        trigger_time = quiescence + 1e-3
        observed = {}

        def trigger():
            # Requested at exactly `now`: must enqueue, not run synchronously.
            protocol.change("a", 50 * MBPS, at=simulator.now)

        def probe_marker():
            # Queued after `trigger` but before the change's own slot: the
            # change must not have emitted its Probe packet yet.
            observed["packets_at_marker"] = protocol.tracer.total
            observed["demand_at_marker"] = protocol.session("a").demand

        packets_at_quiescence = protocol.tracer.total
        simulator.schedule_at(trigger_time, trigger)
        simulator.schedule_at(trigger_time, probe_marker)
        protocol.run_until_quiescent()

        assert observed["packets_at_marker"] == packets_at_quiescence
        # The change callback had not run yet at the marker's slot: the
        # session still carried its original (infinite) demand.
        assert math.isinf(observed["demand_at_marker"])
        # After the run the change has taken effect and B-Neck re-converged.
        assert protocol.current_allocation().as_dict()["a"] == pytest.approx(50 * MBPS)
        assert protocol.tracer.total > packets_at_quiescence
