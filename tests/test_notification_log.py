"""Unit tests for the pluggable NotificationLog variants."""

import pytest

from repro.core.api import RateNotification
from repro.core.notifications import (
    NotificationLog,
    NullNotificationLog,
    RingNotificationLog,
    make_notification_log,
)


class TestFullLog(object):
    def test_records_everything_in_order(self):
        log = NotificationLog()
        first = log.record(0.1, "a", 10.0)
        log.record(0.2, "b", 20.0)
        assert isinstance(first, RateNotification)
        assert len(log) == 2
        assert log[0].session_id == "a"
        assert [n.rate for n in log] == [10.0, 20.0]
        assert log.recorded == 2
        assert log.dropped == 0

    def test_last_for_scans_backwards(self):
        log = NotificationLog()
        log.record(0.1, "a", 10.0)
        log.record(0.2, "a", 15.0)
        log.record(0.3, "b", 20.0)
        assert log.last_for("a").rate == 15.0
        assert log.last_for("missing") is None

    def test_clear(self):
        log = NotificationLog()
        log.record(0.1, "a", 10.0)
        log.clear()
        assert len(log) == 0
        assert log.recorded == 0


class TestRingLog(object):
    def test_bounded_retention_counts_drops(self):
        log = RingNotificationLog(capacity=2)
        for index in range(5):
            log.record(index * 0.1, "s%d" % index, float(index))
        assert len(log) == 2
        assert [n.session_id for n in log] == ["s3", "s4"]
        assert log.recorded == 5
        assert log.dropped == 3

    def test_last_for_sees_only_retained(self):
        log = RingNotificationLog(capacity=1)
        log.record(0.1, "a", 10.0)
        log.record(0.2, "b", 20.0)
        assert log.last_for("a") is None
        assert log.last_for("b").rate == 20.0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingNotificationLog(capacity=0)


class TestNullLog(object):
    def test_retains_nothing_but_counts(self):
        log = NullNotificationLog()
        assert log.record(0.1, "a", 10.0) is None
        assert len(log) == 0
        assert list(log) == []
        assert log.recorded == 1
        assert log.dropped == 1
        assert log.last_for("a") is None
        with pytest.raises(IndexError):
            log[0]

    def test_clear_resets_counter(self):
        log = NullNotificationLog()
        log.record(0.1, "a", 10.0)
        log.clear()
        assert log.recorded == 0


class TestFactory(object):
    def test_named_variants(self):
        assert isinstance(make_notification_log(None), NotificationLog)
        assert isinstance(make_notification_log("full"), NotificationLog)
        assert isinstance(make_notification_log("ring"), RingNotificationLog)
        assert isinstance(make_notification_log("null"), NullNotificationLog)

    def test_ring_with_capacity(self):
        log = make_notification_log("ring:7")
        assert isinstance(log, RingNotificationLog)
        assert log.capacity == 7

    def test_passthrough_and_callable(self):
        log = RingNotificationLog(capacity=3)
        assert make_notification_log(log) is log
        built = make_notification_log(NullNotificationLog)
        assert isinstance(built, NullNotificationLog)

    def test_rejects_unknown_specs(self):
        with pytest.raises(ValueError):
            make_notification_log("bogus")
        with pytest.raises(TypeError):
            make_notification_log(42)
