"""Tests for the stochastic scenario engine and link-capacity dynamics.

Four families of guarantees:

* **Cross-engine bit-identity**: a Poisson-churn run and a capacity-dynamics
  run reproduce the committed sequential goldens
  (``tests/data/cross_engine_goldens.json``) on the sequential,
  sharded:2/sharded:4 serial and persistent-parallel engines -- per-round
  quiescence times, packets, events, callbacks and the final allocation,
  bit-exactly.
* **Capacity-change semantics**: after every
  :class:`~repro.core.actions.CapacityChangeAction` quiescence point the
  allocation matches the water-filling oracle on the *updated* capacities,
  including the empty-``R_e`` oversubscription case (a deep cut on a link
  whose sessions were all restricted elsewhere) and the driver-side network
  mirror of a persistent-parallel run.
* **Workload-generator validation** (regressions): ``pick_sessions`` no
  longer silently clamps, ``random_times`` rejects inverted windows, and a
  phase asking for more churn than the live population records the shortfall
  in :attr:`~repro.workloads.dynamics.PhaseOutcome.shortfalls`.
* **Runner lifecycle**: ``ExperimentRunner`` is a context manager that closes
  the engine even when the body raises.
"""

import json
import math
import os

import pytest

from repro.core.actions import (
    CapacityChangeAction,
    replay_actions,
    validate_actions,
)
from repro.core.protocol import BNeckProtocol
from repro.core.validation import validate_against_oracle
from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.fairness.waterfilling import water_filling
from repro.network.graph import Network
from repro.network.topology import parking_lot_topology
from repro.network.units import MBPS
from repro.simulator.clock import microseconds
from repro.workloads.dynamics import DynamicPhase, apply_phase
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import build_network
from repro.workloads.stochastic import (
    WORKLOADS,
    CapacityDynamicsWorkload,
    PoissonChurnWorkload,
    StochasticWorkload,
    destination_subtrees,
    make_workload,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "cross_engine_goldens.json"
)
with open(GOLDEN_PATH) as handle:
    GOLDENS = json.load(handle)

STOCHASTIC_KEYS = sorted(key for key in GOLDENS if key.startswith("stochastic-"))

ENGINES = ["sequential", "sharded:2", "sharded:4"]
if hasattr(os, "fork"):
    ENGINES += ["sharded:2/parallel", "sharded:4/parallel"]


def _run_golden_scenario(key, engine):
    golden = GOLDENS[key]["sequential"]
    _prefix, _workload, size, delay, seed = key.rsplit("-", 4)
    spec = ScenarioSpec(
        size=size,
        delay_model=delay,
        seed=int(seed[1:]),
        engine=engine,
        workload=golden["workload"],
    )
    with ExperimentRunner(spec) as runner:
        measurements = runner.run_scenario()
        workers_live = getattr(runner.protocol.simulator, "workers_live", False)
        return runner, measurements, golden, workers_live


class TestCrossEngineGoldens(object):
    """The stochastic scenarios replay bit-identically on every engine."""

    @pytest.mark.parametrize("key", STOCHASTIC_KEYS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_reproduces_the_sequential_golden(self, key, engine):
        runner, measurements, golden, workers_live = _run_golden_scenario(key, engine)
        protocol = runner.protocol
        if engine.endswith("/parallel"):
            # The run must actually have executed on the worker pool.
            assert workers_live
        assert [m.description for m in measurements] == golden["round_labels"]
        assert [repr(m.quiescence_time) for m in measurements] == (
            golden["round_quiescence"]
        )
        assert [m.packets for m in measurements] == golden["round_packets"]
        assert all(m.validated for m in measurements)
        assert protocol.tracer.total == golden["packets"]
        assert protocol.simulator.events_processed == golden["events"]
        assert dict(protocol.tracer.by_type) == golden["by_type"]
        assert protocol.rate_callbacks == golden["rate_callbacks"]
        assert len(runner.active_ids) == golden["active_sessions"]
        allocation = protocol.current_allocation().as_dict()
        assert {
            sid: repr(rate) for sid, rate in sorted(allocation.items())
        } == golden["allocation"]


class TestCapacityChangeSemantics(object):
    def _two_session_parking_lot(self):
        network = parking_lot_topology(3, capacity=100 * MBPS)
        protocol = BNeckProtocol(network)

        def host(router):
            return network.attach_host(router, 1000 * MBPS, microseconds(1)).node_id

        protocol.open_session(host("r0"), host("r3"), session_id="long")
        protocol.open_session(host("r0"), host("r1"), session_id="short")
        protocol.run_until_quiescent()
        return network, protocol

    def test_cut_and_restore_reconverge_to_the_oracle(self):
        network, protocol = self._two_session_parking_lot()
        assert protocol.current_allocation().as_dict() == {
            "long": pytest.approx(50 * MBPS),
            "short": pytest.approx(50 * MBPS),
        }
        protocol.change_capacity("r1", "r2", 30 * MBPS, both_directions=True)
        protocol.run_until_quiescent()
        # `long` was in F_e at r1->r2 (restricted at r0->r1) with R_e empty:
        # the cut below its recorded rate must still pull it back and repair.
        assert protocol.current_allocation().as_dict() == {
            "long": pytest.approx(30 * MBPS),
            "short": pytest.approx(70 * MBPS),
        }
        assert network.link("r1", "r2").capacity == 30 * MBPS
        assert validate_against_oracle(protocol).valid

        protocol.change_capacity("r1", "r2", 100 * MBPS, both_directions=True)
        protocol.run_until_quiescent()
        assert protocol.current_allocation().as_dict() == {
            "long": pytest.approx(50 * MBPS),
            "short": pytest.approx(50 * MBPS),
        }
        assert validate_against_oracle(protocol).valid

    def test_capacity_raise_wakes_settled_sessions(self):
        network, protocol = self._two_session_parking_lot()
        # Make r1->r2 the binding bottleneck, then raise it: the settled
        # session must re-probe and claim the new headroom.
        protocol.change_capacity("r1", "r2", 20 * MBPS)
        protocol.run_until_quiescent()
        assert protocol.current_allocation().as_dict()["long"] == pytest.approx(
            20 * MBPS
        )
        protocol.change_capacity("r1", "r2", 40 * MBPS)
        protocol.run_until_quiescent()
        assert protocol.current_allocation().as_dict()["long"] == pytest.approx(
            40 * MBPS
        )
        assert validate_against_oracle(protocol).valid

    def test_scheduled_capacity_change_takes_its_time_slot(self):
        network, protocol = self._two_session_parking_lot()
        quiescence = protocol.simulator.now
        protocol.change_capacity("r1", "r2", 30 * MBPS, at=quiescence + 5e-3)
        protocol.run(until=quiescence + 4e-3)
        # Not yet due: the network still carries the old capacity.
        assert network.link("r1", "r2").capacity == 100 * MBPS
        protocol.run_until_quiescent()
        assert network.link("r1", "r2").capacity == 30 * MBPS
        assert validate_against_oracle(protocol).valid

    def test_rejects_host_links_and_unknown_links(self):
        network, protocol = self._two_session_parking_lot()
        host_id = network.hosts()[0].node_id
        router = network.hosts()[0].attached_router
        with pytest.raises(ValueError, match="router-to-router"):
            protocol.change_capacity(host_id, router, 10 * MBPS)
        with pytest.raises(KeyError):
            protocol.change_capacity("r0", "nowhere", 10 * MBPS)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs POSIX fork")
    def test_bad_capacity_action_is_rejected_before_the_broadcast(self):
        """A typo'd link must fail driver-side, leaving the live worker pool
        usable -- not fail mid-replay after the workers got the batch."""
        spec = ScenarioSpec(
            size="small", seed=4, engine="sharded:2/parallel", validate=False
        )
        with ExperimentRunner(spec) as runner:
            runner.populate(8, join_window=(0.0, 1e-3))
            runner.checkpoint("join")  # forks the persistent pool
            protocol = runner.protocol
            assert protocol.simulator.workers_live
            with pytest.raises(KeyError):
                protocol.change_capacity("r-nowhere", "also-nowhere", 1e6)
            # The pool survived the rejected batch and still runs.
            assert protocol.simulator.workers_live
            assert runner.checkpoint("still running").quiescence_time >= 0.0

    def test_validate_actions_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="positive finite capacity"):
            validate_actions([CapacityChangeAction("a", "b", 0.0, 1e-3)])
        with pytest.raises(ValueError, match="positive finite capacity"):
            validate_actions([CapacityChangeAction("a", "b", float("nan"), 1e-3)])
        with pytest.raises(ValueError, match="positive finite capacity"):
            validate_actions([CapacityChangeAction("a", "b", float("inf"), 1e-3)])
        with pytest.raises(ValueError, match="finite absolute time"):
            validate_actions([CapacityChangeAction("a", "b", 1.0, None)])

    def test_replay_on_protocol_without_support_is_an_error(self):
        class Bare(object):
            network = None

        with pytest.raises(ValueError, match="capacity-change"):
            replay_actions(Bare(), [CapacityChangeAction("a", "b", 1.0, 1e-3)])

    @pytest.mark.parametrize(
        "engine",
        ["sequential", "sharded:2"]
        + (["sharded:2/parallel"] if hasattr(os, "fork") else []),
    )
    def test_allocation_matches_waterfilling_after_every_event(self, engine):
        """The acceptance criterion: each capacity-change quiescence point
        validates against the water-filling oracle on updated capacities."""
        spec = ScenarioSpec(size="small", delay_model="lan", seed=13, engine=engine)
        workload = CapacityDynamicsWorkload(sessions=30, events=3)
        with ExperimentRunner(spec) as runner:
            observed_capacities = []
            for label, actions in workload.rounds(runner):
                changed = {
                    (action.source, action.target): action.capacity
                    for action in actions
                    if action.kind == "capacity"
                }
                runner.apply_actions(actions)
                measurement = runner.checkpoint(label)
                assert measurement.validated, label
                # The driver's network mirror carries the new capacities
                # (in parallel mode via the end-of-run state sync) ...
                for (source, target), capacity in changed.items():
                    assert runner.network.link(source, target).capacity == capacity
                # ... and the independent water-filling oracle on that updated
                # network reproduces the distributed allocation exactly.
                oracle = water_filling(runner.protocol.active_sessions())
                assert runner.protocol.current_allocation().equals(oracle)
                if changed:
                    observed_capacities.append(changed)
            assert observed_capacities, "no capacity event fired"


    def test_reverse_direction_events_reuse_originals(self, monkeypatch):
        """Events rescale both directions, so picking a link's reverse in a
        later event must cut from the first-seen bandwidth (no compounding)
        and the restore round must return to the true original."""
        import repro.workloads.stochastic as stochastic

        picks = iter([[("r1", "r2")], [("r2", "r1")]])
        monkeypatch.setattr(
            stochastic, "crossed_router_links", lambda protocol: next(picks)
        )
        spec = ScenarioSpec(
            name="parking-lot",
            network_builder=lambda: parking_lot_topology(3, capacity=100 * MBPS),
        )
        workload = CapacityDynamicsWorkload(
            sessions=4, events=2, factor_low=0.5, factor_high=0.5
        )
        capacities = []
        with ExperimentRunner(spec) as runner:
            for label, actions in workload.rounds(runner):
                runner.apply_actions(actions)
                assert runner.checkpoint(label).validated
                capacities.append(
                    (
                        runner.network.link("r1", "r2").capacity,
                        runner.network.link("r2", "r1").capacity,
                    )
                )
        half, full = (50 * MBPS, 50 * MBPS), (100 * MBPS, 100 * MBPS)
        assert capacities == [full, half, half, full]

    def test_asymmetric_per_direction_capacities_are_preserved(self, monkeypatch):
        """Each direction is cut from and restored to its *own* original
        bandwidth, so asymmetric links survive a cut-and-restore cycle."""
        import repro.workloads.stochastic as stochastic

        def build():
            network = Network("asym")
            for router in ("r0", "r1", "r2"):
                network.add_router(router)
            network.add_link("r0", "r1", 100 * MBPS, microseconds(1), bidirectional=False)
            network.add_link("r1", "r0", 40 * MBPS, microseconds(1), bidirectional=False)
            network.add_link("r1", "r2", 100 * MBPS, microseconds(1))
            return network

        picks = iter([[("r1", "r0")]])
        monkeypatch.setattr(
            stochastic, "crossed_router_links", lambda protocol: next(picks)
        )
        spec = ScenarioSpec(name="asym", network_builder=build)
        workload = CapacityDynamicsWorkload(
            sessions=2, events=1, factor_low=0.5, factor_high=0.5
        )
        capacities = []
        with ExperimentRunner(spec) as runner:
            for label, actions in workload.rounds(runner):
                runner.apply_actions(actions)
                assert runner.checkpoint(label).validated
                capacities.append(
                    (
                        runner.network.link("r0", "r1").capacity,
                        runner.network.link("r1", "r0").capacity,
                    )
                )
        assert capacities == [
            (100 * MBPS, 40 * MBPS),          # population round: untouched
            (50 * MBPS, 20 * MBPS),           # each cut from its own original
            (100 * MBPS, 40 * MBPS),          # each restored to its own original
        ]


class TestPhaseShortfallReporting(object):
    def _runner(self, seed=3):
        return ExperimentRunner(ScenarioSpec(size="small", seed=seed))

    def test_phase_overdraw_records_requested_vs_applied(self):
        with self._runner() as runner:
            runner.populate(4, join_window=(0.0, 1e-3))
            runner.checkpoint("join")
            outcome = runner.run_phase(DynamicPhase("purge", leaves=10, changes=2))
            # Only 4 sessions were alive: the shortfall is surfaced, not
            # silently clamped away (the historical bug).
            assert outcome.shortfalls["leaves"] == (10, 4)
            assert len(outcome.left_ids) == 4
            # All sessions left before the change sample was drawn.
            assert outcome.shortfalls["changes"] == (2, 0)
            assert outcome.active_after == 0

    def test_satisfiable_phase_reports_no_shortfall(self):
        with self._runner() as runner:
            runner.populate(6, join_window=(0.0, 1e-3))
            runner.checkpoint("join")
            outcome = runner.run_phase(DynamicPhase("churn", leaves=2, changes=2))
            assert outcome.shortfalls == {}

    def test_apply_phase_on_bare_protocol_also_reports(self):
        network = build_network("small", "lan", seed=2)
        protocol = BNeckProtocol(network)
        generator = WorkloadGenerator(network, seed=2)
        generator.populate(protocol, 3, join_window=(0.0, 1e-3))
        protocol.run_until_quiescent()
        outcome = apply_phase(
            protocol,
            generator,
            DynamicPhase("leave", leaves=5),
            ["s1", "s2", "s3"],
        )
        assert outcome.shortfalls == {"leaves": (5, 3)}


class TestRunnerContextManager(object):
    def test_close_runs_on_clean_exit_and_on_error(self):
        closed = []
        spec = ScenarioSpec(size="small", seed=1)
        with ExperimentRunner(spec) as runner:
            runner.close = lambda: closed.append("clean")
        assert closed == ["clean"]

        with pytest.raises(RuntimeError, match="boom"):
            with ExperimentRunner(spec) as runner:
                runner.close = lambda: closed.append("error")
                raise RuntimeError("boom")
        assert closed == ["clean", "error"]

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs POSIX fork")
    def test_raising_scenario_does_not_leak_the_worker_pool(self):
        spec = ScenarioSpec(
            size="small", seed=4, engine="sharded:2/parallel", validate=False
        )
        with pytest.raises(RuntimeError, match="mid-scenario"):
            with ExperimentRunner(spec) as runner:
                runner.populate(10, join_window=(0.0, 1e-3))
                runner.checkpoint("join")  # forks the persistent pool
                simulator = runner.protocol.simulator
                assert simulator.workers_live
                raise RuntimeError("mid-scenario")
        # __exit__ shut the pool down; the engine reports it retired.
        assert not simulator.workers_live
        assert simulator._pool_retired


class TestWorkloadRegistryAndRunner(object):
    def test_registry_names_all_four_scenarios(self):
        assert {
            "poisson-churn",
            "flash-crowd",
            "heavy-tailed-demand",
            "capacity-dynamics",
        } <= set(WORKLOADS)

    def test_make_workload_resolution(self):
        workload = make_workload("poisson-churn", segments=1)
        assert isinstance(workload, PoissonChurnWorkload)
        assert workload.segments == 1
        assert make_workload(workload) is workload
        with pytest.raises(ValueError, match="already constructed"):
            make_workload(workload, segments=2)
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("no-such-workload")
        with pytest.raises(TypeError):
            make_workload(42)

    def test_run_scenario_needs_a_workload(self):
        with ExperimentRunner(ScenarioSpec(size="small", seed=1)) as runner:
            with pytest.raises(ValueError, match="names none"):
                runner.run_scenario()

    def test_run_scenario_tracks_membership(self):
        spec = ScenarioSpec(size="small", delay_model="lan", seed=11)
        with ExperimentRunner(spec) as runner:
            measurements = runner.run_scenario("poisson-churn", segments=1)
            assert measurements and all(m.validated for m in measurements)
            assert set(runner.active_ids) == {
                session.session_id
                for session in runner.protocol.active_sessions()
            }

    def test_flash_crowd_targets_one_subtree(self):
        spec = ScenarioSpec(size="small", delay_model="lan", seed=5)
        with ExperimentRunner(spec) as runner:
            workload = make_workload("flash-crowd", crowd_size=12, depart=False)
            runner.run_scenario(workload)
            subtrees = destination_subtrees(runner.network)
            crowd = [
                session
                for session in runner.protocol.active_sessions()
                if session.session_id.startswith("flash-crowd-crowd-")
            ]
            assert len(crowd) == 12
            domains = set()
            for session in crowd:
                router = runner.network.node(session.destination).attached_router
                domains.update(
                    prefix
                    for prefix, members in subtrees.items()
                    if router in members
                )
            assert len(domains) == 1

    def test_poisson_survivors_carry_departures_across_segments(self):
        """A session outliving its segment departs in a later one (residual
        holding time), so the population converges instead of only growing."""
        spec = ScenarioSpec(size="small", delay_model="lan", seed=11)
        with ExperimentRunner(spec) as runner:
            workload = make_workload("poisson-churn", segments=2)
            batches = []
            for label, actions in workload.rounds(runner):
                batches.append(actions)
                runner.apply_actions(actions)
                assert runner.checkpoint(label).validated
            carried_leaves = [
                action
                for action in batches[1]
                if action.kind == "leave"
                and action.session_id.startswith("poisson-churn1-")
            ]
            assert carried_leaves

    def test_heavy_tailed_burst_changes_demands(self):
        spec = ScenarioSpec(size="small", delay_model="lan", seed=5)
        with ExperimentRunner(spec) as runner:
            runner.run_scenario(
                "heavy-tailed-demand", sessions=12, bursts=1, changes_per_burst=8
            )
            demands = [
                session.demand for session in runner.protocol.active_sessions()
            ]
            assert len(demands) == 12
            assert all(math.isfinite(demand) for demand in demands)

    def test_base_class_requires_rounds(self):
        class Incomplete(StochasticWorkload):
            name = "incomplete"

        with pytest.raises(NotImplementedError):
            list(Incomplete().rounds(None))
