"""Unit tests for clock helpers and the seeded random source."""

import pytest

from repro.simulator.clock import (
    format_time,
    microseconds,
    milliseconds,
    seconds,
    to_microseconds,
    to_milliseconds,
)
from repro.simulator.random_source import RandomSource


class TestClock(object):
    def test_units_relate_correctly(self):
        assert seconds(1) == 1.0
        assert milliseconds(1) == pytest.approx(1e-3)
        assert microseconds(1) == pytest.approx(1e-6)
        assert milliseconds(1000) == pytest.approx(seconds(1))
        assert microseconds(1000) == pytest.approx(milliseconds(1))

    def test_round_trip_conversions(self):
        assert to_milliseconds(milliseconds(42)) == pytest.approx(42.0)
        assert to_microseconds(microseconds(7)) == pytest.approx(7.0)

    def test_format_time_picks_unit(self):
        assert format_time(2.5) == "2.500 s"
        assert format_time(milliseconds(2.5)) == "2.500 ms"
        assert format_time(microseconds(3)) == "3.000 us"


class TestRandomSource(object):
    def test_same_seed_same_sequence(self):
        first = RandomSource(7)
        second = RandomSource(7)
        assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert RandomSource(1).random() != RandomSource(2).random()

    def test_fork_is_deterministic_and_independent(self):
        base = RandomSource(3)
        fork_a = base.fork("topology")
        fork_b = RandomSource(3).fork("topology")
        other = RandomSource(3).fork("workload")
        sequence_a = [fork_a.random() for _ in range(3)]
        sequence_b = [fork_b.random() for _ in range(3)]
        assert sequence_a == sequence_b
        assert sequence_a != [other.random() for _ in range(3)]

    def test_uniform_respects_bounds(self):
        source = RandomSource(11)
        for _ in range(100):
            value = source.uniform(2.0, 5.0)
            assert 2.0 <= value <= 5.0

    def test_randint_respects_bounds(self):
        source = RandomSource(12)
        values = {source.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_and_sample(self):
        source = RandomSource(13)
        population = ["a", "b", "c", "d"]
        assert source.choice(population) in population
        sample = source.sample(population, 2)
        assert len(sample) == 2
        assert len(set(sample)) == 2

    def test_pair_returns_distinct_elements(self):
        source = RandomSource(14)
        for _ in range(50):
            first, second = source.pair(["x", "y", "z"])
            assert first != second

    def test_shuffle_preserves_elements(self):
        source = RandomSource(15)
        items = list(range(10))
        shuffled = list(items)
        source.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_expovariate_positive(self):
        source = RandomSource(16)
        assert all(source.expovariate(10.0) > 0 for _ in range(20))
