"""Integration tests: the full distributed B-Neck protocol on known topologies.

These are end-to-end runs of the three tasks over the discrete-event simulator,
checked against hand-computed max-min allocations and against the centralized
oracle, exactly like the paper's validation methodology.
"""

import pytest

from repro.core import check_stability, validate_against_oracle
from repro.core.protocol import BNeckProtocol
from repro.network.topology import dumbbell_topology, star_topology
from repro.network.units import MBPS
from tests.conftest import open_bneck_session, parking_lot_protocol, parking_lot_workload


class TestSingleSessions(object):
    def test_lonely_session_gets_the_backbone_capacity(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, application = open_bneck_session(protocol, "r0", "r1", "solo")
        protocol.run_until_quiescent()
        assert application.current_rate == pytest.approx(100 * MBPS)
        assert protocol.quiescent

    def test_demand_limited_session(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, application = open_bneck_session(protocol, "r0", "r1", "capped", demand=7 * MBPS)
        protocol.run_until_quiescent()
        assert application.current_rate == pytest.approx(7 * MBPS)

    def test_every_session_gets_exactly_one_rate_notification_in_steady_state(
        self, single_link_network
    ):
        protocol = BNeckProtocol(single_link_network)
        _, application = open_bneck_session(protocol, "r0", "r1", "solo")
        protocol.run_until_quiescent()
        assert application.notification_count == 1

    def test_rate_notifications_are_recorded_with_time(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        open_bneck_session(protocol, "r0", "r1", "solo")
        protocol.run_until_quiescent()
        assert len(protocol.notifications) == 1
        notification = protocol.notifications[0]
        assert notification.session_id == "solo"
        assert notification.time > 0.0
        assert protocol.last_notified_rate("solo") == pytest.approx(100 * MBPS)


class TestSharedBottleneck(object):
    def test_two_sessions_split_evenly(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, first = open_bneck_session(protocol, "r0", "r1", "a")
        _, second = open_bneck_session(protocol, "r0", "r1", "b")
        protocol.run_until_quiescent()
        assert first.current_rate == pytest.approx(50 * MBPS)
        assert second.current_rate == pytest.approx(50 * MBPS)

    def test_demand_limited_session_releases_surplus(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, greedy = open_bneck_session(protocol, "r0", "r1", "greedy")
        _, capped = open_bneck_session(protocol, "r0", "r1", "capped", demand=20 * MBPS)
        protocol.run_until_quiescent()
        assert capped.current_rate == pytest.approx(20 * MBPS)
        assert greedy.current_rate == pytest.approx(80 * MBPS)

    def test_many_sessions_split_evenly(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        applications = [
            open_bneck_session(protocol, "r0", "r1", "s%d" % index)[1] for index in range(10)
        ]
        protocol.run_until_quiescent()
        for application in applications:
            assert application.current_rate == pytest.approx(10 * MBPS)
        assert validate_against_oracle(protocol).valid


class TestCanonicalTopologies(object):
    def test_parking_lot_allocation(self):
        protocol = parking_lot_protocol(hop_count=3)
        applications = parking_lot_workload(protocol, hop_count=3)
        protocol.run_until_quiescent()
        for application in applications.values():
            assert application.current_rate == pytest.approx(50 * MBPS)
        assert validate_against_oracle(protocol).valid
        assert check_stability(protocol)

    def test_unbalanced_parking_lot(self):
        protocol = parking_lot_protocol(hop_count=2)
        _, long_app = open_bneck_session(protocol, "r0", "r2", "long")
        _, short_a = open_bneck_session(protocol, "r0", "r1", "shortA")
        _, short_b = open_bneck_session(protocol, "r0", "r1", "shortB")
        protocol.run_until_quiescent()
        third = 100 * MBPS / 3.0
        assert long_app.current_rate == pytest.approx(third)
        assert short_a.current_rate == pytest.approx(third)
        assert short_b.current_rate == pytest.approx(third)
        assert validate_against_oracle(protocol).valid

    def test_dumbbell_with_mixed_demands(self):
        network = dumbbell_topology(side_count=3, bottleneck_capacity=100 * MBPS)
        protocol = BNeckProtocol(network)
        _, bulk1 = open_bneck_session(protocol, "west0", "east0", "bulk1")
        _, bulk2 = open_bneck_session(protocol, "west1", "east1", "bulk2")
        _, capped = open_bneck_session(protocol, "west2", "east2", "capped", demand=10 * MBPS)
        protocol.run_until_quiescent()
        assert capped.current_rate == pytest.approx(10 * MBPS)
        assert bulk1.current_rate == pytest.approx(45 * MBPS)
        assert bulk2.current_rate == pytest.approx(45 * MBPS)
        assert check_stability(protocol)

    def test_star_cross_traffic(self):
        network = star_topology(4, capacity=100 * MBPS)
        protocol = BNeckProtocol(network)
        _, a = open_bneck_session(protocol, "leaf0", "leaf1", "a")
        _, b = open_bneck_session(protocol, "leaf0", "leaf2", "b")
        _, c = open_bneck_session(protocol, "leaf3", "leaf1", "c")
        protocol.run_until_quiescent()
        assert a.current_rate == pytest.approx(50 * MBPS)
        assert b.current_rate == pytest.approx(50 * MBPS)
        assert c.current_rate == pytest.approx(50 * MBPS)
        assert validate_against_oracle(protocol).valid


class TestPacketAccounting(object):
    def test_single_session_join_cycle_costs_twice_the_path_length(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        session, _ = open_bneck_session(protocol, "r0", "r1", "solo")
        protocol.run_until_quiescent()
        # One Join cycle (down + up) plus one SetBottleneck pass (down only).
        join_cost = 2 * session.path_length
        assert protocol.tracer.by_type["Join"] == session.path_length
        assert protocol.tracer.by_type["Response"] == session.path_length
        assert protocol.tracer.by_type["SetBottleneck"] == session.path_length
        assert protocol.tracer.total == join_cost + session.path_length

    def test_all_packets_belong_to_known_types(self, single_link_network):
        from repro.core.packets import PACKET_TYPES

        protocol = BNeckProtocol(single_link_network)
        open_bneck_session(protocol, "r0", "r1", "a")
        open_bneck_session(protocol, "r0", "r1", "b")
        protocol.run_until_quiescent()
        assert set(protocol.tracer.by_type) <= set(PACKET_TYPES)

    def test_quiescence_means_no_pending_events_and_no_in_flight_packets(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        open_bneck_session(protocol, "r0", "r1", "a")
        open_bneck_session(protocol, "r0", "r1", "b")
        protocol.run_until_quiescent()
        assert protocol.quiescent
        assert protocol.in_flight_packets == 0
        assert protocol.simulator.pending_events == 0

    def test_determinism_same_workload_same_run(self, single_link_network):
        def run():
            from repro.network.topology import single_link_topology

            network = single_link_topology(capacity=100 * MBPS)
            protocol = BNeckProtocol(network)
            for index in range(5):
                open_bneck_session(protocol, "r0", "r1", "s%d" % index)
            quiescence = protocol.run_until_quiescent()
            return quiescence, protocol.tracer.total, protocol.current_allocation().as_dict()

        assert run() == run()


class TestProtocolApiMisuse(object):
    def test_duplicate_join_rejected(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        session, _ = open_bneck_session(protocol, "r0", "r1", "dup")
        with pytest.raises(ValueError):
            protocol.join(session)

    def test_unknown_session_lookup_fails(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        with pytest.raises(KeyError):
            protocol.source("ghost")
        with pytest.raises(KeyError):
            protocol.leave("ghost")
