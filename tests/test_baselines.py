"""Tests for the non-quiescent baseline protocols (BFYZ, CG, RCP)."""

import pytest

from repro.baselines.bfyz import BFYZProtocol, ConsistentMarkingController
from repro.baselines.cg import CGProtocol, ConstantStateController
from repro.baselines.rcp import RCPLinkController, RCPProtocol
from repro.core.centralized import centralized_bneck
from repro.fairness.algebra import FloatAlgebra
from repro.network.graph import Link
from repro.network.topology import single_link_topology
from repro.network.units import MBPS
from repro.simulator.clock import milliseconds
from tests.conftest import attach_endpoints


def make_protocol(protocol_class, network, **kwargs):
    kwargs.setdefault("probe_interval", milliseconds(1))
    return protocol_class(network, **kwargs)


def open_session(protocol, source_router, destination_router, session_id, demand=float("inf"), at=None):
    source_host, destination_host = attach_endpoints(protocol.network, source_router, destination_router)
    session = protocol.create_session(source_host, destination_host, demand=demand, session_id=session_id)
    protocol.join(session, at=at)
    return session


class TestConsistentMarkingController(object):
    def make(self, capacity=100 * MBPS):
        return ConsistentMarkingController(Link("a", "b", capacity, 1e-6), FloatAlgebra())

    def test_empty_link_advertises_full_capacity(self):
        assert self.make().advertised_rate() == pytest.approx(100 * MBPS)

    def test_even_split_between_greedy_sessions(self):
        controller = self.make()
        controller.on_probe("a", float("inf"), 0.0)
        controller.on_probe("b", float("inf"), 0.0)
        assert controller.advertised_rate() == pytest.approx(50 * MBPS)

    def test_restricted_elsewhere_sessions_release_surplus(self):
        controller = self.make()
        controller.on_probe("small", float("inf"), 10 * MBPS)
        controller.on_probe("big", float("inf"), 0.0)
        # small reports it only uses 10: the rest goes to big.
        assert controller.advertised_rate() == pytest.approx(90 * MBPS)

    def test_on_leave_forgets_state(self):
        controller = self.make()
        controller.on_probe("a", float("inf"), 0.0)
        controller.on_probe("b", float("inf"), 0.0)
        controller.on_leave("a")
        assert controller.advertised_rate() == pytest.approx(100 * MBPS)

    def test_uses_per_session_state(self):
        controller = self.make()
        for index in range(5):
            controller.on_probe("s%d" % index, float("inf"), 0.0)
        assert len(controller.recorded) == 5


class TestConstantStateController(object):
    def test_state_size_is_constant(self):
        controller = ConstantStateController(Link("a", "b", 100 * MBPS, 1e-6), FloatAlgebra())
        for index in range(100):
            controller.on_probe("s%d" % index, float("inf"), 0.0)
        # No per-session container: only counters and sums.
        assert not hasattr(controller, "recorded")
        assert isinstance(controller._probe_count, int)

    def test_damped_update_moves_towards_fair_share(self):
        controller = ConstantStateController(
            Link("a", "b", 100 * MBPS, 1e-6), FloatAlgebra(), gain=0.5
        )
        for index in range(4):
            controller.on_probe("s%d" % index, float("inf"), 0.0)
        before = controller.advertised
        controller.periodic_update([0.0] * 4, milliseconds(1))
        after = controller.advertised
        # Fair share is 25; the damped update moves halfway from 100 to 25.
        assert after < before
        assert after == pytest.approx(62.5 * MBPS)

    def test_idle_link_relaxes_towards_capacity(self):
        controller = ConstantStateController(
            Link("a", "b", 100 * MBPS, 1e-6), FloatAlgebra(), gain=1.0
        )
        controller.advertised = 10 * MBPS
        controller.periodic_update([], milliseconds(1))
        assert controller.advertised == pytest.approx(100 * MBPS)


class TestRCPLinkController(object):
    def test_underloaded_link_raises_its_rate(self):
        controller = RCPLinkController(Link("a", "b", 100 * MBPS, 1e-6), FloatAlgebra())
        controller.advertised = 10 * MBPS
        controller.periodic_update([10 * MBPS], milliseconds(1))
        assert controller.advertised > 10 * MBPS

    def test_overloaded_link_lowers_its_rate(self):
        controller = RCPLinkController(Link("a", "b", 100 * MBPS, 1e-6), FloatAlgebra())
        controller.advertised = 100 * MBPS
        controller.periodic_update([90 * MBPS, 90 * MBPS], milliseconds(1))
        assert controller.advertised < 100 * MBPS

    def test_rate_is_bounded(self):
        controller = RCPLinkController(Link("a", "b", 100 * MBPS, 1e-6), FloatAlgebra())
        for _ in range(50):
            controller.periodic_update([], milliseconds(1))
        assert controller.advertised <= 100 * MBPS
        for _ in range(200):
            controller.periodic_update([500 * MBPS], milliseconds(1))
        assert controller.advertised >= controller.minimum_rate


@pytest.mark.parametrize("protocol_class", [BFYZProtocol, CGProtocol, RCPProtocol])
class TestBaselineProtocols(object):
    def test_single_session_approaches_capacity(self, protocol_class):
        network = single_link_topology(capacity=100 * MBPS)
        protocol = make_protocol(protocol_class, network)
        open_session(protocol, "r0", "r1", "solo")
        protocol.run(until=milliseconds(80))
        rate = protocol.current_allocation().rate("solo")
        assert rate == pytest.approx(100 * MBPS, rel=0.05)

    def test_two_sessions_approach_even_split(self, protocol_class):
        network = single_link_topology(capacity=100 * MBPS)
        protocol = make_protocol(protocol_class, network)
        open_session(protocol, "r0", "r1", "a")
        open_session(protocol, "r0", "r1", "b")
        protocol.run(until=milliseconds(120))
        allocation = protocol.current_allocation()
        oracle = centralized_bneck(protocol.active_sessions())
        assert allocation.max_relative_difference(oracle) < 0.05

    def test_never_quiescent(self, protocol_class):
        network = single_link_topology(capacity=100 * MBPS)
        protocol = make_protocol(protocol_class, network)
        open_session(protocol, "r0", "r1", "solo")
        protocol.run(until=milliseconds(50))
        packets_so_far = protocol.tracer.total
        assert protocol.simulator.pending_events > 0
        protocol.run(until=milliseconds(100))
        # Control traffic keeps flowing at a steady pace.
        assert protocol.tracer.total > packets_so_far

    def test_leave_stops_probing_for_that_session(self, protocol_class):
        network = single_link_topology(capacity=100 * MBPS)
        protocol = make_protocol(protocol_class, network)
        open_session(protocol, "r0", "r1", "temp")
        open_session(protocol, "r0", "r1", "perm")
        protocol.run(until=milliseconds(20))
        protocol.leave("temp")
        protocol.run(until=milliseconds(40))
        assert "temp" not in protocol.current_allocation()
        by_session = protocol.tracer.by_session
        packets_temp = by_session["temp"]
        protocol.run(until=milliseconds(80))
        assert protocol.tracer.by_session["temp"] == packets_temp
        assert protocol.tracer.by_session["perm"] > packets_temp

    def test_demand_is_respected(self, protocol_class):
        network = single_link_topology(capacity=100 * MBPS)
        protocol = make_protocol(protocol_class, network)
        open_session(protocol, "r0", "r1", "capped", demand=10 * MBPS)
        protocol.run(until=milliseconds(60))
        assert protocol.current_allocation().rate("capped") <= 10 * MBPS * 1.001

    def test_change_updates_demand(self, protocol_class):
        network = single_link_topology(capacity=100 * MBPS)
        protocol = make_protocol(protocol_class, network)
        open_session(protocol, "r0", "r1", "s")
        protocol.run(until=milliseconds(40))
        protocol.change("s", 5 * MBPS)
        protocol.run(until=milliseconds(80))
        assert protocol.current_allocation().rate("s") <= 5 * MBPS * 1.001


class TestBFYZTransientOverestimation(object):
    def test_existing_session_overshoots_when_competition_arrives(self):
        # One session settles at full capacity; a second one joins.  Until the
        # first session's next probe cycle its rate still exceeds the new fair
        # share -- the over-estimation the paper contrasts with B-Neck.
        network = single_link_topology(capacity=100 * MBPS)
        protocol = make_protocol(BFYZProtocol, network, probe_interval=milliseconds(5))
        open_session(protocol, "r0", "r1", "old")
        protocol.run(until=milliseconds(20))
        assert protocol.current_allocation().rate("old") == pytest.approx(100 * MBPS, rel=0.05)
        open_session(protocol, "r0", "r1", "new")
        protocol.run(until=protocol.simulator.now + milliseconds(1))
        oracle = centralized_bneck(protocol.active_sessions())
        transient = protocol.current_allocation().rate("old")
        assert transient > oracle.rate("old") * 1.5
