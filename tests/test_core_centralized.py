"""Unit tests for Centralized B-Neck (Figure 1)."""

import math

import pytest

from repro.core.centralized import centralized_bneck
from repro.fairness.algebra import ExactAlgebra
from repro.fairness.verification import is_max_min_fair
from repro.fairness.waterfilling import water_filling
from repro.network.transit_stub import small_network, stub_routers
from repro.network.units import MBPS
from repro.simulator.random_source import RandomSource
from tests.conftest import make_session


def test_empty_input():
    assert len(centralized_bneck([])) == 0


def test_single_bottleneck_even_split(single_link_network):
    sessions = [make_session(single_link_network, "s%d" % i, "r0", "r1") for i in range(4)]
    allocation = centralized_bneck(sessions)
    for session in sessions:
        assert allocation.rate(session.session_id) == pytest.approx(25 * MBPS)


def test_demands_create_virtual_bottlenecks(single_link_network):
    sessions = [
        make_session(single_link_network, "greedy", "r0", "r1"),
        make_session(single_link_network, "capped", "r0", "r1", demand=10 * MBPS),
    ]
    allocation = centralized_bneck(sessions)
    assert allocation.rate("capped") == pytest.approx(10 * MBPS)
    assert allocation.rate("greedy") == pytest.approx(90 * MBPS)


def test_parking_lot_case(parking_lot_network):
    sessions = [
        make_session(parking_lot_network, "long", "r0", "r3"),
        make_session(parking_lot_network, "shortA", "r0", "r1"),
        make_session(parking_lot_network, "shortB", "r0", "r1"),
        make_session(parking_lot_network, "shortC", "r1", "r2"),
    ]
    allocation = centralized_bneck(sessions)
    third = 100 * MBPS / 3.0
    assert allocation.rate("long") == pytest.approx(third)
    assert allocation.rate("shortC") == pytest.approx(100 * MBPS - third)


def test_bottlenecks_discovered_in_increasing_rate_order(dumbbell_network):
    # The bottleneck link (100 Mbps shared by 3 sessions) must be discovered
    # before the edge links, giving the cross sessions a lower rate than the
    # local one.
    sessions = [
        make_session(dumbbell_network, "cross%d" % index, "west%d" % index, "east%d" % index)
        for index in range(3)
    ]
    sessions.append(make_session(dumbbell_network, "local", "west0", "west1"))
    allocation = centralized_bneck(sessions)
    for index in range(3):
        assert allocation.rate("cross%d" % index) == pytest.approx(100 * MBPS / 3.0)
    assert allocation.rate("local") > allocation.rate("cross0")


def test_agrees_with_water_filling_on_structured_topologies(star_network):
    random_source = RandomSource(5)
    leaves = ["leaf%d" % index for index in range(4)]
    sessions = []
    for index in range(12):
        source, sink = random_source.pair(leaves)
        demand = math.inf if random_source.random() < 0.5 else random_source.uniform(1 * MBPS, 60 * MBPS)
        sessions.append(make_session(star_network, "s%d" % index, source, sink, demand=demand))
    centralized = centralized_bneck(sessions)
    filled = water_filling(sessions)
    assert centralized.equals(filled)
    assert is_max_min_fair(sessions, centralized)


def test_agrees_with_water_filling_on_transit_stub():
    network = small_network("lan", seed=13)
    stubs = stub_routers(network)
    random_source = RandomSource(17)
    sessions = []
    for index in range(60):
        source, sink = random_source.pair(stubs)
        demand = math.inf if index % 2 else random_source.uniform(1 * MBPS, 80 * MBPS)
        sessions.append(
            make_session(network, "s%d" % index, source, sink, demand=demand, capacity=100 * MBPS)
        )
    centralized = centralized_bneck(sessions)
    filled = water_filling(sessions)
    assert centralized.equals(filled)
    assert is_max_min_fair(sessions, centralized)


def test_exact_algebra_mode(single_link_network):
    sessions = [make_session(single_link_network, "s%d" % i, "r0", "r1") for i in range(3)]
    allocation = centralized_bneck(sessions, algebra=ExactAlgebra())
    import fractions

    assert allocation.rate("s0") == fractions.Fraction(int(100 * MBPS), 3)


def test_every_session_gets_a_rate(dumbbell_network):
    sessions = [
        make_session(dumbbell_network, "a", "west0", "east1"),
        make_session(dumbbell_network, "b", "west1", "east2", demand=5 * MBPS),
        make_session(dumbbell_network, "c", "west2", "east0"),
    ]
    allocation = centralized_bneck(sessions)
    assert set(allocation.session_ids()) == {"a", "b", "c"}
    assert allocation.is_feasible(sessions)
