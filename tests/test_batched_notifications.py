"""Batched ``API.Rate`` delivery semantics.

Pinned guarantees:

* **Per-instant coalescing**: however many times a session's rate is
  renegotiated within one simulation instant, its application receives exactly
  one ``deliver_rate`` callback carrying the final value, at the instant's
  timestamp, after every event of the instant.
* **Observation-only**: batching and the notification-log variants never
  change the simulation -- the fixed-seed golden scenarios of
  ``tests/data/hot_path_goldens.json`` reproduce identical event counts,
  quiescence times and final allocations with any pipeline configuration.
* **Windowed batching** (opt-in) coalesces across instants at window
  boundaries, still delivering the final rate, while ``last_notified_rate``
  stays synchronously up to date.
"""

import json
import os

import pytest

from repro.core.api import SessionApplication
from repro.core.protocol import BNeckProtocol
from repro.network.topology import single_link_topology
from repro.network.units import MBPS
from repro.simulator.clock import microseconds
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import NetworkScenario

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "hot_path_goldens.json")

with open(GOLDEN_PATH) as handle:
    GOLDENS = json.load(handle)


def _single_link_protocol(**kwargs):
    network = single_link_topology(capacity=100 * MBPS, delay=microseconds(1))
    protocol = BNeckProtocol(network, **kwargs)
    source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
    sink = network.attach_host("r1", 1000 * MBPS, microseconds(1))
    return protocol, source.node_id, sink.node_id


class TestPerInstantCoalescing(object):
    def _notify_twice_in_one_instant(self, **kwargs):
        protocol, source, sink = _single_link_protocol(**kwargs)
        session, application = protocol.open_session(source, sink, session_id="a")
        protocol.run_until_quiescent()
        baseline = application.notification_count
        simulator = protocol.simulator

        def burst():
            # Two renegotiations of the same session within one instant, as a
            # same-instant join+change collapse produces.
            protocol.notify_rate("a", 10 * MBPS)
            protocol.notify_rate("a", 70 * MBPS)

        simulator.schedule(1e-3, burst)
        protocol.run_until_quiescent()
        return protocol, application, baseline

    def test_batched_delivers_one_final_rate_per_instant(self):
        protocol, application, baseline = self._notify_twice_in_one_instant()
        assert application.notification_count == baseline + 1
        assert application.current_rate == 70 * MBPS
        # The record side still saw both invocations.
        assert protocol.notification_log.recorded == baseline + 2
        assert protocol.last_notified_rate("a") == 70 * MBPS

    def test_unbatched_delivers_every_invocation(self):
        protocol, application, baseline = self._notify_twice_in_one_instant(
            batch_notifications=False
        )
        assert application.notification_count == baseline + 2
        assert application.current_rate == 70 * MBPS

    def test_batched_delivery_carries_the_instant_timestamp(self):
        protocol, application, _ = self._notify_twice_in_one_instant()
        last = application.notifications[-1]
        assert last.time == pytest.approx(protocol.simulator.now)

    def test_batched_delivery_order_is_first_update_order(self):
        protocol, source, sink = _single_link_protocol()
        protocol.open_session(source, sink, session_id="a")
        protocol.run_until_quiescent()
        order = []

        class Recording(SessionApplication):
            def on_rate(self, time, rate):
                order.append((self.session_id, rate))

        protocol._applications["a"] = Recording("a", 100 * MBPS)
        protocol._applications["b"] = Recording("b", 100 * MBPS)

        def burst():
            protocol.notify_rate("b", 1.0)
            protocol.notify_rate("a", 2.0)
            protocol.notify_rate("b", 3.0)

        protocol.simulator.schedule(1e-3, burst)
        protocol.run_until_quiescent()
        # b was updated first (and coalesced to its final value), then a.
        assert order == [("b", 3.0), ("a", 2.0)]

    def test_same_instant_join_then_change_yields_single_final_rate(self):
        protocol, source, sink = _single_link_protocol()
        session = protocol.create_session(source, sink, session_id="a")
        application = protocol.join(session, at=0.0)
        protocol.change("a", 40 * MBPS, at=0.0)
        protocol.run_until_quiescent()
        # The final notified rate reflects the change, and no instant ever
        # delivered more than one notification to the application.
        assert protocol.last_notified_rate("a") == pytest.approx(40 * MBPS)
        assert application.current_rate == pytest.approx(40 * MBPS)
        times = [n.time for n in application.notifications]
        assert len(times) == len(set(times))

    def test_churn_run_never_delivers_twice_per_instant(self):
        network = NetworkScenario("small", "lan", seed=11).build()
        protocol = BNeckProtocol(network)
        generator = WorkloadGenerator(network, seed=11)
        generator.populate(protocol, 30, join_window=(0.0, 1e-3))
        protocol.run_until_quiescent()
        for session in protocol.active_sessions():
            application = protocol.application(session.session_id)
            times = [n.time for n in application.notifications]
            assert len(times) == len(set(times))
        assert protocol.rate_callbacks == sum(
            protocol.application(s.session_id).notification_count
            for s in protocol.active_sessions()
        )


class TestGoldenBitIdentity(object):
    """Any pipeline configuration reproduces the pinned golden scenarios."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"notification_log": "ring", "batch_notifications": True},
            {"notification_log": "null", "batch_notifications": True},
            {"notification_log": "full", "batch_notifications": False},
        ],
        ids=["ring-batched", "null-batched", "full-synchronous"],
    )
    def test_allocation_matches_golden(self, kwargs):
        key = sorted(GOLDENS)[0]
        golden = GOLDENS[key]
        size, delay, seed, count = key.split("-")
        seed = int(seed[1:])
        count = int(count[1:])
        network = NetworkScenario(size, delay, seed=seed).build()
        protocol = BNeckProtocol(network, **kwargs)
        generator = WorkloadGenerator(network, seed=seed + count)
        generator.populate(protocol, count, join_window=(0.0, 1e-3))
        quiescence = protocol.run_until_quiescent()
        assert protocol.simulator.events_processed == golden["events"]
        assert repr(quiescence) == golden["quiescence"]
        allocation = protocol.current_allocation().as_dict()
        assert {sid: repr(rate) for sid, rate in allocation.items()} == golden["allocation"]


class TestWindowedBatching(object):
    def test_coalesces_across_instants_within_the_window(self):
        protocol, source, sink = _single_link_protocol(
            notification_batch_window=1e-3
        )
        session, application = protocol.open_session(source, sink, session_id="a")
        simulator = protocol.simulator
        protocol.run_until_quiescent()
        baseline = application.notification_count

        # Three renegotiations at distinct instants inside one 1 ms window.
        simulator.schedule_at(10e-3 + 1e-4, lambda: protocol.notify_rate("a", 1.0))
        simulator.schedule_at(10e-3 + 2e-4, lambda: protocol.notify_rate("a", 2.0))
        simulator.schedule_at(10e-3 + 3e-4, lambda: protocol.notify_rate("a", 3.0))
        protocol.run_until_quiescent()

        assert application.notification_count == baseline + 1
        assert application.current_rate == 3.0
        # Delivery happened at the window boundary.
        assert application.notifications[-1].time == pytest.approx(11e-3)
        # last_notified_rate tracked every invocation synchronously.
        assert protocol.last_notified_rate("a") == 3.0

    def test_updates_in_different_windows_deliver_separately(self):
        protocol, source, sink = _single_link_protocol(
            notification_batch_window=1e-3
        )
        session, application = protocol.open_session(source, sink, session_id="a")
        simulator = protocol.simulator
        protocol.run_until_quiescent()
        baseline = application.notification_count

        simulator.schedule_at(10e-3 + 1e-4, lambda: protocol.notify_rate("a", 1.0))
        simulator.schedule_at(12e-3 + 1e-4, lambda: protocol.notify_rate("a", 2.0))
        protocol.run_until_quiescent()
        assert application.notification_count == baseline + 2

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            _single_link_protocol(notification_batch_window=0.0)

    def test_windowed_flush_is_invisible_to_simulation_metrics(self):
        """The flush is bookkeeping, not an event (ROADMAP follow-up).

        A windowed run must report the same ``events_processed`` and the same
        quiescence time as the equivalent per-instant run: the flush never
        occupies an event-queue slot and never stretches a reported phase by
        up to one window (the historical quirk of the event-based flush).
        """

        def run(**kwargs):
            protocol, source, sink = _single_link_protocol(**kwargs)
            protocol.open_session(source, sink, session_id="a")
            quiescence = protocol.run_until_quiescent()
            return protocol, quiescence

        plain, plain_quiescence = run()
        windowed, windowed_quiescence = run(notification_batch_window=1e-3)
        assert windowed.simulator.events_processed == plain.simulator.events_processed
        assert windowed_quiescence == plain_quiescence
        assert windowed.simulator.pending_events == 0
        assert windowed.simulator.pending_bookkeeping == 0
        # The application still saw its rate, stamped at the window boundary.
        application = windowed.application("a")
        assert application.notification_count >= 1
        assert application.notifications[-1].time >= windowed_quiescence

    def test_windowed_flush_fires_even_past_the_last_event(self):
        # The last rate update of a run typically lands mid-window: the flush
        # boundary lies *after* the quiescence time, yet the application must
        # still receive the final rate when the run drains.
        protocol, source, sink = _single_link_protocol(notification_batch_window=1.0)
        session, application = protocol.open_session(source, sink, session_id="a")
        quiescence = protocol.run_until_quiescent()
        assert quiescence < 1.0
        assert application.current_rate == pytest.approx(100 * MBPS)
        assert application.notifications[-1].time == pytest.approx(1.0)

    def test_windowed_flush_does_not_trip_safety_caps(self):
        network = single_link_topology(capacity=100 * MBPS, delay=microseconds(1))
        from repro.simulator.simulation import Simulator

        probe = BNeckProtocol(network)
        source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
        sink = network.attach_host("r1", 1000 * MBPS, microseconds(1))
        probe.open_session(source.node_id, sink.node_id, session_id="a")
        probe.run_until_quiescent()
        budget = probe.simulator.events_processed

        capped_network = single_link_topology(capacity=100 * MBPS, delay=microseconds(1))
        protocol = BNeckProtocol(
            capped_network,
            simulator=Simulator(max_events=budget),
            notification_batch_window=1e-3,
        )
        capped_source = capped_network.attach_host("r0", 1000 * MBPS, microseconds(1))
        capped_sink = capped_network.attach_host("r1", 1000 * MBPS, microseconds(1))
        protocol.open_session(capped_source.node_id, capped_sink.node_id, session_id="a")
        # With the historical event-based flush this run needed budget + 1
        # events; the bookkeeping timer keeps it exactly at the cap.
        protocol.run_until_quiescent()
        assert protocol.simulator.events_processed == budget
