"""Edge-case integration tests for the distributed protocol.

These cover configurations that the canonical workloads do not exercise:
access links as bottlenecks, sessions between hosts on the same router,
asymmetric capacities, very small demands, WAN-scale delays on synthetic
topologies, and redundant API usage.
"""

import pytest

from repro.core import check_stability, validate_against_oracle
from repro.core.protocol import BNeckProtocol
from repro.network.graph import Network
from repro.network.topology import line_topology, single_link_topology
from repro.network.units import MBPS
from repro.simulator.clock import microseconds, milliseconds
from tests.conftest import open_bneck_session


def test_access_link_is_the_bottleneck():
    # The host access link (20 Mbps) is tighter than the 100 Mbps backbone.
    network = single_link_topology(capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    source = network.attach_host("r0", 20 * MBPS, microseconds(1))
    sink = network.attach_host("r1", 1000 * MBPS, microseconds(1))
    session = protocol.create_session(source.node_id, sink.node_id, session_id="narrow")
    application = protocol.join(session)
    protocol.run_until_quiescent()
    assert application.current_rate == pytest.approx(20 * MBPS)
    assert validate_against_oracle(protocol).valid


def test_destination_access_link_is_the_bottleneck():
    network = single_link_topology(capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
    sink = network.attach_host("r1", 30 * MBPS, microseconds(1))
    session = protocol.create_session(source.node_id, sink.node_id, session_id="narrow-out")
    application = protocol.join(session)
    protocol.run_until_quiescent()
    assert application.current_rate == pytest.approx(30 * MBPS)
    assert check_stability(protocol).stable


def test_sessions_between_hosts_on_the_same_router():
    network = single_link_topology(capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    _, local = open_bneck_session(protocol, "r0", "r0", "local")
    _, remote = open_bneck_session(protocol, "r0", "r1", "remote")
    protocol.run_until_quiescent()
    # The local session never crosses the backbone: both are only limited by
    # their 1000 Mbps access links.
    assert local.current_rate == pytest.approx(1000 * MBPS)
    assert remote.current_rate == pytest.approx(100 * MBPS)
    assert validate_against_oracle(protocol).valid


def test_many_sessions_sharing_one_source_host_router():
    network = line_topology(3, capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    applications = []
    for index in range(5):
        _, application = open_bneck_session(protocol, "r0", "r2", "s%d" % index)
        applications.append(application)
    protocol.run_until_quiescent()
    for application in applications:
        assert application.current_rate == pytest.approx(20 * MBPS)
    assert check_stability(protocol).stable


def test_asymmetric_chain_capacities():
    # Capacities shrink along the path: the last hop decides.
    network = Network("shrinking")
    for index in range(4):
        network.add_router("r%d" % index)
    network.add_link("r0", "r1", 100 * MBPS, microseconds(1))
    network.add_link("r1", "r2", 60 * MBPS, microseconds(1))
    network.add_link("r2", "r3", 15 * MBPS, microseconds(1))
    protocol = BNeckProtocol(network)
    _, end_to_end = open_bneck_session(protocol, "r0", "r3", "long")
    _, first_hop = open_bneck_session(protocol, "r0", "r1", "first")
    protocol.run_until_quiescent()
    assert end_to_end.current_rate == pytest.approx(15 * MBPS)
    assert first_hop.current_rate == pytest.approx(85 * MBPS)
    assert validate_against_oracle(protocol).valid


def test_tiny_demand_is_honored_exactly():
    network = single_link_topology(capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    _, tiny = open_bneck_session(protocol, "r0", "r1", "tiny", demand=0.001 * MBPS)
    _, bulk = open_bneck_session(protocol, "r0", "r1", "bulk")
    protocol.run_until_quiescent()
    assert tiny.current_rate == pytest.approx(0.001 * MBPS)
    assert bulk.current_rate == pytest.approx(100 * MBPS - 0.001 * MBPS)


def test_wan_scale_delays_on_a_synthetic_chain():
    network = line_topology(4, capacity=100 * MBPS, delay=milliseconds(5))
    protocol = BNeckProtocol(network)
    _, long_app = open_bneck_session(protocol, "r0", "r3", "long")
    _, short_app = open_bneck_session(protocol, "r1", "r2", "short")
    quiescence = protocol.run_until_quiescent()
    # Several 10 ms-per-hop round trips are needed before quiescence.
    assert quiescence > milliseconds(10)
    assert long_app.current_rate == pytest.approx(50 * MBPS)
    assert short_app.current_rate == pytest.approx(50 * MBPS)
    assert check_stability(protocol).stable


def test_change_demand_above_access_capacity_clamps_to_access_link():
    network = single_link_topology(capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    source = network.attach_host("r0", 50 * MBPS, microseconds(1))
    sink = network.attach_host("r1", 1000 * MBPS, microseconds(1))
    session = protocol.create_session(source.node_id, sink.node_id, session_id="clamped")
    application = protocol.join(session)
    protocol.run_until_quiescent()
    assert application.current_rate == pytest.approx(50 * MBPS)
    # Asking for more than the access link can carry changes nothing.
    protocol.change("clamped", 400 * MBPS)
    protocol.run_until_quiescent()
    assert application.current_rate == pytest.approx(50 * MBPS)
    assert validate_against_oracle(protocol).valid


def test_repeated_identical_change_requests_are_stable():
    network = single_link_topology(capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    _, application = open_bneck_session(protocol, "r0", "r1", "steady", demand=40 * MBPS)
    protocol.run_until_quiescent()
    for _ in range(3):
        protocol.change("steady", 40 * MBPS)
        protocol.run_until_quiescent()
        assert application.current_rate == pytest.approx(40 * MBPS)
        assert check_stability(protocol).stable
    assert validate_against_oracle(protocol).valid


def test_leave_immediately_after_join_converges():
    network = single_link_topology(capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    _, staying = open_bneck_session(protocol, "r0", "r1", "staying")
    open_bneck_session(protocol, "r0", "r1", "ephemeral", at=microseconds(10))
    # The ephemeral session leaves only a few microseconds after joining,
    # while its own Join cycle is still in flight.
    protocol.leave("ephemeral", at=microseconds(25))
    protocol.run_until_quiescent()
    assert staying.current_rate == pytest.approx(100 * MBPS)
    assert len(protocol.registry) == 1
    assert validate_against_oracle(protocol).valid
    assert check_stability(protocol).stable
