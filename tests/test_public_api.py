"""Tests for the top-level public API surface (`import repro`)."""

import math

import repro
from repro import (
    BNeckProtocol,
    MBPS,
    RateAllocation,
    centralized_bneck,
    dumbbell_topology,
    is_max_min_fair,
    validate_against_oracle,
    water_filling,
)


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), "missing export %r" % name


def test_readme_quickstart_flow():
    # The flow documented in the README, end to end.
    network = dumbbell_topology(side_count=2, bottleneck_capacity=100 * MBPS)
    protocol = BNeckProtocol(network)

    source_a = network.attach_host("west0", 1000 * MBPS, 1e-6)
    sink_a = network.attach_host("east0", 1000 * MBPS, 1e-6)
    _, app_a = protocol.open_session(source_a.node_id, sink_a.node_id)

    source_b = network.attach_host("west1", 1000 * MBPS, 1e-6)
    sink_b = network.attach_host("east1", 1000 * MBPS, 1e-6)
    _, app_b = protocol.open_session(source_b.node_id, sink_b.node_id, demand=10 * MBPS)

    protocol.run_until_quiescent()

    assert app_a.current_rate / MBPS == math.floor(app_a.current_rate / MBPS) == 90
    assert app_b.current_rate / MBPS == 10
    assert validate_against_oracle(protocol).valid


def test_oracles_are_importable_from_the_top_level(single_link_network):
    from tests.conftest import make_session

    sessions = [
        make_session(single_link_network, "a", "r0", "r1"),
        make_session(single_link_network, "b", "r0", "r1", demand=10 * MBPS),
    ]
    centralized = centralized_bneck(sessions)
    filled = water_filling(sessions)
    assert isinstance(centralized, RateAllocation)
    assert centralized.equals(filled)
    assert is_max_min_fair(sessions, centralized)
