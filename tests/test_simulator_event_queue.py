"""Unit tests for the event queue."""

import pytest

from repro.simulator.event_queue import EventQueue


def test_push_and_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(2.0, lambda: fired.append("late"))
    queue.push(1.0, lambda: fired.append("early"))
    first = queue.pop()
    second = queue.pop()
    assert first.time == 1.0
    assert second.time == 2.0


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    queue.push(1.0, lambda: None, tag="first")
    queue.push(1.0, lambda: None, tag="second")
    queue.push(1.0, lambda: None, tag="third")
    assert [queue.pop().tag for _ in range(3)] == ["first", "second", "third"]


def test_pop_empty_returns_none():
    queue = EventQueue()
    assert queue.pop() is None


def test_len_counts_live_events():
    queue = EventQueue()
    assert len(queue) == 0
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.pop()
    assert len(queue) == 1


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    queue.push(0.5, lambda: None)
    assert queue


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, tag="cancelled")
    queue.push(2.0, lambda: None, tag="kept")
    queue.cancel(event)
    assert len(queue) == 1
    popped = queue.pop()
    assert popped.tag == "kept"


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_peek_time_returns_earliest_live_time():
    queue = EventQueue()
    assert queue.peek_time() is None
    early = queue.push(1.0, lambda: None)
    queue.push(3.0, lambda: None)
    assert queue.peek_time() == 1.0
    queue.cancel(early)
    assert queue.peek_time() == 3.0


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(-1.0, lambda: None)


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None


def test_event_repr_mentions_state():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, tag="probe")
    assert "pending" in repr(event)
    queue.cancel(event)
    assert "cancelled" in repr(event)


def test_cancel_after_pop_keeps_len_consistent():
    # Regression: cancelling an event that already fired used to decrement the
    # live-event counter anyway, making len() (and Simulator.pending_events)
    # undercount and quiescence detection fire early.
    queue = EventQueue()
    first = queue.push(1.0, lambda: None, tag="first")
    queue.push(2.0, lambda: None, tag="second")
    popped = queue.pop()
    assert popped is first
    assert len(queue) == 1
    queue.cancel(first)
    assert len(queue) == 1
    queue.cancel(first)
    assert len(queue) == 1
    assert queue.pop().tag == "second"
    assert len(queue) == 0


def test_cancel_after_pop_then_cancel_live_event():
    queue = EventQueue()
    fired = queue.push(1.0, lambda: None)
    live = queue.push(2.0, lambda: None)
    queue.pop()
    queue.cancel(fired)   # no-op: already consumed
    queue.cancel(live)    # real cancellation
    assert len(queue) == 0
    assert queue.pop() is None


def test_popped_events_are_marked_consumed():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert not event.consumed
    queue.pop()
    assert event.consumed
    assert "consumed" in repr(event)


def test_cancel_after_clear_is_a_noop():
    queue = EventQueue()
    stale = queue.push(1.0, lambda: None)
    queue.clear()
    queue.cancel(stale)
    assert len(queue) == 0
    queue.push(2.0, lambda: None)
    assert len(queue) == 1


def test_cancel_before_pop_still_skips_event():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0
    assert queue.pop() is None


def test_push_callback_interleaves_with_events_by_insertion_order():
    queue = EventQueue()
    queue.push(1.0, lambda: None, tag="event")
    queue.push_callback(1.0, lambda: None, tag="bare")
    queue.push(1.0, lambda: None, tag="event-2")
    assert [queue.pop().tag for _ in range(3)] == ["event", "bare", "event-2"]


def test_push_callback_counts_as_live():
    queue = EventQueue()
    queue.push_callback(1.0, lambda: None)
    assert len(queue) == 1
    assert queue
    queue.pop()
    assert len(queue) == 0


def test_push_callback_pop_synthesizes_consumed_event():
    fired = []
    queue = EventQueue()
    queue.push_callback(0.5, lambda: fired.append("ran"), tag="bare")
    event = queue.pop()
    assert event.time == 0.5
    assert event.tag == "bare"
    assert event.consumed
    event.callback()
    assert fired == ["ran"]
    # The synthesized handle is already consumed: cancel is a no-op.
    queue.cancel(event)
    assert len(queue) == 0


def test_push_callback_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push_callback(-0.5, lambda: None)


def test_pop_entry_returns_raw_tuples_for_both_flavours():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None, tag="cancellable")
    queue.push_callback(2.0, lambda: None, tag="bare")
    first = queue.pop_entry()
    assert first[0] == 1.0 and first[3] == "cancellable" and first[4] is handle
    assert handle.consumed
    second = queue.pop_entry()
    assert second[0] == 2.0 and second[3] == "bare" and second[4] is None
    assert queue.pop_entry() is None


def test_cancel_after_pop_with_bare_entries_in_the_heap():
    # The live count must stay exact when cancellable and bare entries mix
    # and a handle is cancelled after its event already fired.
    queue = EventQueue()
    fired = queue.push(1.0, lambda: None, tag="fired")
    queue.push_callback(2.0, lambda: None, tag="bare")
    queue.push(3.0, lambda: None, tag="live")
    assert queue.pop().tag == "fired"
    assert len(queue) == 2
    queue.cancel(fired)      # already consumed: must be a no-op
    queue.cancel(fired)
    assert len(queue) == 2
    assert queue.pop().tag == "bare"
    assert queue.pop().tag == "live"
    assert len(queue) == 0


def test_peek_time_skips_cancelled_ahead_of_bare_entries():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push_callback(2.0, lambda: None)
    queue.cancel(early)
    assert queue.peek_time() == 2.0


def test_clear_discards_bare_entries():
    queue = EventQueue()
    queue.push_callback(1.0, lambda: None)
    stale = queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    queue.cancel(stale)
    assert len(queue) == 0
    assert queue.pop() is None


def test_many_events_keep_global_order():
    queue = EventQueue()
    times = [5.0, 1.0, 3.0, 2.0, 4.0, 0.5, 2.5]
    for time in times:
        queue.push(time, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(times)
