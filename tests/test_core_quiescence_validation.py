"""Tests for the stability checker (Definition 2) and oracle validation."""

import pytest

from repro.core.centralized import centralized_bneck
from repro.core.quiescence import check_stability
from repro.core.validation import validate_against_oracle
from repro.core.protocol import BNeckProtocol
from repro.fairness.allocation import RateAllocation
from repro.network.units import MBPS
from tests.conftest import open_bneck_session, parking_lot_protocol, parking_lot_workload


class TestStabilityChecker(object):
    def test_empty_protocol_is_stable(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        report = check_stability(protocol)
        assert report.stable
        assert bool(report)
        assert report.checked_links == 0

    def test_quiescent_protocol_is_stable(self):
        protocol = parking_lot_protocol()
        parking_lot_workload(protocol)
        protocol.run_until_quiescent()
        report = check_stability(protocol)
        assert report.stable
        assert report.in_flight_packets == 0
        assert report.unstable_links == []
        assert report.checked_links > 0

    def test_mid_run_protocol_is_not_stable(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        open_bneck_session(protocol, "r0", "r1", "a")
        open_bneck_session(protocol, "r0", "r1", "b")
        # Run only a few events: probes are still in flight.
        for _ in range(3):
            protocol.simulator.step()
        report = check_stability(protocol)
        assert not report.stable
        assert not bool(report)
        assert report.in_flight_packets > 0

    def test_stability_restored_after_churn(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        open_bneck_session(protocol, "r0", "r1", "a")
        open_bneck_session(protocol, "r0", "r1", "b")
        protocol.run_until_quiescent()
        protocol.leave("a")
        protocol.change("b", 30 * MBPS)
        protocol.run_until_quiescent()
        assert check_stability(protocol).stable

    def test_stability_implies_max_min_rates(self):
        # Lemma 2 of the paper: once the network is stable, the recorded rates
        # are the max-min fair rates.
        protocol = parking_lot_protocol()
        parking_lot_workload(protocol)
        protocol.run_until_quiescent()
        assert check_stability(protocol).stable
        oracle = centralized_bneck(protocol.active_sessions())
        assert protocol.current_allocation().equals(oracle)


class TestValidation(object):
    def test_valid_run(self):
        protocol = parking_lot_protocol()
        parking_lot_workload(protocol)
        protocol.run_until_quiescent()
        result = validate_against_oracle(protocol)
        assert result.valid
        assert bool(result)
        assert result.matches_centralized
        assert result.matches_waterfilling
        assert result.oracles_agree
        assert result.max_relative_error == pytest.approx(0.0, abs=1e-9)
        assert result.violations == []

    def test_validation_exposes_oracle_allocations(self):
        protocol = parking_lot_protocol()
        parking_lot_workload(protocol)
        protocol.run_until_quiescent()
        result = validate_against_oracle(protocol)
        assert set(result.centralized.session_ids()) == set(result.distributed.session_ids())
        assert result.centralized.equals(result.waterfilling)

    def test_wrong_allocation_is_flagged(self):
        protocol = parking_lot_protocol()
        parking_lot_workload(protocol)
        protocol.run_until_quiescent()
        # Tamper with the allocation under test: halve every rate.
        tampered = RateAllocation(
            {sid: rate * 0.5 for sid, rate in protocol.current_allocation().as_dict().items()}
        )
        result = validate_against_oracle(protocol, allocation=tampered)
        assert not result.valid
        assert not result.matches_centralized
        assert result.max_relative_error > 0.1
        assert result.violations

    def test_validation_of_mid_run_transient_is_invalid(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        open_bneck_session(protocol, "r0", "r1", "a")
        open_bneck_session(protocol, "r0", "r1", "b")
        # Before any Response arrives both sessions still believe 0.0.
        result = validate_against_oracle(protocol)
        assert not result.matches_centralized

    def test_validation_on_empty_protocol(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        result = validate_against_oracle(protocol)
        assert result.valid
        assert len(result.distributed) == 0
