"""Unit tests for the B-Neck packet types and the per-link protocol state."""

import math

import pytest

import pickle

from repro.core.packets import (
    BOTTLENECK,
    Bottleneck,
    Join,
    Leave,
    PACKET_CLASSES,
    PACKET_TYPES,
    Probe,
    RESPONSE,
    Response,
    SetBottleneck,
    UPDATE,
    Update,
    decode_packet,
    encode_packet,
)
from repro.core.state import IDLE, LinkState, WAITING_PROBE, WAITING_RESPONSE
from repro.network.units import MBPS


class TestPackets(object):
    def test_join_and_probe_carry_rate_and_restricting_link(self):
        join = Join("s1", 10 * MBPS, ("a", "b"))
        probe = Probe("s1", 20 * MBPS, ("b", "c"))
        assert join.session_id == "s1"
        assert join.rate == 10 * MBPS
        assert join.restricting_link == ("a", "b")
        assert probe.rate == 20 * MBPS

    def test_response_validates_tau(self):
        for tau in (RESPONSE, UPDATE, BOTTLENECK):
            assert Response("s", tau, 1.0, ("a", "b")).tau == tau
        with pytest.raises(ValueError):
            Response("s", "NONSENSE", 1.0, ("a", "b"))

    def test_set_bottleneck_normalizes_beta(self):
        assert SetBottleneck("s", 1).found_bottleneck is True
        assert SetBottleneck("s", 0).found_bottleneck is False

    def test_simple_packets_only_carry_the_session(self):
        for packet_class in (Update, Bottleneck, Leave):
            packet = packet_class("s9")
            assert packet.session_id == "s9"

    def test_packet_type_names_are_unique_and_complete(self):
        assert len(set(PACKET_TYPES)) == 7
        assert {Join.type_name, Probe.type_name, Response.type_name, Update.type_name,
                Bottleneck.type_name, SetBottleneck.type_name, Leave.type_name} == set(PACKET_TYPES)

    def test_repr_contains_fields(self):
        assert "rate" in repr(Join("s", 1.0, None))
        assert "found_bottleneck" in repr(SetBottleneck("s", True))


def _one_of_each_packet():
    return [
        Join("s1", 10 * MBPS, ("a", "b")),
        Probe("s2", 20 * MBPS, ("b", "c")),
        Response("s3", UPDATE, 30 * MBPS, ("c", "d")),
        Update("s4"),
        Bottleneck("s5"),
        SetBottleneck("s6", True),
        Leave("s7"),
    ]


class TestPacketWireFormat(object):
    """Tuple-based ``__reduce__`` plus the flat wire codec of the outboxes."""

    def test_reduce_is_tuple_based(self):
        for packet in _one_of_each_packet():
            cls, args = packet.__reduce__()
            assert cls is type(packet)
            assert isinstance(args, tuple)
            rebuilt = cls(*args)
            for field in packet._fields():
                assert getattr(rebuilt, field) == getattr(packet, field)

    def test_pickle_round_trip(self):
        for packet in _one_of_each_packet():
            clone = pickle.loads(pickle.dumps(packet))
            assert type(clone) is type(packet)
            for field in packet._fields():
                assert getattr(clone, field) == getattr(packet, field)

    def test_wire_codec_round_trip(self):
        for packet in _one_of_each_packet():
            encoded = encode_packet(packet)
            assert isinstance(encoded, tuple)
            assert isinstance(encoded[0], int)
            # Primitives only: the wire never carries packet objects.
            for value in encoded[1:]:
                assert isinstance(value, (str, float, int, bool, tuple, type(None)))
            clone = decode_packet(encoded)
            assert type(clone) is type(packet)
            for field in packet._fields():
                assert getattr(clone, field) == getattr(packet, field)

    def test_type_codes_cover_every_packet_class(self):
        assert len(PACKET_CLASSES) == len(PACKET_TYPES)
        codes = {encode_packet(packet)[0] for packet in _one_of_each_packet()}
        assert codes == set(range(len(PACKET_CLASSES)))


class TestLinkState(object):
    def make_state(self, capacity=100 * MBPS):
        return LinkState(("a", "b"), capacity)

    def test_initially_empty_and_unrestricting(self):
        state = self.make_state()
        assert state.sessions() == set()
        assert not state.knows("s1")
        assert state.bottleneck_rate() == math.inf
        assert state.state_of("s1") == IDLE
        assert state.rate_of("s1") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LinkState(("a", "b"), 0.0)

    def test_membership_moves_between_sets(self):
        state = self.make_state()
        state.add_restricted("s1")
        assert "s1" in state.restricted
        state.add_unrestricted("s1")
        assert "s1" in state.unrestricted
        assert "s1" not in state.restricted
        state.add_restricted("s1")
        assert "s1" in state.restricted
        assert "s1" not in state.unrestricted

    def test_bottleneck_rate_formula(self):
        state = self.make_state(90 * MBPS)
        state.add_restricted("a")
        state.add_restricted("b")
        state.add_unrestricted("c")
        state.set_rate("c", 30 * MBPS)
        # (90 - 30) / 2
        assert state.bottleneck_rate() == pytest.approx(30 * MBPS)

    def test_set_state_validates(self):
        state = self.make_state()
        for value in (IDLE, WAITING_PROBE, WAITING_RESPONSE):
            state.set_state("s", value)
            assert state.state_of("s") == value
        with pytest.raises(ValueError):
            state.set_state("s", "SLEEPING")

    def test_forget_removes_everything(self):
        state = self.make_state()
        state.add_restricted("s1")
        state.set_state("s1", WAITING_PROBE)
        state.set_rate("s1", 5.0)
        state.forget("s1")
        assert not state.knows("s1")
        assert state.rate_of("s1") is None
        assert state.state_of("s1") == IDLE

    def test_all_restricted_settled(self):
        state = self.make_state(100 * MBPS)
        assert not state.all_restricted_settled()  # empty R_e
        state.add_restricted("s1")
        state.add_restricted("s2")
        state.set_state("s1", IDLE)
        state.set_state("s2", IDLE)
        state.set_rate("s1", 50 * MBPS)
        state.set_rate("s2", 50 * MBPS)
        assert state.all_restricted_settled()
        state.set_state("s2", WAITING_RESPONSE)
        assert not state.all_restricted_settled()
        state.set_state("s2", IDLE)
        state.set_rate("s2", 40 * MBPS)
        assert not state.all_restricted_settled()

    def test_is_stable_definition2(self):
        state = self.make_state(100 * MBPS)
        # Empty link state is trivially stable.
        assert state.is_stable()
        state.add_restricted("s1")
        state.set_state("s1", IDLE)
        state.set_rate("s1", 60 * MBPS)
        state.add_unrestricted("s2")
        state.set_state("s2", IDLE)
        state.set_rate("s2", 40 * MBPS)
        # B_e = (100 - 40) / 1 = 60: restricted at 60, unrestricted below -> stable.
        assert state.is_stable()
        # An unrestricted session at (or above) B_e breaks stability.
        state.set_rate("s2", 60 * MBPS)
        assert not state.is_stable()

    def test_is_stable_requires_idle_sessions(self):
        state = self.make_state()
        state.add_restricted("s1")
        state.set_state("s1", WAITING_PROBE)
        state.set_rate("s1", 100 * MBPS)
        assert not state.is_stable()

    def test_is_stable_requires_rates_at_bottleneck(self):
        state = self.make_state(100 * MBPS)
        state.add_restricted("s1")
        state.add_restricted("s2")
        for session_id in ("s1", "s2"):
            state.set_state(session_id, IDLE)
        state.set_rate("s1", 50 * MBPS)
        state.set_rate("s2", 30 * MBPS)
        assert not state.is_stable()

    def test_snapshot_is_a_plain_copy(self):
        state = self.make_state()
        state.add_restricted("s1")
        state.set_rate("s1", 10 * MBPS)
        snapshot = state.snapshot()
        snapshot["restricted"].add("tampered")
        assert "tampered" not in state.restricted
        assert snapshot["capacity"] == 100 * MBPS
