"""Handler-level unit tests for the SourceNode (Figure 3) and DestinationNode (Figure 4) tasks."""

import pytest

from repro.core.destination_node import DestinationNodeTask
from repro.core.packets import (
    BOTTLENECK,
    Bottleneck,
    Join,
    Leave,
    Probe,
    RESPONSE,
    Response,
    SetBottleneck,
    UPDATE,
    Update,
)
from repro.core.source_node import SourceNodeTask
from repro.core.state import IDLE, WAITING_RESPONSE
from repro.fairness.algebra import FloatAlgebra
from repro.network.units import MBPS
from repro.simulator.simulation import Simulator
from tests.conftest import make_session


@pytest.fixture
def session(single_link_network):
    # Access links are 1000 Mbps; the backbone link r0 -> r1 is 100 Mbps.
    return make_session(single_link_network, "s1", "r0", "r1")


@pytest.fixture
def source(recorder, session):
    return SourceNodeTask(Simulator(), recorder, session, FloatAlgebra())


@pytest.fixture
def destination(recorder, session):
    return DestinationNodeTask(Simulator(), recorder, session)


class TestSourceJoinLeaveChange(object):
    def test_api_join_sends_join_with_effective_demand(self, source, recorder):
        source.api_join(float("inf"))
        packets = recorder.downstream_packets()
        assert len(packets) == 1
        assert isinstance(packets[0], Join)
        # D_s = min(inf, 1000 Mbps access capacity).
        assert packets[0].rate == pytest.approx(1000 * MBPS)
        assert packets[0].restricting_link == source.link_id
        assert source.state.state_of("s1") == WAITING_RESPONSE
        assert "s1" in source.state.restricted
        assert source.current_rate() == 0.0

    def test_api_join_with_finite_demand(self, source, recorder):
        source.api_join(10 * MBPS)
        assert recorder.downstream_packets()[0].rate == pytest.approx(10 * MBPS)
        assert source.demand == pytest.approx(10 * MBPS)
        # The source's link state uses the modified-system capacity D_s.
        assert source.state.capacity == pytest.approx(10 * MBPS)

    def test_api_leave_sends_leave_and_clears_state(self, source, recorder):
        source.api_join(float("inf"))
        recorder.clear()
        source.api_leave()
        assert isinstance(recorder.downstream_packets()[0], Leave)
        assert not source.state.knows("s1")
        assert source.left

    def test_packets_after_leave_are_dropped(self, source, recorder):
        source.api_join(float("inf"))
        source.api_leave()
        recorder.clear()
        source.receive(Response("s1", RESPONSE, 10 * MBPS, ("x", "y")), None)
        source.receive(Update("s1"), None)
        assert recorder.downstream_packets() == []

    def test_api_change_reprobes_when_idle(self, source, recorder):
        source.api_join(float("inf"))
        source.receive(Response("s1", RESPONSE, 40 * MBPS, ("r0", "r1")), None)
        recorder.clear()
        source.api_change(20 * MBPS)
        probes = [p for p in recorder.downstream_packets() if isinstance(p, Probe)]
        assert len(probes) == 1
        assert probes[0].rate == pytest.approx(20 * MBPS)
        assert source.state.state_of("s1") == WAITING_RESPONSE

    def test_api_change_while_probing_defers(self, source, recorder):
        source.api_join(float("inf"))
        recorder.clear()
        source.api_change(20 * MBPS)
        assert recorder.downstream_packets() == []
        assert source.update_received
        # When the in-flight Response finally arrives, a new Probe fires even
        # though the Response itself was a plain RESPONSE.
        source.receive(Response("s1", RESPONSE, 40 * MBPS, ("r0", "r1")), None)
        probes = [p for p in recorder.downstream_packets() if isinstance(p, Probe)]
        assert len(probes) == 1
        assert probes[0].rate == pytest.approx(20 * MBPS)


class TestSourceResponses(object):
    def test_plain_response_records_rate_without_notification(self, source, recorder):
        source.api_join(float("inf"))
        source.receive(Response("s1", RESPONSE, 40 * MBPS, ("r0", "r1")), None)
        assert source.current_rate() == pytest.approx(40 * MBPS)
        assert source.state.state_of("s1") == IDLE
        # The rate (40) is below the demand (1000): no API.Rate yet, the
        # source waits for a Bottleneck indication.
        assert recorder.notifications == []
        assert not source.bottleneck_received

    def test_response_at_full_demand_declares_bottleneck(self, source, recorder):
        source.api_join(30 * MBPS)
        source.receive(Response("s1", RESPONSE, 30 * MBPS, source.link_id), None)
        assert recorder.notifications == [("s1", pytest.approx(30 * MBPS))]
        assert source.bottleneck_received
        set_bottlenecks = [p for p in recorder.downstream_packets() if isinstance(p, SetBottleneck)]
        assert set_bottlenecks and set_bottlenecks[-1].found_bottleneck is True

    def test_bottleneck_response_notifies_and_sets_beta(self, source, recorder):
        source.api_join(float("inf"))
        source.receive(Response("s1", BOTTLENECK, 40 * MBPS, ("r0", "r1")), None)
        assert recorder.notifications == [("s1", pytest.approx(40 * MBPS))]
        set_bottlenecks = [p for p in recorder.downstream_packets() if isinstance(p, SetBottleneck)]
        assert len(set_bottlenecks) == 1
        # The rate is below the demand, so the source itself is not the
        # bottleneck: beta is False and the session moves to F_e at the source.
        assert set_bottlenecks[0].found_bottleneck is False
        assert "s1" in source.state.unrestricted

    def test_update_response_triggers_new_probe(self, source, recorder):
        source.api_join(float("inf"))
        recorder.clear()
        source.receive(Response("s1", UPDATE, 40 * MBPS, ("r0", "r1")), None)
        probes = [p for p in recorder.downstream_packets() if isinstance(p, Probe)]
        assert len(probes) == 1
        assert source.state.state_of("s1") == WAITING_RESPONSE
        assert not source.bottleneck_received


class TestSourceUpdateAndBottleneckPackets(object):
    def test_update_when_idle_triggers_probe(self, source, recorder):
        source.api_join(float("inf"))
        source.receive(Response("s1", RESPONSE, 40 * MBPS, ("r0", "r1")), None)
        recorder.clear()
        source.receive(Update("s1"), None)
        probes = [p for p in recorder.downstream_packets() if isinstance(p, Probe)]
        assert len(probes) == 1
        assert source.state.state_of("s1") == WAITING_RESPONSE

    def test_update_while_probing_is_remembered(self, source, recorder):
        source.api_join(float("inf"))
        recorder.clear()
        source.receive(Update("s1"), None)
        assert recorder.downstream_packets() == []
        assert source.update_received

    def test_bottleneck_packet_notifies_once(self, source, recorder):
        source.api_join(float("inf"))
        source.receive(Response("s1", RESPONSE, 40 * MBPS, ("r0", "r1")), None)
        recorder.clear()
        source.receive(Bottleneck("s1"), None)
        assert recorder.notifications == [("s1", pytest.approx(40 * MBPS))]
        assert source.is_quiescent_for_session()
        recorder.clear()
        # A duplicate Bottleneck changes nothing (bneck_rcv guard).
        source.receive(Bottleneck("s1"), None)
        assert recorder.notifications == []
        assert recorder.downstream_packets() == []

    def test_bottleneck_packet_ignored_while_probing(self, source, recorder):
        source.api_join(float("inf"))
        recorder.clear()
        source.receive(Bottleneck("s1"), None)
        assert recorder.notifications == []
        assert recorder.downstream_packets() == []


class TestDestinationNode(object):
    def test_join_is_answered_with_a_response(self, destination, recorder):
        destination.receive(Join("s1", 25 * MBPS, ("r0", "r1")), None)
        packets = recorder.upstream_packets()
        assert len(packets) == 1
        assert isinstance(packets[0], Response)
        assert packets[0].tau == RESPONSE
        assert packets[0].rate == pytest.approx(25 * MBPS)
        assert packets[0].restricting_link == ("r0", "r1")
        assert destination.closed_probe_cycles == 1

    def test_probe_is_answered_with_a_response(self, destination, recorder):
        destination.receive(Probe("s1", 30 * MBPS, ("r0", "r1")), None)
        assert isinstance(recorder.upstream_packets()[0], Response)
        assert destination.closed_probe_cycles == 1

    def test_set_bottleneck_without_bottleneck_triggers_update(self, destination, recorder):
        destination.receive(SetBottleneck("s1", False), None)
        packets = recorder.upstream_packets()
        assert len(packets) == 1
        assert isinstance(packets[0], Update)
        assert destination.no_bottleneck_updates == 1

    def test_set_bottleneck_with_bottleneck_is_absorbed(self, destination, recorder):
        destination.receive(SetBottleneck("s1", True), None)
        assert recorder.upstream_packets() == []

    def test_leave_silences_the_destination(self, destination, recorder):
        destination.receive(Leave("s1"), None)
        destination.receive(Probe("s1", 10 * MBPS, ("r0", "r1")), None)
        assert recorder.upstream_packets() == []
        assert destination.left
