"""Unit tests for the shared baseline scaffolding (probe loop, API, accounting)."""

import math

import pytest

from repro.baselines.base import BaselineProtocol, LinkController, ProbeCycleResult
from repro.baselines.bfyz import BFYZProtocol
from repro.baselines.rcp import RCPProtocol
from repro.network.topology import single_link_topology
from repro.network.units import MBPS
from repro.simulator.clock import milliseconds
from tests.conftest import attach_endpoints


def open_session(protocol, session_id, demand=math.inf, at=None):
    source, sink = attach_endpoints(protocol.network, "r0", "r1")
    session = protocol.create_session(source, sink, demand=demand, session_id=session_id)
    protocol.join(session, at=at)
    return session


class TestAbstractPieces(object):
    def test_link_controller_on_probe_is_abstract(self):
        controller = LinkController(link=None, algebra=None)
        with pytest.raises(NotImplementedError):
            controller.on_probe("s", 1.0, 0.0)

    def test_base_protocol_requires_a_controller_factory(self):
        network = single_link_topology()
        protocol = BaselineProtocol(network)
        # Joining immediately triggers the first probe cycle, which needs the
        # subclass-provided link controller.
        with pytest.raises(NotImplementedError):
            open_session(protocol, "s")

    def test_probe_cycle_result_repr(self):
        result = ProbeCycleResult("s1", 5.0, 0.001)
        assert "s1" in repr(result)


class TestProbeLoop(object):
    def test_probe_cycle_accounts_two_packets_per_link(self):
        network = single_link_topology()
        protocol = BFYZProtocol(network, probe_interval=milliseconds(1))
        session = open_session(protocol, "solo")
        # Run just past the first probe cycle (well under the probe interval).
        protocol.run(until=milliseconds(0.5))
        assert protocol.tracer.total == 2 * session.path_length
        assert protocol.probe_cycles == 1

    def test_probe_interval_paces_the_traffic(self):
        network = single_link_topology()
        protocol = BFYZProtocol(network, probe_interval=milliseconds(2))
        session = open_session(protocol, "solo")
        protocol.run(until=milliseconds(10.5))
        # Cycles at t=0, 2, 4, 6, 8, 10 -> 6 cycles.
        assert protocol.probe_cycles == 6
        assert protocol.tracer.total == 6 * 2 * session.path_length

    def test_scheduled_join_defers_the_first_probe(self):
        network = single_link_topology()
        protocol = BFYZProtocol(network, probe_interval=milliseconds(1))
        open_session(protocol, "later", at=milliseconds(5))
        protocol.run(until=milliseconds(4))
        assert protocol.probe_cycles == 0
        assert len(protocol.registry) == 0
        protocol.run(until=milliseconds(6))
        assert protocol.probe_cycles >= 1
        assert len(protocol.registry) == 1

    def test_duplicate_join_rejected(self):
        network = single_link_topology()
        protocol = BFYZProtocol(network)
        session = open_session(protocol, "dup")
        with pytest.raises(ValueError):
            protocol.join(session)

    def test_current_allocation_tracks_only_active_sessions(self):
        network = single_link_topology()
        protocol = BFYZProtocol(network, probe_interval=milliseconds(1))
        open_session(protocol, "a")
        open_session(protocol, "b")
        protocol.run(until=milliseconds(10))
        assert set(protocol.current_allocation().session_ids()) == {"a", "b"}
        protocol.leave("a")
        protocol.run(until=milliseconds(12))
        assert set(protocol.current_allocation().session_ids()) == {"b"}

    def test_rates_never_exceed_effective_demand(self):
        network = single_link_topology()
        protocol = BFYZProtocol(network, probe_interval=milliseconds(1))
        open_session(protocol, "capped", demand=30 * MBPS)
        protocol.run(until=milliseconds(20))
        assert protocol.current_allocation().rate("capped") <= 30 * MBPS + 1e-6


class TestPeriodicUpdates(object):
    def test_rcp_tick_stops_when_all_sessions_leave_and_restarts_on_join(self):
        network = single_link_topology()
        protocol = RCPProtocol(network, probe_interval=milliseconds(1))
        open_session(protocol, "first")
        protocol.run(until=milliseconds(5))
        assert protocol._ticking
        protocol.leave("first")
        # Let the pending tick notice the empty session set and stop.
        protocol.run(until=milliseconds(10))
        assert not protocol._ticking
        open_session(protocol, "second")
        protocol.run(until=milliseconds(15))
        assert protocol._ticking
        assert protocol.current_allocation().rate("second") > 0
