"""Unit tests for the network graph model."""

import pytest

from repro.network.graph import Link, Network
from repro.network.units import MBPS
from repro.simulator.clock import microseconds


class TestNodesAndLinks(object):
    def test_add_router_and_host(self):
        network = Network()
        router = network.add_router("r1", tier="stub")
        host = network.add_host("h1", attached_router="r1")
        assert router.is_router and not router.is_host
        assert host.is_host and not host.is_router
        assert router.tier == "stub"
        assert host.attached_router == "r1"
        assert network.node("r1") is router

    def test_duplicate_node_rejected(self):
        network = Network()
        network.add_router("r1")
        with pytest.raises(ValueError):
            network.add_router("r1")

    def test_unknown_node_kind_rejected(self):
        from repro.network.graph import Node

        with pytest.raises(ValueError):
            Node("x", "switch")

    def test_bidirectional_link_by_default(self, two_router_network):
        assert two_router_network.has_link("a", "b")
        assert two_router_network.has_link("b", "a")
        forward = two_router_network.link("a", "b")
        reverse = two_router_network.reverse_link(forward)
        assert reverse.source == "b" and reverse.target == "a"

    def test_unidirectional_link(self):
        network = Network()
        network.add_router("a")
        network.add_router("b")
        network.add_link("a", "b", 10 * MBPS, 1e-6, bidirectional=False)
        assert network.has_link("a", "b")
        assert not network.has_link("b", "a")

    def test_link_requires_existing_endpoints(self):
        network = Network()
        network.add_router("a")
        with pytest.raises(KeyError):
            network.add_link("a", "missing", 10 * MBPS, 1e-6)

    def test_self_loop_rejected(self):
        network = Network()
        network.add_router("a")
        with pytest.raises(ValueError):
            network.add_link("a", "a", 10 * MBPS, 1e-6)

    def test_duplicate_link_rejected(self, two_router_network):
        with pytest.raises(ValueError):
            two_router_network.add_link("a", "b", 10 * MBPS, 1e-6)

    def test_invalid_link_parameters_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", 0.0, 1e-6)
        with pytest.raises(ValueError):
            Link("a", "b", 10 * MBPS, -1e-6)

    def test_control_delay_combines_propagation_and_transmission(self):
        link = Link("a", "b", 100 * MBPS, microseconds(5), control_packet_bits=1000.0)
        expected = microseconds(5) + 1000.0 / (100 * MBPS)
        assert link.control_delay() == pytest.approx(expected)

    def test_node_and_link_equality(self):
        link_a = Link("a", "b", 10 * MBPS, 1e-6)
        link_b = Link("a", "b", 20 * MBPS, 2e-6)
        link_c = Link("b", "a", 10 * MBPS, 1e-6)
        assert link_a == link_b
        assert link_a != link_c
        assert hash(link_a) == hash(link_b)


class TestTopologyQueries(object):
    def test_neighbors_and_out_links(self, two_router_network):
        assert two_router_network.neighbors("a") == ["b"]
        out = two_router_network.out_links("a")
        assert len(out) == 1
        assert out[0].endpoints == ("a", "b")

    def test_counting(self, two_router_network):
        assert two_router_network.number_of_nodes() == 2
        assert two_router_network.number_of_links() == 2
        assert two_router_network.total_capacity() == pytest.approx(200 * MBPS)

    def test_routers_and_hosts_partition_nodes(self, two_router_network):
        two_router_network.attach_host("a", 10 * MBPS, 1e-6)
        routers = {node.node_id for node in two_router_network.routers()}
        hosts = {node.node_id for node in two_router_network.hosts()}
        assert routers == {"a", "b"}
        assert len(hosts) == 1
        assert not routers & hosts

    def test_is_connected(self):
        network = Network()
        network.add_router("a")
        network.add_router("b")
        network.add_router("c")
        network.add_link("a", "b", 10 * MBPS, 1e-6)
        assert not network.is_connected()
        network.add_link("b", "c", 10 * MBPS, 1e-6)
        assert network.is_connected()

    def test_empty_network_is_connected(self):
        assert Network().is_connected()


class TestHostAttachment(object):
    def test_attach_host_creates_both_directions(self, two_router_network):
        host = two_router_network.attach_host("a", 50 * MBPS, microseconds(2))
        assert two_router_network.has_link(host.node_id, "a")
        assert two_router_network.has_link("a", host.node_id)
        assert two_router_network.link(host.node_id, "a").capacity == 50 * MBPS
        assert host.attached_router == "a"

    def test_attach_host_generates_unique_ids(self, two_router_network):
        first = two_router_network.attach_host("a", 10 * MBPS, 1e-6)
        second = two_router_network.attach_host("b", 10 * MBPS, 1e-6)
        assert first.node_id != second.node_id

    def test_attach_host_with_explicit_id(self, two_router_network):
        host = two_router_network.attach_host("a", 10 * MBPS, 1e-6, host_id="alice")
        assert host.node_id == "alice"
        assert two_router_network.has_node("alice")
