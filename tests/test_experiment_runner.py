"""Tests for the shared ExperimentRunner / ScenarioSpec scaffolding."""

import pytest

from repro.core.protocol import BNeckProtocol
from repro.experiments.runner import ExperimentRunner, RunMeasurement, ScenarioSpec
from repro.network.topology import parking_lot_topology
from repro.network.units import MBPS
from repro.simulator.tracing import NullPacketTracer, PacketTracer
from repro.workloads.dynamics import DynamicPhase
from repro.workloads.scenarios import NetworkScenario


class TestScenarioSpec(object):
    def test_requires_some_network_source(self):
        with pytest.raises(ValueError):
            ScenarioSpec()

    def test_named_size_builds_transit_stub(self):
        spec = ScenarioSpec(size="small", delay_model="lan", seed=4)
        network = spec.build_network()
        assert spec.label == "small-lan"
        assert network.name == "small-lan"

    def test_network_builder_and_label(self):
        spec = ScenarioSpec(
            name="parking-lot",
            network_builder=lambda: parking_lot_topology(3, capacity=100 * MBPS),
        )
        network = spec.build_network()
        assert spec.label == "parking-lot"
        assert network.link("r0", "r1") is not None

    def test_prebuilt_network_is_passed_through(self):
        network = parking_lot_topology(2, capacity=100 * MBPS)
        spec = ScenarioSpec(network=network)
        assert spec.build_network() is network

    def test_from_network_scenario(self):
        scenario = NetworkScenario("small", "wan", seed=9)
        spec = ScenarioSpec.from_network_scenario(scenario, validate=False)
        assert spec.size == "small"
        assert spec.delay_model == "wan"
        assert spec.seed == 9
        assert spec.validate is False

    def test_from_network_scenario_keeps_custom_build(self):
        class CustomScenario(NetworkScenario):
            def build(self):
                network = super(CustomScenario, self).build()
                network.name = "customized"
                return network

        scenario = CustomScenario("small", "lan", seed=1)
        spec = ScenarioSpec.from_network_scenario(scenario)
        assert spec.build_network().name == "customized"

    def test_tracer_flavours(self):
        assert isinstance(
            ScenarioSpec(size="small", trace_packets=False).build_tracer(),
            NullPacketTracer,
        )
        tracer = ScenarioSpec(size="small", tracer_interval=5e-3).build_tracer()
        assert isinstance(tracer, PacketTracer)
        assert tracer.interval == 5e-3

    def test_notification_knobs_reach_the_protocol(self):
        spec = ScenarioSpec(
            size="small",
            notification_log="ring:16",
            batch_notifications=False,
        )
        runner = ExperimentRunner(spec)
        assert runner.protocol.notification_log.kind == "ring"
        assert runner.protocol.notification_log.capacity == 16
        assert runner.protocol.batch_notifications is False

    def test_protocol_factory_override(self):
        built = {}

        def factory(network, tracer):
            built["network"] = network
            return BNeckProtocol(network, tracer=tracer)

        runner = ExperimentRunner(ScenarioSpec(size="small", protocol_factory=factory))
        assert built["network"] is runner.network


class TestExperimentRunner(object):
    def test_populate_checkpoint_and_validate(self):
        runner = ExperimentRunner(ScenarioSpec(size="small", seed=2), generator_seed=22)
        runner.populate(20, join_window=(0.0, 1e-3))
        assert len(runner.active_ids) == 20
        measurement = runner.checkpoint("mass join")
        assert isinstance(measurement, RunMeasurement)
        assert measurement.validated
        assert measurement.quiescence_time > 0.0
        assert measurement.packets > 0
        assert measurement.packets == measurement.total_packets
        assert measurement.rate_callbacks >= 20
        assert measurement.as_dict()["validated"]

    def test_checkpoint_measures_deltas(self):
        runner = ExperimentRunner(ScenarioSpec(size="small", seed=2), generator_seed=22)
        runner.populate(10, join_window=(0.0, 1e-3))
        first = runner.checkpoint("first wave")
        runner.populate(5, join_window=(runner.protocol.simulator.now,
                                        runner.protocol.simulator.now + 1e-3))
        second = runner.checkpoint("second wave")
        assert second.packets > 0
        assert second.total_packets == first.total_packets + second.packets
        assert second.description == "second wave"

    def test_run_phases_maintains_membership(self):
        outcomes_seen = []
        runner = ExperimentRunner(
            ScenarioSpec(size="small", seed=5), progress=outcomes_seen.append
        )
        phases = [
            DynamicPhase("join", joins=12),
            DynamicPhase("leave", leaves=4),
            DynamicPhase("mixed", joins=3, leaves=2, changes=2),
        ]
        outcomes = runner.run_phases(phases, inter_phase_gap=1e-3)
        assert [outcome.phase.name for outcome in outcomes] == ["join", "leave", "mixed"]
        assert outcomes_seen == outcomes
        assert len(runner.active_ids) == 12 - 4 + 3 - 2
        assert outcomes[-1].active_after == len(runner.active_ids)
        assert runner.validate()

    def test_validate_skipped_when_spec_says_so(self):
        runner = ExperimentRunner(ScenarioSpec(size="small", seed=2, validate=False))
        runner.populate(5)
        measurement = runner.checkpoint()
        assert measurement.validated  # reported true, but not computed
