"""Unit tests for shortest-path routing."""

import pytest

from repro.network.graph import Network
from repro.network.routing import PathComputer, path_links, shortest_path
from repro.network.topology import line_topology, star_topology
from repro.network.units import MBPS
from repro.simulator.clock import microseconds, milliseconds


def test_shortest_path_on_line():
    network = line_topology(5)
    path = shortest_path(network, "r0", "r4")
    assert path == ["r0", "r1", "r2", "r3", "r4"]


def test_shortest_path_same_node():
    network = line_topology(3)
    assert shortest_path(network, "r1", "r1") == ["r1"]


def test_shortest_path_prefers_fewer_hops():
    network = Network()
    for name in ("a", "b", "c", "d"):
        network.add_router(name)
    network.add_link("a", "b", 10 * MBPS, microseconds(1))
    network.add_link("b", "d", 10 * MBPS, microseconds(1))
    network.add_link("a", "c", 10 * MBPS, microseconds(1))
    network.add_link("c", "d", 10 * MBPS, microseconds(1))
    network.add_link("a", "d", 10 * MBPS, milliseconds(10))
    assert shortest_path(network, "a", "d", metric="hops") == ["a", "d"]


def test_delay_metric_avoids_slow_links():
    network = Network()
    for name in ("a", "b", "d"):
        network.add_router(name)
    network.add_link("a", "d", 10 * MBPS, milliseconds(10))
    network.add_link("a", "b", 10 * MBPS, microseconds(1))
    network.add_link("b", "d", 10 * MBPS, microseconds(1))
    assert shortest_path(network, "a", "d", metric="delay") == ["a", "b", "d"]


def test_unknown_metric_rejected():
    network = line_topology(2)
    with pytest.raises(ValueError):
        shortest_path(network, "r0", "r1", metric="bandwidth")


def test_no_path_raises():
    network = Network()
    network.add_router("a")
    network.add_router("b")
    with pytest.raises(ValueError):
        shortest_path(network, "a", "b")


def test_path_links_matches_node_path():
    network = line_topology(4)
    node_path = shortest_path(network, "r0", "r3")
    links = path_links(network, node_path)
    assert [link.endpoints for link in links] == [("r0", "r1"), ("r1", "r2"), ("r2", "r3")]


class TestPathComputer(object):
    def test_host_to_host_route_goes_through_attached_routers(self):
        network = star_topology(3)
        source = network.attach_host("leaf0", 100 * MBPS, microseconds(1))
        sink = network.attach_host("leaf2", 100 * MBPS, microseconds(1))
        computer = PathComputer(network)
        route = computer.route(source.node_id, sink.node_id)
        assert route[0] == source.node_id
        assert route[-1] == sink.node_id
        assert route[1:-1] == ["leaf0", "hub", "leaf2"]

    def test_route_links_cover_whole_route(self):
        network = star_topology(2)
        source = network.attach_host("leaf0", 100 * MBPS, microseconds(1))
        sink = network.attach_host("leaf1", 100 * MBPS, microseconds(1))
        computer = PathComputer(network)
        links = computer.route_links(source.node_id, sink.node_id)
        assert links[0].source == source.node_id
        assert links[-1].target == sink.node_id
        for first, second in zip(links, links[1:]):
            assert first.target == second.source

    def test_router_segment_is_cached(self):
        network = star_topology(3)
        computer = PathComputer(network)
        hosts = []
        for _ in range(3):
            hosts.append(
                (
                    network.attach_host("leaf0", 100 * MBPS, microseconds(1)).node_id,
                    network.attach_host("leaf1", 100 * MBPS, microseconds(1)).node_id,
                )
            )
        for source, sink in hosts:
            computer.route(source, sink)
        # All three host pairs share the same router segment -> one cache entry.
        assert computer.cache_size() == 1

    def test_router_route_returns_copy(self):
        network = star_topology(2)
        computer = PathComputer(network)
        first = computer.router_route("leaf0", "leaf1")
        first.append("tampered")
        second = computer.router_route("leaf0", "leaf1")
        assert "tampered" not in second
