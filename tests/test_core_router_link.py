"""Handler-level unit tests for the RouterLink task (Figure 2).

These tests drive a single RouterLinkTask directly, with a recorder in place of
the protocol orchestrator, so each ``when received ...`` block of Figure 2 can
be checked in isolation: which per-link state it mutates and which packets it
forwards or originates.
"""

import pytest

from repro.core.packets import (
    BOTTLENECK,
    Bottleneck,
    Join,
    Leave,
    Probe,
    RESPONSE,
    Response,
    SetBottleneck,
    UPDATE,
    Update,
)
from repro.core.router_link import RouterLinkTask
from repro.core.state import IDLE, WAITING_PROBE, WAITING_RESPONSE
from repro.fairness.algebra import FloatAlgebra
from repro.network.graph import Link
from repro.network.units import MBPS
from repro.simulator.simulation import Simulator


LINK_ID = ("r1", "r2")


@pytest.fixture
def task(recorder):
    link = Link("r1", "r2", 100 * MBPS, 1e-6)
    return RouterLinkTask(Simulator(), recorder, link, FloatAlgebra())


def settle(task, session_id, rate, restricted=True):
    """Put a session into the link state as IDLE with a recorded rate."""
    if restricted:
        task.state.add_restricted(session_id)
    else:
        task.state.add_unrestricted(session_id)
    task.state.set_state(session_id, IDLE)
    task.state.set_rate(session_id, rate)


class TestJoin(object):
    def test_join_registers_session_and_forwards(self, task, recorder):
        task.receive(Join("s1", 500 * MBPS, ("h", "r1")), None)
        assert "s1" in task.state.restricted
        assert task.state.state_of("s1") == WAITING_RESPONSE
        forwarded = recorder.downstream_packets()
        assert len(forwarded) == 1
        assert isinstance(forwarded[0], Join)
        # The link clamps the advertised rate to its own bottleneck rate (100/1).
        assert forwarded[0].rate == pytest.approx(100 * MBPS)
        assert forwarded[0].restricting_link == LINK_ID

    def test_join_keeps_smaller_incoming_rate(self, task, recorder):
        task.receive(Join("s1", 10 * MBPS, ("h", "r1")), None)
        forwarded = recorder.downstream_packets()[0]
        assert forwarded.rate == pytest.approx(10 * MBPS)
        assert forwarded.restricting_link == ("h", "r1")

    def test_join_triggers_updates_for_settled_sessions_above_new_rate(self, task, recorder):
        settle(task, "old", 100 * MBPS)
        task.receive(Join("new", 500 * MBPS, ("h", "r1")), None)
        # B_e dropped to 50: the settled session at 100 must re-probe.
        updates = [p for p in recorder.upstream_packets() if isinstance(p, Update)]
        assert [p.session_id for p in updates] == ["old"]
        assert task.state.state_of("old") == WAITING_PROBE

    def test_join_does_not_update_sessions_already_below_new_rate(self, task, recorder):
        settle(task, "small", 10 * MBPS, restricted=False)
        task.receive(Join("new", 500 * MBPS, ("h", "r1")), None)
        updates = [p for p in recorder.upstream_packets() if isinstance(p, Update)]
        assert updates == []


class TestProbe(object):
    def test_probe_moves_session_back_to_restricted(self, task, recorder):
        settle(task, "s1", 10 * MBPS, restricted=False)
        task.receive(Probe("s1", 200 * MBPS, ("h", "r1")), None)
        assert "s1" in task.state.restricted
        assert task.state.state_of("s1") == WAITING_RESPONSE
        assert isinstance(recorder.downstream_packets()[0], Probe)

    def test_probe_clamps_rate_like_join(self, task, recorder):
        settle(task, "other", 30 * MBPS, restricted=False)
        task.state.add_restricted("s1")
        task.receive(Probe("s1", 200 * MBPS, ("h", "r1")), None)
        forwarded = recorder.downstream_packets()[0]
        # B_e = (100 - 30) / 1 = 70 for the probing session.
        assert forwarded.rate == pytest.approx(70 * MBPS)
        assert forwarded.restricting_link == LINK_ID


class TestResponse(object):
    def test_accepted_when_this_link_restricts_at_its_rate(self, task, recorder):
        task.receive(Join("s1", 500 * MBPS, ("h", "r1")), None)
        recorder.clear()
        task.receive(Response("s1", RESPONSE, 100 * MBPS, LINK_ID), None)
        assert task.state.state_of("s1") == IDLE
        assert task.state.rate_of("s1") == pytest.approx(100 * MBPS)
        responses = [p for p in recorder.upstream_packets() if isinstance(p, Response)]
        assert len(responses) == 1

    def test_accepted_response_from_elsewhere_below_local_rate(self, task, recorder):
        task.receive(Join("s1", 500 * MBPS, ("h", "r1")), None)
        recorder.clear()
        task.receive(Response("s1", RESPONSE, 30 * MBPS, ("r5", "r6")), None)
        assert task.state.state_of("s1") == IDLE
        assert task.state.rate_of("s1") == pytest.approx(30 * MBPS)

    def test_stale_rate_triggers_update(self, task, recorder):
        # s1 probed when it was alone (clamped at 100 here), but a second
        # session joined before the Response came back: the rate no longer
        # matches B_e, so the Response is turned into an UPDATE.
        task.receive(Join("s1", 500 * MBPS, ("h", "r1")), None)
        task.receive(Join("s2", 500 * MBPS, ("h2", "r1")), None)
        recorder.clear()
        task.receive(Response("s1", RESPONSE, 100 * MBPS, LINK_ID), None)
        assert task.state.state_of("s1") == WAITING_PROBE
        response = [p for p in recorder.upstream_packets() if isinstance(p, Response)][0]
        assert response.tau == UPDATE

    def test_update_tau_marks_waiting_probe_and_passes_through(self, task, recorder):
        task.receive(Join("s1", 500 * MBPS, ("h", "r1")), None)
        recorder.clear()
        task.receive(Response("s1", UPDATE, 70 * MBPS, ("r5", "r6")), None)
        assert task.state.state_of("s1") == WAITING_PROBE
        response = [p for p in recorder.upstream_packets() if isinstance(p, Response)][0]
        assert response.tau == UPDATE

    def test_bottleneck_detected_when_all_restricted_settle(self, task, recorder):
        settle(task, "s2", 50 * MBPS)
        task.receive(Join("s1", 500 * MBPS, ("h", "r1")), None)
        recorder.clear()
        task.receive(Response("s1", RESPONSE, 50 * MBPS, LINK_ID), None)
        response = [p for p in recorder.upstream_packets() if isinstance(p, Response)][0]
        assert response.tau == BOTTLENECK
        assert response.restricting_link == LINK_ID
        # The other settled session is notified with a Bottleneck packet.
        bottlenecks = [p for p in recorder.upstream_packets() if isinstance(p, Bottleneck)]
        assert [p.session_id for p in bottlenecks] == ["s2"]

    def test_no_bottleneck_while_someone_still_probes(self, task, recorder):
        task.receive(Join("s2", 500 * MBPS, ("h2", "r1")), None)  # still WAITING_RESPONSE
        task.receive(Join("s1", 500 * MBPS, ("h", "r1")), None)
        recorder.clear()
        task.receive(Response("s1", RESPONSE, 50 * MBPS, LINK_ID), None)
        response = [p for p in recorder.upstream_packets() if isinstance(p, Response)][0]
        assert response.tau == RESPONSE


class TestUpdateAndBottleneck(object):
    def test_update_forwarded_once_for_idle_sessions(self, task, recorder):
        settle(task, "s1", 40 * MBPS)
        task.receive(Update("s1"), None)
        assert task.state.state_of("s1") == WAITING_PROBE
        assert len([p for p in recorder.upstream_packets() if isinstance(p, Update)]) == 1
        recorder.clear()
        # A second Update while already WAITING_PROBE is absorbed.
        task.receive(Update("s1"), None)
        assert recorder.upstream_packets() == []

    def test_bottleneck_forwarded_only_for_idle_restricted_sessions(self, task, recorder):
        settle(task, "s1", 40 * MBPS)
        task.receive(Bottleneck("s1"), None)
        assert len(recorder.upstream_packets()) == 1
        recorder.clear()
        task.state.set_state("s1", WAITING_PROBE)
        task.receive(Bottleneck("s1"), None)
        assert recorder.upstream_packets() == []
        recorder.clear()
        task.state.set_state("s1", IDLE)
        task.state.add_unrestricted("s1")
        task.receive(Bottleneck("s1"), None)
        assert recorder.upstream_packets() == []


class TestSetBottleneck(object):
    def test_forwarded_with_beta_true_when_link_is_a_bottleneck(self, task, recorder):
        settle(task, "s1", 50 * MBPS)
        settle(task, "s2", 50 * MBPS)
        task.receive(SetBottleneck("s1", False), None)
        forwarded = recorder.downstream_packets()[0]
        assert isinstance(forwarded, SetBottleneck)
        assert forwarded.found_bottleneck is True
        # The session stays in R_e: this link restricts it.
        assert "s1" in task.state.restricted

    def test_unrestricted_session_moves_to_f_and_wakes_others(self, task, recorder):
        settle(task, "s1", 20 * MBPS)
        settle(task, "s2", 40 * MBPS)
        # B_e = 50, s1 sits below it -> moved to F_e; s2... is below B_e too,
        # so nobody is woken; beta passes through unchanged.
        task.receive(SetBottleneck("s1", False), None)
        assert "s1" in task.state.unrestricted
        forwarded = recorder.downstream_packets()[0]
        assert forwarded.found_bottleneck is False

    def test_settled_peers_at_the_old_rate_are_woken(self, task, recorder):
        # Three sessions in R_e: s1 settled at 20 (restricted elsewhere), s2
        # and s3 settled at the current B_e = 100/3.  When s1 moves to F_e,
        # B_e grows to 40, so s2 and s3 must re-probe.
        third = 100 * MBPS / 3.0
        settle(task, "s1", 20 * MBPS)
        settle(task, "s2", third)
        settle(task, "s3", third)
        task.receive(SetBottleneck("s1", False), None)
        updates = sorted(p.session_id for p in recorder.upstream_packets() if isinstance(p, Update))
        assert updates == ["s2", "s3"]
        assert task.state.state_of("s2") == WAITING_PROBE
        assert "s1" in task.state.unrestricted

    def test_dropped_when_session_is_mid_probe(self, task, recorder):
        settle(task, "s2", 60 * MBPS)
        task.state.add_restricted("s1")
        task.state.set_state("s1", WAITING_RESPONSE)
        task.receive(SetBottleneck("s1", False), None)
        assert recorder.downstream_packets() == []


class TestLeave(object):
    def test_leave_forgets_session_and_forwards(self, task, recorder):
        settle(task, "s1", 50 * MBPS)
        task.receive(Leave("s1"), None)
        assert not task.state.knows("s1")
        assert isinstance(recorder.downstream_packets()[0], Leave)

    def test_leave_wakes_settled_peers_at_the_bottleneck_rate(self, task, recorder):
        # B_e = (100 - 10) / 2 = 45: both restricted sessions sit at it.
        settle(task, "leaving", 45 * MBPS)
        settle(task, "staying", 45 * MBPS)
        settle(task, "small", 10 * MBPS, restricted=False)
        task.receive(Leave("leaving"), None)
        updates = [p.session_id for p in recorder.upstream_packets() if isinstance(p, Update)]
        assert updates == ["staying"]
        assert task.state.state_of("staying") == WAITING_PROBE
        # The unrestricted small session is not woken by the departure.
        assert task.state.state_of("small") == IDLE

    def test_leave_of_unknown_session_is_harmless(self, task, recorder):
        task.receive(Leave("ghost"), None)
        assert isinstance(recorder.downstream_packets()[0], Leave)
