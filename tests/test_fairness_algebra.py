"""Unit tests for the rate algebras."""

import fractions
import math

import pytest

from repro.fairness.algebra import FloatAlgebra, default_algebra


class TestFloatAlgebra(object):
    def test_exact_equality(self, float_algebra):
        assert float_algebra.equal(5.0, 5.0)
        assert not float_algebra.equal(5.0, 6.0)

    def test_tolerant_equality(self, float_algebra):
        base = 100e6 / 3.0
        perturbed = base * (1.0 + 1e-12)
        assert float_algebra.equal(base, perturbed)
        assert not float_algebra.equal(base, base * (1.0 + 1e-6))

    def test_less_is_strict(self, float_algebra):
        base = 100e6 / 7.0
        assert not float_algebra.less(base * (1.0 + 1e-13), base)
        assert float_algebra.less(base, base * 1.01)
        assert not float_algebra.less(base * 1.01, base)

    def test_derived_comparisons(self, float_algebra):
        assert float_algebra.less_equal(1.0, 1.0)
        assert float_algebra.less_equal(1.0, 2.0)
        assert float_algebra.greater(2.0, 1.0)
        assert float_algebra.greater_equal(2.0, 2.0)
        assert float_algebra.is_zero(0.0)
        assert not float_algebra.is_zero(1.0)

    def test_infinity_handling(self, float_algebra):
        assert float_algebra.equal(math.inf, math.inf)
        assert not float_algebra.equal(math.inf, 1e9)
        assert float_algebra.less(1e9, math.inf)
        assert not float_algebra.less(math.inf, 1e9)

    def test_divide(self, float_algebra):
        assert float_algebra.divide(10.0, 4.0) == pytest.approx(2.5)

    def test_minimum(self, float_algebra):
        assert float_algebra.minimum([3.0, 1.0, 2.0]) == 1.0
        with pytest.raises(ValueError):
            float_algebra.minimum([])


class TestExactAlgebra(object):
    def test_division_is_exact(self, exact_algebra):
        third = exact_algebra.divide(1, 3)
        assert third == fractions.Fraction(1, 3)
        assert exact_algebra.equal(third + third + third, 1)

    def test_equality_distinguishes_tiny_differences(self, exact_algebra):
        third = exact_algebra.divide(1, 3)
        assert not exact_algebra.equal(third, 0.3333333333)

    def test_less(self, exact_algebra):
        assert exact_algebra.less(exact_algebra.divide(1, 3), exact_algebra.divide(1, 2))
        assert not exact_algebra.less(exact_algebra.divide(1, 2), exact_algebra.divide(1, 2))

    def test_infinity_handling(self, exact_algebra):
        assert exact_algebra.equal(math.inf, math.inf)
        assert exact_algebra.less(fractions.Fraction(5), math.inf)
        assert not exact_algebra.less(math.inf, fractions.Fraction(5))

    def test_mixed_types(self, exact_algebra):
        assert exact_algebra.equal(exact_algebra.divide(100, 4), 25.0)
        assert exact_algebra.greater(25.5, exact_algebra.divide(100, 4))

    def test_minimum(self, exact_algebra):
        values = [exact_algebra.divide(1, 2), exact_algebra.divide(1, 3), math.inf]
        assert exact_algebra.minimum(values) == fractions.Fraction(1, 3)


def test_default_algebra_is_float_based():
    algebra = default_algebra()
    assert isinstance(algebra, FloatAlgebra)
    # The default is shared (cheap), and usable right away.
    assert default_algebra() is algebra


def test_float_and_exact_agree_on_clear_cut_cases(float_algebra, exact_algebra):
    for first, second in [(1.0, 2.0), (5.0, 5.0), (7.5, 2.5)]:
        assert float_algebra.equal(first, second) == exact_algebra.equal(first, second)
        assert float_algebra.less(first, second) == exact_algebra.less(first, second)
