"""Unit tests for the classic water-filling oracle."""

import math

import pytest

from repro.fairness.algebra import ExactAlgebra
from repro.fairness.verification import is_max_min_fair
from repro.fairness.waterfilling import water_filling
from repro.network.units import MBPS
from tests.conftest import make_session


def test_empty_input_gives_empty_allocation():
    allocation = water_filling([])
    assert len(allocation) == 0


def test_single_session_gets_the_access_capacity(single_link_network):
    session = make_session(single_link_network, "solo", "r0", "r1")
    allocation = water_filling([session])
    # The backbone link (100 Mbps) is tighter than the 1000 Mbps access links.
    assert allocation.rate("solo") == pytest.approx(100 * MBPS)


def test_two_sessions_share_a_single_bottleneck(single_link_network):
    sessions = [
        make_session(single_link_network, "a", "r0", "r1"),
        make_session(single_link_network, "b", "r0", "r1"),
    ]
    allocation = water_filling(sessions)
    assert allocation.rate("a") == pytest.approx(50 * MBPS)
    assert allocation.rate("b") == pytest.approx(50 * MBPS)


def test_demand_limited_session_releases_bandwidth(single_link_network):
    sessions = [
        make_session(single_link_network, "greedy", "r0", "r1"),
        make_session(single_link_network, "capped", "r0", "r1", demand=20 * MBPS),
    ]
    allocation = water_filling(sessions)
    assert allocation.rate("capped") == pytest.approx(20 * MBPS)
    assert allocation.rate("greedy") == pytest.approx(80 * MBPS)


def test_parking_lot_canonical_allocation(parking_lot_network):
    sessions = [make_session(parking_lot_network, "long", "r0", "r3")]
    for hop in range(3):
        sessions.append(
            make_session(parking_lot_network, "short%d" % hop, "r%d" % hop, "r%d" % (hop + 1))
        )
    allocation = water_filling(sessions)
    for session in sessions:
        assert allocation.rate(session.session_id) == pytest.approx(50 * MBPS)


def test_parking_lot_with_unbalanced_shorts(parking_lot_network):
    # Two shorts on the first hop, one on the second, none on the third: the
    # long session is limited by the first hop (100/3), the second-hop short
    # gets the rest of its link.
    sessions = [
        make_session(parking_lot_network, "long", "r0", "r3"),
        make_session(parking_lot_network, "shortA", "r0", "r1"),
        make_session(parking_lot_network, "shortB", "r0", "r1"),
        make_session(parking_lot_network, "shortC", "r1", "r2"),
    ]
    allocation = water_filling(sessions)
    third = 100 * MBPS / 3.0
    assert allocation.rate("long") == pytest.approx(third)
    assert allocation.rate("shortA") == pytest.approx(third)
    assert allocation.rate("shortB") == pytest.approx(third)
    assert allocation.rate("shortC") == pytest.approx(100 * MBPS - third)


def test_dumbbell_bottleneck_split(dumbbell_network):
    sessions = [
        make_session(dumbbell_network, "x", "west0", "east0"),
        make_session(dumbbell_network, "y", "west1", "east1"),
        make_session(dumbbell_network, "z", "west2", "east2", demand=10 * MBPS),
    ]
    allocation = water_filling(sessions)
    assert allocation.rate("z") == pytest.approx(10 * MBPS)
    assert allocation.rate("x") == pytest.approx(45 * MBPS)
    assert allocation.rate("y") == pytest.approx(45 * MBPS)


def test_star_cross_traffic(star_network):
    # Sessions leaf0 -> leaf1 and leaf0 -> leaf2 share the leaf0 -> hub link;
    # a third session leaf3 -> leaf1 shares the hub -> leaf1 link with the
    # first one.
    sessions = [
        make_session(star_network, "a", "leaf0", "leaf1"),
        make_session(star_network, "b", "leaf0", "leaf2"),
        make_session(star_network, "c", "leaf3", "leaf1"),
    ]
    allocation = water_filling(sessions)
    assert allocation.rate("a") == pytest.approx(50 * MBPS)
    assert allocation.rate("b") == pytest.approx(50 * MBPS)
    assert allocation.rate("c") == pytest.approx(50 * MBPS)
    assert is_max_min_fair(sessions, allocation)


def test_infinite_demand_bounded_by_access_link(single_link_network):
    session = make_session(
        single_link_network, "solo", "r0", "r1", demand=math.inf, capacity=30 * MBPS
    )
    allocation = water_filling([session])
    assert allocation.rate("solo") == pytest.approx(30 * MBPS)


def test_result_is_always_max_min_fair(dumbbell_network):
    sessions = [
        make_session(dumbbell_network, "s%d" % index, "west%d" % (index % 3), "east%d" % ((index + 1) % 3))
        for index in range(6)
    ]
    allocation = water_filling(sessions)
    assert is_max_min_fair(sessions, allocation)
    assert allocation.is_feasible(sessions)


def test_exact_algebra_gives_exact_thirds(single_link_network):
    sessions = [
        make_session(single_link_network, "s%d" % index, "r0", "r1") for index in range(3)
    ]
    allocation = water_filling(sessions, algebra=ExactAlgebra())
    import fractions

    expected = fractions.Fraction(int(100 * MBPS), 3)
    for index in range(3):
        assert allocation.rate("s%d" % index) == expected
