"""Unit tests for the simulation loop."""

import pytest

from repro.simulator.errors import SimulationLimitExceeded
from repro.simulator.simulation import Simulator


def test_clock_starts_at_zero(simulator):
    assert simulator.now == 0.0
    assert simulator.events_processed == 0


def test_schedule_and_run_until_quiescent(simulator):
    fired = []
    simulator.schedule(0.5, lambda: fired.append(simulator.now))
    simulator.schedule(0.2, lambda: fired.append(simulator.now))
    quiescence_time = simulator.run_until_quiescent()
    assert fired == [0.2, 0.5]
    assert quiescence_time == 0.5
    assert simulator.pending_events == 0


def test_events_can_schedule_more_events(simulator):
    fired = []

    def first():
        fired.append("first")
        simulator.schedule(0.1, lambda: fired.append("second"))

    simulator.schedule(1.0, first)
    simulator.run_until_quiescent()
    assert fired == ["first", "second"]
    assert simulator.now == pytest.approx(1.1)


def test_run_with_horizon_stops_before_later_events(simulator):
    fired = []
    simulator.schedule(1.0, lambda: fired.append("early"))
    simulator.schedule(5.0, lambda: fired.append("late"))
    simulator.run(until=2.0)
    assert fired == ["early"]
    assert simulator.now == 2.0
    assert simulator.pending_events == 1
    simulator.run(until=10.0)
    assert fired == ["early", "late"]


def test_run_advances_clock_to_horizon_when_queue_drains(simulator):
    simulator.schedule(0.5, lambda: None)
    simulator.run(until=3.0)
    assert simulator.now == 3.0


def test_schedule_negative_delay_rejected(simulator):
    with pytest.raises(ValueError):
        simulator.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected(simulator):
    simulator.schedule(1.0, lambda: None)
    simulator.run_until_quiescent()
    with pytest.raises(ValueError):
        simulator.schedule_at(0.5, lambda: None)


def test_schedule_at_absolute_time(simulator):
    fired = []
    simulator.schedule_at(2.5, lambda: fired.append(simulator.now))
    simulator.run_until_quiescent()
    assert fired == [2.5]


def test_stop_condition_halts_run(simulator):
    fired = []
    for index in range(10):
        simulator.schedule(index * 0.1 + 0.1, lambda index=index: fired.append(index))
    simulator.run(stop_condition=lambda: len(fired) >= 3)
    assert len(fired) == 3
    assert simulator.pending_events == 7


def test_stop_request_halts_run(simulator):
    fired = []

    def fire_and_stop():
        fired.append("stopped-here")
        simulator.stop()

    simulator.schedule(0.1, fire_and_stop)
    simulator.schedule(0.2, lambda: fired.append("never"))
    simulator.run()
    assert fired == ["stopped-here"]
    assert simulator.pending_events == 1


def test_cancelled_events_do_not_fire(simulator):
    fired = []
    event = simulator.schedule(0.5, lambda: fired.append("cancelled"))
    simulator.schedule(1.0, lambda: fired.append("kept"))
    simulator.cancel(event)
    simulator.run_until_quiescent()
    assert fired == ["kept"]


def test_event_limit_raises(simulator):
    simulator.max_events = 5

    def reschedule():
        simulator.schedule(0.1, reschedule)

    simulator.schedule(0.1, reschedule)
    with pytest.raises(SimulationLimitExceeded):
        simulator.run_until_quiescent()
    assert simulator.events_processed == 5


def test_time_limit_raises():
    simulator = Simulator(max_time=1.0)
    simulator.schedule(2.0, lambda: None)
    with pytest.raises(SimulationLimitExceeded):
        simulator.run_until_quiescent()


def test_step_returns_false_when_empty(simulator):
    assert simulator.step() is False
    simulator.schedule(0.1, lambda: None)
    assert simulator.step() is True
    assert simulator.step() is False


def test_tracer_hook_sees_every_event_tag():
    class RecordingTracer(object):
        def __init__(self):
            self.tags = []

        def on_event(self, time, tag):
            self.tags.append(tag)

    tracer = RecordingTracer()
    simulator = Simulator(tracer=tracer)
    simulator.schedule(0.1, lambda: None, tag="alpha")
    simulator.schedule(0.2, lambda: None, tag="beta")
    simulator.run_until_quiescent()
    assert tracer.tags == ["alpha", "beta"]


def test_events_processed_counts(simulator):
    for index in range(4):
        simulator.schedule(0.1 * (index + 1), lambda: None)
    simulator.run_until_quiescent()
    assert simulator.events_processed == 4


# -------------------------------------------------- non-cancellable callbacks


def test_schedule_callback_fires_in_order_with_events(simulator):
    fired = []
    simulator.schedule(0.2, lambda: fired.append("event"))
    simulator.schedule_callback(0.1, lambda: fired.append("bare-early"))
    simulator.schedule_callback(0.2, lambda: fired.append("bare-tied"))
    simulator.run_until_quiescent()
    # The tie at t=0.2 breaks by insertion order: the Event came first.
    assert fired == ["bare-early", "event", "bare-tied"]
    assert simulator.events_processed == 3


def test_schedule_callback_negative_delay_rejected(simulator):
    with pytest.raises(ValueError):
        simulator.schedule_callback(-0.1, lambda: None)


def test_schedule_callback_counts_as_pending(simulator):
    simulator.schedule_callback(0.5, lambda: None)
    assert simulator.pending_events == 1
    simulator.run_until_quiescent()
    assert simulator.pending_events == 0


# ------------------------------------------------------ end-of-instant hooks


def test_instant_callback_runs_after_all_same_instant_events(simulator):
    fired = []

    def first():
        fired.append("first")
        simulator.call_at_instant_end(lambda: fired.append("deferred"))

    simulator.schedule(1.0, first)
    simulator.schedule(1.0, lambda: fired.append("second"))
    simulator.schedule(2.0, lambda: fired.append("next-instant"))
    simulator.run_until_quiescent()
    assert fired == ["first", "second", "deferred", "next-instant"]


def test_instant_callbacks_preserve_registration_order(simulator):
    fired = []

    def register_two():
        simulator.call_at_instant_end(lambda: fired.append("a"))
        simulator.call_at_instant_end(lambda: fired.append("b"))

    simulator.schedule(1.0, register_two)
    simulator.run_until_quiescent()
    assert fired == ["a", "b"]


def test_instant_callback_sees_the_instant_clock(simulator):
    seen = []
    simulator.schedule(1.5, lambda: simulator.call_at_instant_end(
        lambda: seen.append(simulator.now)))
    simulator.schedule(3.0, lambda: None)
    simulator.run_until_quiescent()
    assert seen == [1.5]


def test_instant_callback_may_schedule_same_instant_events(simulator):
    fired = []

    def deferred():
        fired.append("deferred")
        simulator.schedule(0.0, lambda: fired.append("late-arrival"))

    simulator.schedule(1.0, lambda: simulator.call_at_instant_end(deferred))
    simulator.run_until_quiescent()
    # The event scheduled *by* the flush still belongs to the instant and runs
    # before the clock may advance.
    assert fired == ["deferred", "late-arrival"]
    assert simulator.now == 1.0


def test_instant_callback_may_redefer(simulator):
    fired = []

    def again():
        fired.append("again")

    def deferred():
        fired.append("deferred")
        simulator.call_at_instant_end(again)

    simulator.schedule(1.0, lambda: simulator.call_at_instant_end(deferred))
    simulator.run_until_quiescent()
    assert fired == ["deferred", "again"]


def test_instant_callbacks_flush_before_horizon_return(simulator):
    fired = []
    simulator.schedule(1.0, lambda: simulator.call_at_instant_end(
        lambda: fired.append("flushed")))
    simulator.schedule(5.0, lambda: fired.append("beyond"))
    simulator.run(until=2.0)
    assert fired == ["flushed"]
    assert simulator.pending_instant_callbacks == 0


def test_instant_callbacks_flush_in_general_loop(simulator):
    # max_events forces the fully-featured run loop instead of the fast drain.
    simulator.max_events = 100
    fired = []

    def first():
        fired.append("first")
        simulator.call_at_instant_end(lambda: fired.append("deferred"))

    simulator.schedule(1.0, first)
    simulator.schedule(1.0, lambda: fired.append("second"))
    simulator.run_until_quiescent()
    assert fired == ["first", "second", "deferred"]


def test_step_completes_the_instant_before_advancing(simulator):
    fired = []
    simulator.schedule(1.0, lambda: simulator.call_at_instant_end(
        lambda: fired.append("deferred")))
    simulator.schedule(2.0, lambda: fired.append("later"))
    assert simulator.step()           # the t=1.0 event
    assert fired == []
    assert simulator.pending_instant_callbacks == 1
    assert simulator.step()           # the flush (not an event)
    assert fired == ["deferred"]
    assert simulator.events_processed == 1
    assert simulator.step()           # the t=2.0 event
    assert fired == ["deferred", "later"]
    assert not simulator.step()


def test_stop_condition_reevaluated_after_instant_flush(simulator):
    # A predicate that only flips inside the flushed callback (the shape of
    # "wait for a batched API.Rate delivery") must stop the run at the flush,
    # not one event later.
    delivered = []
    simulator.schedule(1.0, lambda: simulator.call_at_instant_end(
        lambda: delivered.append("rate")))
    simulator.schedule(2.0, lambda: delivered.append("overshoot"))
    simulator.run(stop_condition=lambda: bool(delivered))
    assert delivered == ["rate"]
    assert simulator.now == 1.0
    assert simulator.pending_events == 1


def test_instant_flush_is_not_an_event(simulator):
    simulator.schedule(1.0, lambda: simulator.call_at_instant_end(lambda: None))
    simulator.run_until_quiescent()
    assert simulator.events_processed == 1
    assert simulator.now == 1.0


class TestBookkeepingTimers(object):
    """schedule_bookkeeping: out-of-band timers that are not events."""

    def test_fires_before_any_event_at_or_after_its_due_time(self):
        simulator = Simulator()
        order = []
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.schedule(3.0, lambda: order.append("late"))
        simulator.schedule_bookkeeping(2.0, lambda due: order.append(("timer", due)))
        simulator.run_until_quiescent()
        assert order == ["early", ("timer", 2.0), "late"]

    def test_is_invisible_to_events_and_quiescence(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: None)
        simulator.schedule_bookkeeping(5.0, fired.append)
        assert simulator.pending_events == 1
        assert simulator.pending_bookkeeping == 1
        quiescence = simulator.run_until_quiescent()
        # The timer fired (at run end; its due lies past the last event) but
        # neither the event count, the clock nor the quiescence time moved.
        assert fired == [5.0]
        assert simulator.events_processed == 1
        assert quiescence == 1.0
        assert simulator.now == 1.0
        assert simulator.pending_bookkeeping == 0

    def test_horizon_runs_fire_only_matured_timers(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(9.0, lambda: None)
        simulator.schedule_bookkeeping(2.0, lambda due: fired.append(due))
        simulator.schedule_bookkeeping(8.0, lambda due: fired.append(due))
        simulator.run(until=5.0)
        assert fired == [2.0]
        assert simulator.pending_bookkeeping == 1
        simulator.run_until_quiescent()
        assert fired == [2.0, 8.0]

    def test_stopped_runs_leave_timers_pending(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, simulator.stop)
        simulator.schedule(2.0, lambda: None)
        simulator.schedule_bookkeeping(1.5, fired.append)
        simulator.run()
        assert fired == []
        assert simulator.pending_bookkeeping == 1
        simulator.run_until_quiescent()
        assert fired == [1.5]

    def test_rejects_negative_delay(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            simulator.schedule_bookkeeping(-1.0, lambda due: None)

    def test_ties_run_in_registration_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_bookkeeping(1.0, lambda due: order.append("a"))
        simulator.schedule_bookkeeping(1.0, lambda due: order.append("b"))
        simulator.schedule(2.0, lambda: order.append("event"))
        simulator.run_until_quiescent()
        assert order == ["a", "b", "event"]

    def test_condition_stopped_runs_leave_timers_pending(self):
        # A stop_condition firing on the event that empties the queue must
        # not flush future-dated timers: the run is paused, not drained
        # (matching the sharded engine's behavior).
        simulator = Simulator()
        fired = []
        done = []
        simulator.schedule(1.0, lambda: done.append(True))
        simulator.schedule_bookkeeping(5.0, fired.append)
        simulator.run(stop_condition=lambda: bool(done))
        assert fired == []
        assert simulator.pending_bookkeeping == 1
        simulator.run_until_quiescent()
        assert fired == [5.0]
