"""Property-based tests (hypothesis) for the distributed B-Neck protocol.

The headline theorem of the paper (Theorem 1): for any steady-state session
configuration, B-Neck eventually becomes permanently stable and every session
is assigned its max-min fair rate.  These tests generate random topologies,
session populations, arrival patterns and churn, run the full distributed
protocol on the discrete-event simulator, and assert exactly that:

* the event queue drains (quiescence);
* the network is stable in the sense of Definition 2;
* the assigned rates equal the centralized oracle's max-min rates;
* after churn (departures and rate changes) the same holds again.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.protocol import BNeckProtocol
from repro.core.quiescence import check_stability
from repro.core.validation import validate_against_oracle
from repro.network.graph import Network
from repro.network.units import MBPS
from repro.simulator.clock import microseconds, milliseconds

CAPACITY_CHOICES = [10 * MBPS, 50 * MBPS, 100 * MBPS]
DEMAND_CHOICES = [math.inf, 5 * MBPS, 20 * MBPS, 60 * MBPS]


@st.composite
def protocol_scenario(draw):
    """A random chain topology, session set, arrival times and churn plan."""
    router_count = draw(st.integers(min_value=2, max_value=5))
    capacities = draw(
        st.lists(st.sampled_from(CAPACITY_CHOICES),
                 min_size=router_count - 1, max_size=router_count - 1)
    )
    session_count = draw(st.integers(min_value=1, max_value=6))
    sessions = draw(
        st.lists(
            st.tuples(
                st.integers(0, router_count - 1),     # source router
                st.integers(0, router_count - 1),     # destination router
                st.sampled_from(DEMAND_CHOICES),      # demand
                st.floats(0.0, 1.0),                  # join time within 1 ms
            ),
            min_size=session_count,
            max_size=session_count,
        )
    )
    churn = draw(
        st.lists(
            st.tuples(
                st.integers(0, session_count - 1),
                st.sampled_from(["leave", "change"]),
                st.sampled_from(DEMAND_CHOICES[1:]),
            ),
            max_size=3,
            unique_by=lambda action: action[0],
        )
    )
    return router_count, capacities, sessions, churn


def build_protocol(router_count, capacities):
    network = Network("property-protocol")
    for index in range(router_count):
        network.add_router("r%d" % index)
    for index, capacity in enumerate(capacities):
        network.add_link("r%d" % index, "r%d" % (index + 1), capacity, microseconds(1))
    return BNeckProtocol(network)


def install_sessions(protocol, session_specs, router_count):
    applications = {}
    for index, (source_index, sink_index, demand, join_fraction) in enumerate(session_specs):
        if source_index == sink_index:
            sink_index = (sink_index + 1) % router_count
        network = protocol.network
        source_host = network.attach_host("r%d" % source_index, 1000 * MBPS, microseconds(1))
        sink_host = network.attach_host("r%d" % sink_index, 1000 * MBPS, microseconds(1))
        session = protocol.create_session(
            source_host.node_id, sink_host.node_id, demand=demand, session_id="p%d" % index
        )
        applications["p%d" % index] = protocol.join(
            session, at=join_fraction * milliseconds(1)
        )
    return applications


@settings(max_examples=40, deadline=None)
@given(protocol_scenario())
def test_theorem1_quiescence_and_max_min_rates(scenario):
    router_count, capacities, session_specs, _ = scenario
    protocol = build_protocol(router_count, capacities)
    install_sessions(protocol, session_specs, router_count)
    protocol.run_until_quiescent()

    assert protocol.quiescent
    assert check_stability(protocol).stable
    result = validate_against_oracle(protocol)
    assert result.valid, "distributed rates diverge from the oracle: %r" % result


@settings(max_examples=30, deadline=None)
@given(protocol_scenario())
def test_theorem1_still_holds_after_churn(scenario):
    router_count, capacities, session_specs, churn = scenario
    protocol = build_protocol(router_count, capacities)
    install_sessions(protocol, session_specs, router_count)
    protocol.run_until_quiescent()

    active = {"p%d" % index for index in range(len(session_specs))}
    base_time = protocol.simulator.now
    for offset, (session_index, action, new_demand) in enumerate(churn):
        session_id = "p%d" % session_index
        if session_id not in active:
            continue
        when = base_time + (offset + 1) * microseconds(50)
        if action == "leave":
            protocol.leave(session_id, at=when)
            active.discard(session_id)
        else:
            protocol.change(session_id, new_demand, at=when)
    protocol.run_until_quiescent()

    assert protocol.quiescent
    assert check_stability(protocol).stable
    assert validate_against_oracle(protocol).valid
    assert {session.session_id for session in protocol.active_sessions()} == active


@settings(max_examples=30, deadline=None)
@given(protocol_scenario())
def test_every_active_session_is_notified_a_rate(scenario):
    # The API contract: API.Rate is eventually invoked on every active session.
    router_count, capacities, session_specs, _ = scenario
    protocol = build_protocol(router_count, capacities)
    applications = install_sessions(protocol, session_specs, router_count)
    protocol.run_until_quiescent()
    for application in applications.values():
        assert application.notification_count >= 1
        assert application.current_rate > 0


@settings(max_examples=25, deadline=None)
@given(protocol_scenario())
def test_notified_rates_match_final_assignment(scenario):
    router_count, capacities, session_specs, _ = scenario
    protocol = build_protocol(router_count, capacities)
    install_sessions(protocol, session_specs, router_count)
    protocol.run_until_quiescent()
    current = protocol.current_allocation()
    notified = protocol.notified_allocation()
    assert current.equals(notified)


@st.composite
def capacity_plan(draw):
    """A protocol scenario plus a sequence of random link-capacity changes."""
    router_count, capacities, sessions, _churn = draw(protocol_scenario())
    events = draw(
        st.lists(
            st.tuples(
                st.integers(0, router_count - 2),        # chain link index
                st.sampled_from([0.1, 0.3, 0.7, 1.5]),   # factor of original Ce
            ),
            min_size=1,
            max_size=3,
        )
    )
    return router_count, capacities, sessions, events


@settings(max_examples=25, deadline=None)
@given(capacity_plan())
def test_capacity_changes_reconverge_to_waterfilling(plan):
    """After every capacity-change quiescence point the distributed rates
    match the water-filling oracle on the *updated* capacities (the extension
    of Theorem 1 the capacity-dynamics workload relies on)."""
    router_count, capacities, session_specs, events = plan
    protocol = build_protocol(router_count, capacities)
    # A livelock after a capacity change should fail loudly, not hang CI.
    protocol.simulator.max_events = 2_000_000
    install_sessions(protocol, session_specs, router_count)
    protocol.run_until_quiescent()

    for link_index, factor in events:
        source, target = "r%d" % link_index, "r%d" % (link_index + 1)
        new_capacity = capacities[link_index] * factor
        protocol.change_capacity(source, target, new_capacity, both_directions=True)
        protocol.run_until_quiescent()

        assert protocol.quiescent
        assert protocol.network.link(source, target).capacity == new_capacity
        result = validate_against_oracle(protocol)
        assert result.valid and result.matches_waterfilling, (
            "rates diverge from water-filling after %s->%s x%s: %r"
            % (source, target, factor, result)
        )
