"""Unit tests for sessions and the session registry."""

import math

import pytest

from repro.network.session import Session, SessionRegistry
from repro.network.topology import line_topology
from repro.network.units import MBPS
from tests.conftest import make_session


class TestSession(object):
    def test_basic_properties(self, parking_lot_network):
        session = make_session(parking_lot_network, "s1", "r0", "r3")
        assert session.path_length == 5  # host + 3 backbone hops + host
        assert session.access_link.source == session.source
        assert session.links[-1].target == session.destination
        assert len(session.transit_links) == session.path_length - 1

    def test_effective_demand_clamped_by_access_link(self, parking_lot_network):
        unlimited = make_session(parking_lot_network, "s1", "r0", "r3")
        assert unlimited.effective_demand() == unlimited.access_link.capacity
        limited = make_session(parking_lot_network, "s2", "r0", "r3", demand=10 * MBPS)
        assert limited.effective_demand() == 10 * MBPS

    def test_crosses(self, parking_lot_network):
        session = make_session(parking_lot_network, "s1", "r0", "r2")
        first_backbone = parking_lot_network.link("r0", "r1")
        last_backbone = parking_lot_network.link("r2", "r3")
        assert session.crosses(first_backbone)
        assert not session.crosses(last_backbone)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Session("s", "a", "a", ["a"], [], demand=1.0)
        network = line_topology(2)
        session = make_session(network, "ok", "r0", "r1")
        with pytest.raises(ValueError):
            Session("bad", session.source, session.destination,
                    session.node_path, session.links[:-1], demand=1.0)
        with pytest.raises(ValueError):
            Session("bad2", session.source, session.destination,
                    session.node_path, session.links, demand=0.0)

    def test_equality_and_hash_by_id(self, parking_lot_network):
        first = make_session(parking_lot_network, "same", "r0", "r1")
        second = make_session(parking_lot_network, "same", "r1", "r2")
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1


class TestSessionRegistry(object):
    def test_add_remove_and_lookup(self, parking_lot_network):
        registry = SessionRegistry()
        session = make_session(parking_lot_network, "s1", "r0", "r3")
        registry.add(session)
        assert "s1" in registry
        assert registry.get("s1") is session
        assert len(registry) == 1
        removed = registry.remove("s1")
        assert removed is session
        assert "s1" not in registry
        assert len(registry) == 0

    def test_duplicate_add_rejected(self, parking_lot_network):
        registry = SessionRegistry()
        session = make_session(parking_lot_network, "s1", "r0", "r1")
        registry.add(session)
        with pytest.raises(ValueError):
            registry.add(make_session(parking_lot_network, "s1", "r1", "r2"))

    def test_sessions_on_link(self, parking_lot_network):
        registry = SessionRegistry()
        long_session = make_session(parking_lot_network, "long", "r0", "r3")
        short_session = make_session(parking_lot_network, "short", "r0", "r1")
        registry.add(long_session)
        registry.add(short_session)
        shared = parking_lot_network.link("r0", "r1")
        exclusive = parking_lot_network.link("r2", "r3")
        assert registry.sessions_on_link(shared) == {long_session, short_session}
        assert registry.sessions_on_link(exclusive) == {long_session}

    def test_sessions_on_link_updated_on_remove(self, parking_lot_network):
        registry = SessionRegistry()
        session = make_session(parking_lot_network, "s1", "r0", "r2")
        registry.add(session)
        link = parking_lot_network.link("r1", "r2")
        assert registry.sessions_on_link(link) == {session}
        registry.remove("s1")
        assert registry.sessions_on_link(link) == set()

    def test_loaded_links(self, parking_lot_network):
        registry = SessionRegistry()
        registry.add(make_session(parking_lot_network, "s1", "r0", "r1"))
        loaded = registry.loaded_links()
        # host -> r0, r0 -> r1, r1 -> host': three distinct directed links.
        assert len(loaded) == 3

    def test_update_demand(self, parking_lot_network):
        registry = SessionRegistry()
        session = make_session(parking_lot_network, "s1", "r0", "r1", demand=math.inf)
        registry.add(session)
        registry.update_demand("s1", 5 * MBPS)
        assert session.demand == 5 * MBPS
        with pytest.raises(ValueError):
            registry.update_demand("s1", 0.0)

    def test_iteration_and_active_sessions(self, parking_lot_network):
        registry = SessionRegistry()
        ids = ["a", "b", "c"]
        for session_id in ids:
            registry.add(make_session(parking_lot_network, session_id, "r0", "r1"))
        assert [session.session_id for session in registry] == ids
        assert [session.session_id for session in registry.active_sessions()] == ids

    def test_clear(self, parking_lot_network):
        registry = SessionRegistry()
        registry.add(make_session(parking_lot_network, "s1", "r0", "r1"))
        registry.clear()
        assert len(registry) == 0
        assert registry.loaded_links() == []
