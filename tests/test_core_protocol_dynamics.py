"""Integration tests: session dynamics (arrivals, departures, rate changes).

The defining feature of B-Neck is that any change in the session configuration
reactivates it, the new max-min rates are found and notified, and the protocol
becomes quiescent again.  These tests drive exactly those transitions and check
rates, re-notifications, packet activity and stability after every step.
"""

import pytest

from repro.core import check_stability, validate_against_oracle
from repro.core.protocol import BNeckProtocol
from repro.network.topology import dumbbell_topology
from repro.network.units import MBPS
from repro.simulator.clock import milliseconds
from tests.conftest import open_bneck_session, parking_lot_protocol


class TestDepartures(object):
    def test_leaving_session_frees_bandwidth(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, staying = open_bneck_session(protocol, "r0", "r1", "staying")
        open_bneck_session(protocol, "r0", "r1", "leaving")
        protocol.run_until_quiescent()
        assert staying.current_rate == pytest.approx(50 * MBPS)

        protocol.leave("leaving")
        protocol.run_until_quiescent()
        assert staying.current_rate == pytest.approx(100 * MBPS)
        assert len(protocol.registry) == 1
        assert validate_against_oracle(protocol).valid
        assert check_stability(protocol)

    def test_departed_session_receives_no_further_notifications(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, leaving = open_bneck_session(protocol, "r0", "r1", "leaving")
        open_bneck_session(protocol, "r0", "r1", "staying")
        protocol.run_until_quiescent()
        notifications_at_departure = leaving.notification_count
        protocol.leave("leaving")
        protocol.run_until_quiescent()
        assert leaving.notification_count == notifications_at_departure

    def test_all_sessions_leaving_empties_the_network(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        for index in range(4):
            open_bneck_session(protocol, "r0", "r1", "s%d" % index)
        protocol.run_until_quiescent()
        for index in range(4):
            protocol.leave("s%d" % index)
        protocol.run_until_quiescent()
        assert len(protocol.registry) == 0
        assert protocol.quiescent
        # Every remaining RouterLink state is empty and hence stable.
        assert check_stability(protocol)

    def test_staggered_departures_keep_rates_max_min(self):
        protocol = parking_lot_protocol(hop_count=3)
        _, long_app = open_bneck_session(protocol, "r0", "r3", "long")
        for hop in range(3):
            open_bneck_session(protocol, "r%d" % hop, "r%d" % (hop + 1), "short%d" % hop)
        protocol.run_until_quiescent()
        assert long_app.current_rate == pytest.approx(50 * MBPS)

        for hop in range(3):
            protocol.leave("short%d" % hop)
            protocol.run_until_quiescent()
            assert validate_against_oracle(protocol).valid
        # All the shorts are gone: the long session takes a full link.
        assert long_app.current_rate == pytest.approx(100 * MBPS)


class TestArrivalsAfterQuiescence(object):
    def test_new_arrival_reduces_existing_rates(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, first = open_bneck_session(protocol, "r0", "r1", "first")
        protocol.run_until_quiescent()
        assert first.current_rate == pytest.approx(100 * MBPS)

        _, second = open_bneck_session(protocol, "r0", "r1", "second")
        protocol.run_until_quiescent()
        assert first.current_rate == pytest.approx(50 * MBPS)
        assert second.current_rate == pytest.approx(50 * MBPS)
        # The incumbent was re-notified with its reduced rate.
        assert first.notification_count >= 2

    def test_scheduled_future_joins_fire_in_order(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, early = open_bneck_session(protocol, "r0", "r1", "early", at=milliseconds(1))
        _, late = open_bneck_session(protocol, "r0", "r1", "late", at=milliseconds(5))
        quiescence = protocol.run_until_quiescent()
        assert quiescence > milliseconds(5)
        assert early.current_rate == pytest.approx(50 * MBPS)
        assert late.current_rate == pytest.approx(50 * MBPS)
        # The early session briefly enjoyed the full link.
        assert early.notifications[0].rate == pytest.approx(100 * MBPS)


class TestRateChanges(object):
    def test_lowering_the_demand_frees_bandwidth(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, changing = open_bneck_session(protocol, "r0", "r1", "changing")
        _, other = open_bneck_session(protocol, "r0", "r1", "other")
        protocol.run_until_quiescent()
        assert other.current_rate == pytest.approx(50 * MBPS)

        protocol.change("changing", 10 * MBPS)
        protocol.run_until_quiescent()
        assert changing.current_rate == pytest.approx(10 * MBPS)
        assert other.current_rate == pytest.approx(90 * MBPS)
        assert validate_against_oracle(protocol).valid
        assert check_stability(protocol)

    def test_raising_the_demand_reclaims_bandwidth(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, changing = open_bneck_session(protocol, "r0", "r1", "changing", demand=10 * MBPS)
        _, other = open_bneck_session(protocol, "r0", "r1", "other")
        protocol.run_until_quiescent()
        assert changing.current_rate == pytest.approx(10 * MBPS)
        assert other.current_rate == pytest.approx(90 * MBPS)

        protocol.change("changing", 500 * MBPS)
        protocol.run_until_quiescent()
        assert changing.current_rate == pytest.approx(50 * MBPS)
        assert other.current_rate == pytest.approx(50 * MBPS)
        assert validate_against_oracle(protocol).valid

    def test_change_to_current_rate_is_cheap(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        open_bneck_session(protocol, "r0", "r1", "a")
        open_bneck_session(protocol, "r0", "r1", "b")
        protocol.run_until_quiescent()
        packets_before = protocol.tracer.total
        # Changing the demand of "a" to exactly its current rate still triggers
        # a Probe cycle but converges immediately.
        protocol.change("a", 50 * MBPS)
        protocol.run_until_quiescent()
        assert validate_against_oracle(protocol).valid
        session_a_path = protocol.session("a").path_length
        assert protocol.tracer.total - packets_before <= 4 * session_a_path


class TestMixedChurn(object):
    def test_simultaneous_join_leave_change(self):
        network = dumbbell_topology(side_count=4, bottleneck_capacity=100 * MBPS)
        protocol = BNeckProtocol(network)
        _, a = open_bneck_session(protocol, "west0", "east0", "a")
        _, b = open_bneck_session(protocol, "west1", "east1", "b")
        _, c = open_bneck_session(protocol, "west2", "east2", "c")
        protocol.run_until_quiescent()

        now = protocol.simulator.now
        protocol.leave("a", at=now + milliseconds(0.1))
        protocol.change("b", 15 * MBPS, at=now + milliseconds(0.2))
        _, d = open_bneck_session(protocol, "west3", "east3", "d", at=now + milliseconds(0.3))
        protocol.run_until_quiescent()

        assert b.current_rate == pytest.approx(15 * MBPS)
        assert c.current_rate == pytest.approx(42.5 * MBPS)
        assert d.current_rate == pytest.approx(42.5 * MBPS)
        assert validate_against_oracle(protocol).valid
        assert check_stability(protocol)

    def test_rapid_fire_changes_converge(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        _, app = open_bneck_session(protocol, "r0", "r1", "volatile")
        open_bneck_session(protocol, "r0", "r1", "steady")
        protocol.run_until_quiescent()
        now = protocol.simulator.now
        # Several demand changes scheduled before the previous ones settle.
        for index, demand in enumerate((10, 60, 5, 35)):
            protocol.change("volatile", demand * MBPS, at=now + index * 1e-5)
        protocol.run_until_quiescent()
        assert app.current_rate == pytest.approx(35 * MBPS)
        assert validate_against_oracle(protocol).valid
        assert check_stability(protocol)

    def test_arrival_during_convergence_of_previous_arrival(self, single_link_network):
        protocol = BNeckProtocol(single_link_network)
        applications = []
        # Joins spaced closer than a probe round-trip: every join interrupts
        # the convergence of the previous one.
        for index in range(8):
            _, application = open_bneck_session(
                protocol, "r0", "r1", "s%d" % index, at=index * 2e-6
            )
            applications.append(application)
        protocol.run_until_quiescent()
        for application in applications:
            assert application.current_rate == pytest.approx(100 * MBPS / 8.0)
        assert validate_against_oracle(protocol).valid
        assert check_stability(protocol)
