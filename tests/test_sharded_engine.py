"""Tests for the sharded execution engine (:mod:`repro.simulator.sharding`).

Covered here:

* the :class:`ShardedSimulator` primitive itself -- lane scheduling, epoch
  barriers, mailbox ordering, instant-end callbacks, horizons and limits;
* the engine knob parser;
* protocol integration -- sharded runs validate against the oracle, reproduce
  the sequential engine's final allocations bit-exactly, and work through the
  full :class:`~repro.experiments.runner.ExperimentRunner` churn machinery;
* the fork-parallel mode -- bit-identical to the serial sharded schedule
  (skipped where ``os.fork`` is unavailable).
"""

import os

import pytest

from repro.core.protocol import BNeckProtocol
from repro.core.validation import validate_against_oracle
from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.network.partition import partition_network
from repro.network.topology import single_link_topology
from repro.network.transit_stub import small_network
from repro.network.units import MBPS
from repro.simulator.clock import microseconds
from repro.simulator.errors import SimulationLimitExceeded
from repro.simulator.sharding import ShardedSimulator, parse_engine
from repro.workloads.dynamics import DynamicPhase
from repro.workloads.generator import WorkloadGenerator

HAVE_FORK = hasattr(os, "fork")


def _sharded_simulator(shards=2, lookahead=None, **kwargs):
    plan = partition_network(small_network("lan", seed=0), shards)
    return ShardedSimulator(plan, lookahead=lookahead, **kwargs)


class TestParseEngine(object):
    def test_values(self):
        assert parse_engine(None) == ("sequential", 1, False)
        assert parse_engine("sequential") == ("sequential", 1, False)
        assert parse_engine("sharded") == ("sharded", 4, False)
        assert parse_engine("sharded:2") == ("sharded", 2, False)
        assert parse_engine("sharded:8/parallel") == ("sharded", 8, True)

    def test_rejects_garbage(self):
        for bad in (
            "threads",
            "sharded:zero",
            "sharded:0",
            "sharded:-1",
            "sharded:",                 # dangling colon, no count
            "sharded:/parallel",        # dangling colon before the modifier
            "sharded:4x",               # trailing junk after the count
            "sharded:4/turbo",          # unknown modifier
            "sharded:4/parallel/parallel",
            "sequential:2",             # shard count on the sequential engine
            4,                          # not a string
        ):
            with pytest.raises(ValueError):
                parse_engine(bad)

    def test_error_messages_are_actionable(self):
        with pytest.raises(ValueError, match=r"sharded:K\[/parallel\]"):
            parse_engine("sharded:0")
        with pytest.raises(ValueError, match="'zero'"):
            parse_engine("sharded:zero")
        with pytest.raises(ValueError, match="missing its shard count"):
            parse_engine("sharded:")


class TestShardedSimulatorPrimitive(object):
    def test_lanes_have_independent_queues_and_forked_randoms(self):
        simulator = _sharded_simulator(4, seed=11)
        assert len(simulator.lanes) == 4
        seeds = [lane.random.seed for lane in simulator.lanes]
        assert len(set(seeds)) == 4
        # Forks are label-derived, hence stable across runs.
        again = _sharded_simulator(4, seed=11)
        assert [lane.random.seed for lane in again.lanes] == seeds

    def test_events_execute_in_time_order_within_a_lane(self):
        simulator = _sharded_simulator(2)
        order = []
        simulator.schedule(2e-6, lambda: order.append("b"))
        simulator.schedule(1e-6, lambda: order.append("a"))
        simulator.schedule(3e-6, lambda: order.append("c"))
        simulator.run_until_quiescent()
        assert order == ["a", "b", "c"]
        assert simulator.events_processed == 3
        assert simulator.pending_events == 0

    def test_explicit_shard_scheduling(self):
        simulator = _sharded_simulator(2)
        seen = []
        simulator.schedule_on(1, 1e-6, lambda: seen.append(simulator.current_shard))
        simulator.schedule_on(0, 1e-6, lambda: seen.append(simulator.current_shard))
        simulator.run_until_quiescent()
        assert sorted(seen) == [0, 1]
        assert simulator.current_shard is None

    def test_cross_lane_scheduling_mid_run_is_rejected(self):
        simulator = _sharded_simulator(2)
        failures = []

        def cross():
            try:
                simulator.schedule_on(1, simulator.now + 1e-6, lambda: None)
            except RuntimeError:
                failures.append("rejected")

        simulator.schedule_on(0, 1e-6, cross)
        simulator.run_until_quiescent()
        assert failures == ["rejected"]

    def test_remote_post_delivers_after_the_lookahead(self):
        simulator = _sharded_simulator(2, lookahead=1e-6)
        log = []
        simulator.remote_handler = lambda payload: log.append(
            (payload, simulator.current_shard, simulator.now)
        )
        send_time = 1e-6

        def sender():
            simulator.post_remote(1, 2e-6, "hello")

        simulator.schedule_on(0, send_time, sender)
        simulator.run_until_quiescent()
        assert log == [("hello", 1, send_time + 2e-6)]

    def test_mailbox_barrier_preserves_source_lane_order(self):
        simulator = _sharded_simulator(4, lookahead=1e-6)
        received = []
        simulator.remote_handler = received.append
        # Three lanes send to lane 3 at the same instant with the same delay:
        # deliveries must arrive in source-lane order, deterministically.
        for lane in (0, 1, 2):
            simulator.schedule_on(
                lane,
                1e-6,
                lambda lane=lane: simulator.post_remote(3, 5e-6, "from-%d" % lane),
            )
        simulator.run_until_quiescent()
        assert received == ["from-0", "from-1", "from-2"]

    def test_idle_remote_post_goes_straight_to_the_target_lane(self):
        simulator = _sharded_simulator(2)
        received = []
        simulator.remote_handler = received.append
        simulator.post_remote(1, 1e-6, "install-time")
        assert simulator.pending_events == 1
        simulator.run_until_quiescent()
        assert received == ["install-time"]

    def test_instant_end_callbacks_flush_per_lane(self):
        simulator = _sharded_simulator(2)
        order = []

        def event():
            order.append("event@%r" % simulator.now)
            simulator.call_at_instant_end(lambda: order.append("flush@%r" % simulator.now))

        simulator.schedule_on(0, 1e-6, event)
        simulator.schedule_on(0, 1e-6, lambda: order.append("peer@%r" % simulator.now))
        simulator.run_until_quiescent()
        # The flush runs after every event of the instant, before time moves.
        assert order == ["event@1e-06", "peer@1e-06", "flush@1e-06"]
        assert simulator.pending_instant_callbacks == 0

    def test_run_until_horizon_semantics_match_sequential(self):
        simulator = _sharded_simulator(2)
        fired = []
        simulator.schedule_on(0, 1e-6, lambda: fired.append("early"))
        simulator.schedule_on(1, 5e-6, lambda: fired.append("late"))
        now = simulator.run(until=2e-6)
        assert fired == ["early"]
        assert now == 2e-6
        assert simulator.pending_events == 1
        now = simulator.run(until=1e-5)
        assert fired == ["early", "late"]
        assert now == 1e-5

    def test_stop_condition_and_stop(self):
        simulator = _sharded_simulator(2)
        fired = []
        for index in range(5):
            simulator.schedule_on(0, (index + 1) * 1e-6, lambda i=index: fired.append(i))
        simulator.run(stop_condition=lambda: len(fired) >= 2)
        assert fired == [0, 1]
        simulator.stop()  # a stale stop must not wedge the next run
        simulator.run_until_quiescent()
        assert fired == [0, 1, 2, 3, 4]

    def test_event_limit_raises(self):
        simulator = _sharded_simulator(2, max_events=3)
        for index in range(10):
            simulator.schedule_on(0, (index + 1) * 1e-6, lambda: None)
        with pytest.raises(SimulationLimitExceeded):
            simulator.run_until_quiescent()

    def test_cancel_works_across_lanes(self):
        simulator = _sharded_simulator(2)
        fired = []
        keep = simulator.schedule_on(0, 1e-6, lambda: fired.append("keep"))
        drop = simulator.schedule_on(1, 1e-6, lambda: fired.append("drop"))
        simulator.cancel(drop)
        assert simulator.pending_events == 1
        simulator.run_until_quiescent()
        assert fired == ["keep"]
        assert keep.consumed

    def test_lookahead_override_must_not_exceed_plan_bound(self):
        plan = partition_network(small_network("lan", seed=0), 2)
        with pytest.raises(ValueError):
            ShardedSimulator(plan, lookahead=plan.lookahead * 2)
        with pytest.raises(ValueError):
            ShardedSimulator(plan, lookahead=0.0)


def _populated_protocol(engine, count=30, seed=9, size="small"):
    spec = ScenarioSpec(size=size, delay_model="lan", seed=seed, engine=engine)
    runner = ExperimentRunner(spec, generator_seed=seed)
    runner.populate(count, join_window=(0.0, 1e-3))
    return runner


class TestShardedProtocolRuns(object):
    def test_mass_join_validates_and_matches_sequential_bits(self):
        sequential = _populated_protocol("sequential")
        sequential.run_to_quiescence()
        expected = sequential.protocol.current_allocation().as_dict()
        for engine in ("sharded:2", "sharded:4"):
            runner = _populated_protocol(engine)
            runner.run_to_quiescence()
            assert validate_against_oracle(runner.protocol).valid
            allocation = runner.protocol.current_allocation().as_dict()
            assert allocation == expected  # bit-identical, not approx

    def test_churn_phases_through_experiment_runner(self):
        outcomes = {}
        for engine in ("sequential", "sharded:3"):
            runner = _populated_protocol(engine, count=40, seed=4)
            runner.checkpoint("mass join")
            phases = [
                DynamicPhase("leave", leaves=15),
                DynamicPhase("join", joins=20),
                DynamicPhase("mixed", joins=8, leaves=8, changes=8),
            ]
            runner.run_phases(phases)
            measurement = runner.checkpoint("after churn")
            assert measurement.validated
            outcomes[engine] = (
                runner.protocol.current_allocation().as_dict(),
                measurement.total_packets,
            )
        assert outcomes["sequential"][0] == outcomes["sharded:3"][0]

    def test_sharded_run_is_deterministic_across_repeats(self):
        first = _populated_protocol("sharded:4", count=25, seed=13)
        first.run_to_quiescence()
        second = _populated_protocol("sharded:4", count=25, seed=13)
        second.run_to_quiescence()
        assert (
            first.protocol.current_allocation().as_dict()
            == second.protocol.current_allocation().as_dict()
        )
        assert first.protocol.tracer.total == second.protocol.tracer.total
        assert (
            first.protocol.simulator.events_processed
            == second.protocol.simulator.events_processed
        )

    def test_use_shard_plan_guards(self):
        network = small_network("lan", seed=0)
        plan = partition_network(network, 2)
        protocol = BNeckProtocol(network)  # single-queue simulator
        with pytest.raises(TypeError):
            protocol.use_shard_plan(plan)

        sharded = BNeckProtocol(network, simulator=ShardedSimulator(plan))
        generator = WorkloadGenerator(network, seed=1)
        sharded.use_shard_plan(plan)
        generator.populate(sharded, 2, join_window=(0.0, 1e-4))
        with pytest.raises(RuntimeError):
            sharded.use_shard_plan(plan)

    def test_engine_knob_rejects_protocol_factory(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                size="small",
                engine="sharded:2",
                protocol_factory=lambda network, tracer: BNeckProtocol(network),
            )

    def test_single_link_topology_runs_sharded(self):
        # Degenerate case: fewer clusters than shards, sessions on one link.
        network = single_link_topology(capacity=100 * MBPS, delay=microseconds(1))
        plan = partition_network(network, 4)
        protocol = BNeckProtocol(network, simulator=ShardedSimulator(plan))
        protocol.use_shard_plan(plan)
        source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
        sink = network.attach_host("r1", 1000 * MBPS, microseconds(1))
        protocol.open_session(source.node_id, sink.node_id, session_id="a")
        protocol.run_until_quiescent()
        assert protocol.current_allocation().as_dict()["a"] == pytest.approx(100 * MBPS)


@pytest.mark.skipif(not HAVE_FORK, reason="fork-parallel mode needs POSIX")
class TestParallelShardedRuns(object):
    def _one_shot(self, engine, seed=7, count=30):
        runner = _populated_protocol(engine, count=count, seed=seed)
        ids = list(runner.active_ids)
        for session_id in ids[:6]:
            runner.protocol.leave(session_id, at=4e-3)
        for session_id in ids[6:12]:
            runner.protocol.change(session_id, 2 * MBPS, at=8e-3)
        quiescence = runner.run_to_quiescence()
        protocol = runner.protocol
        return {
            "quiescence": quiescence,
            "packets": protocol.tracer.total,
            "by_type": dict(protocol.tracer.by_type),
            "events": protocol.simulator.events_processed,
            "allocation": protocol.current_allocation().as_dict(),
            "notified": protocol.notified_allocation().as_dict(),
            "rate_callbacks": protocol.rate_callbacks,
            "in_flight": protocol.in_flight_packets,
            "valid": validate_against_oracle(protocol).valid,
            "log_recorded": protocol.notification_log.recorded,
        }

    def test_parallel_run_is_bit_identical_to_serial(self):
        serial = self._one_shot("sharded:2")
        parallel = self._one_shot("sharded:2/parallel")
        assert parallel == serial
        assert parallel["valid"]
        assert parallel["in_flight"] == 0

    def test_ring_log_gathers_in_run_records_despite_eviction(self):
        # Pre-fork records can be evicted from a ring log by in-run traffic;
        # the gather must still merge every in-run record (deltas are counted
        # from `recorded`, not positions).
        def run(engine):
            spec = ScenarioSpec(
                size="small",
                delay_model="lan",
                seed=6,
                engine=engine,
                notification_log="ring:8",
                batch_notifications=False,
            )
            runner = ExperimentRunner(spec, generator_seed=6)
            runner.populate(10, join_window=(0.0, 1e-4))
            for index in range(8):  # fill the ring before the run
                runner.protocol.notify_rate("warmup-%d" % index, float(index))
            runner.run_to_quiescence()
            log = runner.protocol.notification_log
            return log.recorded, [(r.session_id, r.rate) for r in log]

        serial_recorded, serial_retained = run("sharded:2")
        parallel_recorded, parallel_retained = run("sharded:2/parallel")
        assert parallel_recorded == serial_recorded
        assert parallel_recorded > 8
        # The retained window holds the newest in-run records, not the
        # pre-fork warmup entries.
        assert parallel_retained == serial_retained
        assert not any(sid.startswith("warmup") for sid, _ in parallel_retained)

    def test_workers_stay_resident_across_runs(self):
        runner = _populated_protocol("sharded:2/parallel", count=5, seed=3)
        simulator = runner.protocol.simulator
        assert not simulator.workers_live
        runner.run_to_quiescence()
        assert runner.protocol.quiescent
        assert simulator.workers_live
        pids = list(simulator._pool.pids)
        # A second run reuses the same pool instead of raising (the old
        # engine's one-shot contract) or re-forking.
        runner.run_to_quiescence()
        assert simulator.workers_live
        assert simulator._pool.pids == pids
        runner.close()
        assert not simulator.workers_live

    def _five_phase_churn(self, engine, seed=6, count=40):
        spec = ScenarioSpec(size="small", delay_model="lan", seed=seed, engine=engine)
        runner = ExperimentRunner(spec, generator_seed=seed)
        runner.populate(count, join_window=(0.0, 1e-3))
        first = runner.checkpoint("mass join")
        phases = [
            DynamicPhase("leave", leaves=10),
            DynamicPhase("change", changes=10),
            DynamicPhase("join2", joins=10),
            DynamicPhase("mixed", joins=6, leaves=6, changes=6),
        ]
        outcomes = runner.run_phases(phases, inter_phase_gap=1e-3)
        final = runner.checkpoint("after churn")
        protocol = runner.protocol
        summary = {
            "first_quiescence": first.quiescence_time,
            "phase_quiescence": [outcome.quiescence_time for outcome in outcomes],
            "phase_packets": [outcome.packets for outcome in outcomes],
            "phase_callbacks": [outcome.rate_callbacks for outcome in outcomes],
            "packets": protocol.tracer.total,
            "by_type": dict(protocol.tracer.by_type),
            "events": protocol.simulator.events_processed,
            "allocation": protocol.current_allocation().as_dict(),
            "notified": protocol.notified_allocation().as_dict(),
            "rate_callbacks": protocol.rate_callbacks,
            "in_flight": protocol.in_flight_packets,
            "validated": final.validated,
            "active": len(runner.active_ids),
        }
        runner.close()
        return summary

    def test_multi_phase_churn_matches_serial_bit_exactly(self):
        # The tentpole contract: phase N+1 is scheduled after phase N's
        # observed quiescence, workers stay resident, and the whole
        # multi-phase run reproduces the serial sharded schedule bit-exactly.
        serial = self._five_phase_churn("sharded:2")
        parallel = self._five_phase_churn("sharded:2/parallel")
        assert parallel == serial
        assert parallel["validated"]
        assert parallel["in_flight"] == 0

    def test_direct_leave_and_change_broadcast_between_runs(self):
        results = {}
        for engine in ("sharded:2", "sharded:2/parallel"):
            runner = _populated_protocol(engine, count=12, seed=8)
            runner.run_to_quiescence()
            victim, changed = runner.active_ids[0], runner.active_ids[1]
            now = runner.protocol.simulator.now
            # Direct API calls between runs are transparently converted into
            # broadcast actions when workers are live.
            runner.protocol.leave(victim, at=now + 1e-4)
            runner.protocol.change(changed, 2 * MBPS, at=now + 2e-4)
            runner.run_to_quiescence()
            allocation = runner.protocol.current_allocation().as_dict()
            assert victim not in allocation
            assert allocation[changed] == pytest.approx(2 * MBPS)
            results[engine] = allocation
            runner.close()
        assert results["sharded:2"] == results["sharded:2/parallel"]

    def test_past_dated_actions_are_rejected_before_the_broadcast(self):
        # A batch the driver rejects must never reach the workers: their idle
        # clocks lag the driver's, so their own past-time guards would not
        # fire and the rejected action would silently execute anyway.
        runner = _populated_protocol("sharded:2/parallel", count=10, seed=8)
        runner.run_to_quiescence()
        protocol = runner.protocol
        victim = runner.active_ids[0]
        past = protocol.simulator.now - 1e-4
        with pytest.raises(RuntimeError):
            protocol.leave(victim, at=past)
        runner.run_to_quiescence()
        # The session is still active: no worker acted on the rejected batch.
        assert victim in protocol.current_allocation().as_dict()
        runner.close()

    def test_runs_after_shutdown_raise_instead_of_reforking(self):
        # After close() the workers' authoritative state is gone; a later
        # parallel run must raise, not silently re-fork from the driver's
        # cleared mirror queues (which would produce wrong allocations).
        runner = _populated_protocol("sharded:2/parallel", count=10, seed=8)
        runner.run_to_quiescence()
        runner.close()
        victim = runner.active_ids[0]
        runner.protocol.leave(victim, at=runner.protocol.simulator.now + 1e-4)
        with pytest.raises(RuntimeError, match="shut down"):
            runner.run_to_quiescence()

    def test_shutdown_before_the_first_run_does_not_retire_the_engine(self):
        runner = _populated_protocol("sharded:2/parallel", count=5, seed=3)
        runner.close()  # nothing started yet: must not brick the engine
        runner.run_to_quiescence()
        assert runner.protocol.simulator.workers_live
        assert validate_against_oracle(runner.protocol).valid
        runner.close()

    def test_direct_join_with_live_workers_is_rejected(self):
        runner = _populated_protocol("sharded:2/parallel", count=5, seed=3)
        runner.run_to_quiescence()
        protocol = runner.protocol
        generator = runner.generator
        source_router, destination_router = generator.random_source.pair(
            generator.attachment_routers
        )
        source = runner.network.attach_host(source_router, 1000 * MBPS, microseconds(1))
        sink = runner.network.attach_host(
            destination_router, 1000 * MBPS, microseconds(1)
        )
        session = protocol.create_session(source.node_id, sink.node_id)
        with pytest.raises(RuntimeError, match="JoinAction"):
            protocol.join(session, at=protocol.simulator.now + 1e-4)
        runner.close()

    def test_horizon_runs_execute_on_the_pool_and_match_serial(self):
        # run(until=...) goes through RUN_UNTIL epochs: events past the
        # horizon (and undelivered cross-shard mail) stay pending in the
        # workers and drain on the next run, matching the serial schedule.
        def horizon_run(engine):
            runner = _populated_protocol(engine, count=20, seed=11)
            protocol = runner.protocol
            mid = protocol.run(until=3e-4)  # mid-burst: plenty still queued
            pending_mid = protocol.simulator.pending_events
            assert pending_mid > 0
            assert not protocol.quiescent
            quiescence = protocol.run_until_quiescent()
            assert protocol.quiescent
            result = (
                mid,
                pending_mid,
                quiescence,
                protocol.simulator.events_processed,
                protocol.tracer.total,
                protocol.current_allocation().as_dict(),
            )
            runner.close()
            return result

        serial = horizon_run("sharded:2")
        parallel = horizon_run("sharded:2/parallel")
        assert parallel == serial

    def test_parallel_limits_are_enforced_per_phase(self):
        runner = _populated_protocol("sharded:2/parallel", count=20, seed=11)
        simulator = runner.protocol.simulator
        simulator.max_events = 50  # far below the mass join's event count
        with pytest.raises(SimulationLimitExceeded):
            runner.run_to_quiescence()
        runner.close()

        runner = _populated_protocol("sharded:2/parallel", count=20, seed=11)
        simulator = runner.protocol.simulator
        simulator.max_time = 2e-4  # the join burst alone outlives this
        with pytest.raises(SimulationLimitExceeded):
            runner.run_to_quiescence()
        runner.close()

    def test_parallel_rejects_serial_only_features(self):
        runner = _populated_protocol("sharded:2/parallel", count=5, seed=3)
        with pytest.raises(RuntimeError, match="stop_condition"):
            runner.protocol.run(stop_condition=lambda: True)
        runner.protocol.simulator.tracer = object()
        with pytest.raises(RuntimeError, match="tracer"):
            runner.run_to_quiescence()
        runner.protocol.simulator.tracer = None
        runner.close()

    def test_worker_killed_mid_run_raises_naming_the_lane(self):
        # A worker that dies (EOF on its pipe) must surface as a clear
        # RuntimeError naming the lane -- never a hang.
        import signal

        runner = _populated_protocol("sharded:2/parallel", count=8, seed=5)
        runner.run_to_quiescence()
        simulator = runner.protocol.simulator
        victim_pid = simulator._pool.pids[1]
        os.kill(victim_pid, signal.SIGKILL)
        os.waitpid(victim_pid, 0)
        victim = runner.active_ids[0]
        # The very next command -- here the action broadcast behind leave() --
        # must surface the dead worker; it must not take until the next run.
        with pytest.raises(RuntimeError, match="lane 1"):
            runner.protocol.leave(victim, at=simulator.now + 1e-4)
        # The failure tears the pool down: no zombies, no half-alive engine.
        assert not simulator.workers_live

    def test_stop_in_a_worker_ends_the_run_at_the_barrier_not_a_hang(self):
        # stop() executed inside a worker latches that worker's flag; without
        # the per-epoch reset, every later drain would return immediately and
        # the driver's epoch loop would spin forever on an unchanged t_min.
        simulator = _sharded_simulator(2, lookahead=1e-6, parallel=True)
        simulator.remote_handler = lambda payload: None
        simulator.schedule_on(0, 1e-6, simulator.stop)
        simulator.schedule_on(1, 5e-6, lambda: None)
        simulator.run_until_quiescent()
        # The run ended at the first epoch barrier: the stop event ran, the
        # later event on the other lane is still pending.
        assert simulator.events_processed == 1
        assert simulator.pending_events == 1
        # A later run completes normally -- the stop was not latched.
        simulator.run_until_quiescent()
        assert simulator.events_processed == 2
        assert simulator.pending_events == 0
        simulator.shutdown()

    def test_worker_failure_surfaces_as_runtime_error(self):
        simulator = _sharded_simulator(2, parallel=True)
        simulator.remote_handler = lambda payload: None

        def boom():
            raise ValueError("worker exploded")

        simulator.schedule_on(1, 1e-6, boom)
        with pytest.raises(RuntimeError, match="worker exploded"):
            simulator.run_until_quiescent()
