"""Shared fixtures and helpers of the test suite."""

import pytest

from repro.core.protocol import BNeckProtocol
from repro.fairness.algebra import ExactAlgebra, FloatAlgebra
from repro.network.graph import Network
from repro.network.routing import PathComputer, path_links
from repro.network.session import Session
from repro.network.topology import (
    dumbbell_topology,
    parking_lot_topology,
    single_link_topology,
    star_topology,
)
from repro.network.units import MBPS
from repro.simulator.clock import microseconds
from repro.simulator.simulation import Simulator

HOST_CAPACITY = 1000 * MBPS
HOST_DELAY = microseconds(1)


@pytest.fixture
def float_algebra():
    return FloatAlgebra()


@pytest.fixture
def exact_algebra():
    return ExactAlgebra()


@pytest.fixture
def simulator():
    return Simulator()


# --------------------------------------------------------------------- helpers


def attach_endpoints(network, source_router, destination_router,
                     capacity=HOST_CAPACITY, delay=HOST_DELAY):
    """Attach a fresh source host and destination host and return their ids."""
    source = network.attach_host(source_router, capacity, delay)
    destination = network.attach_host(destination_router, capacity, delay)
    return source.node_id, destination.node_id


def make_session(network, session_id, source_router, destination_router,
                 demand=float("inf"), capacity=HOST_CAPACITY, delay=HOST_DELAY):
    """Build a Session between two fresh hosts attached to the given routers."""
    source_host, destination_host = attach_endpoints(
        network, source_router, destination_router, capacity, delay
    )
    computer = PathComputer(network)
    node_path = computer.route(source_host, destination_host)
    links = path_links(network, node_path)
    return Session(session_id, source_host, destination_host, node_path, links, demand)


def open_bneck_session(protocol, source_router, destination_router,
                       session_id, demand=float("inf"), at=None):
    """Attach hosts and join a session on a running BNeckProtocol."""
    source_host, destination_host = attach_endpoints(
        protocol.network, source_router, destination_router
    )
    session = protocol.create_session(
        source_host, destination_host, demand=demand, session_id=session_id
    )
    application = protocol.join(session, at=at)
    return session, application


def parking_lot_protocol(hop_count=3, capacity=100 * MBPS):
    """A BNeckProtocol over a parking-lot topology (no sessions yet)."""
    network = parking_lot_topology(hop_count, capacity=capacity)
    return BNeckProtocol(network)


def parking_lot_workload(protocol, hop_count=3):
    """The canonical parking-lot workload: one long session plus one per hop."""
    applications = {}
    _, applications["long"] = open_bneck_session(
        protocol, "r0", "r%d" % hop_count, session_id="long"
    )
    for hop in range(hop_count):
        _, applications["short%d" % hop] = open_bneck_session(
            protocol, "r%d" % hop, "r%d" % (hop + 1), session_id="short%d" % hop
        )
    return applications


# ------------------------------------------------------------------- fixtures


@pytest.fixture
def single_link_network():
    return single_link_topology(capacity=100 * MBPS)


@pytest.fixture
def parking_lot_network():
    return parking_lot_topology(3, capacity=100 * MBPS)


@pytest.fixture
def dumbbell_network():
    return dumbbell_topology(side_count=3, bottleneck_capacity=100 * MBPS)


@pytest.fixture
def star_network():
    return star_topology(4, capacity=100 * MBPS)


@pytest.fixture
def two_router_network():
    """A hand-built two-router network used by low-level tests."""
    network = Network("two-routers")
    network.add_router("a")
    network.add_router("b")
    network.add_link("a", "b", 100 * MBPS, microseconds(1))
    return network


class ForwardingRecorder(object):
    """A stand-in for BNeckProtocol that records what tasks try to send.

    It implements the forwarding / notification interface the RouterLink,
    SourceNode and DestinationNode tasks rely on, without any simulation, so
    handler-level unit tests can inspect exactly which packets a single
    handler invocation produced.
    """

    def __init__(self):
        self.downstream = []
        self.upstream = []
        self.notifications = []
        self._last_rates = {}

    def forward_downstream(self, link_id, packet):
        self.downstream.append((link_id, packet))

    def forward_upstream(self, link_id, packet):
        self.upstream.append((link_id, packet))

    # RouterLink uses this alias when originating Update/Bottleneck packets
    # for sessions other than the one whose packet triggered the handler.
    def send_upstream_from(self, link_id, packet):
        self.forward_upstream(link_id, packet)

    def forward_upstream_from_destination(self, session_id, packet):
        self.upstream.append((("destination", session_id), packet))

    def notify_rate(self, session_id, rate):
        self.notifications.append((session_id, rate))
        self._last_rates[session_id] = rate

    def last_notified_rate(self, session_id):
        return self._last_rates.get(session_id)

    # Convenience accessors -------------------------------------------------

    def downstream_packets(self):
        return [packet for _, packet in self.downstream]

    def upstream_packets(self):
        return [packet for _, packet in self.upstream]

    def clear(self):
        self.downstream = []
        self.upstream = []
        self.notifications = []


@pytest.fixture
def recorder():
    return ForwardingRecorder()
