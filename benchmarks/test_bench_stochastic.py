"""Stochastic-scenario benchmarks: sustained open-loop churn.

The fast tier times the Poisson-churn scenario (Poisson arrivals with
exponential holding times, emitted as broadcastable action batches) on the
Medium transit-stub network and is guarded against regressions by
``benchmarks/baseline.json`` (see ``scripts/check_bench_regression.py``).
The ``slow_bench`` tier runs a paper-medium sustained-churn case -- many
consecutive open-loop segments, every quiescence point validated against the
centralized/water-filling oracles -- in the nightly/manual CI job.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.workloads.stochastic import PoissonChurnWorkload


def _run_poisson(size, seed, workload, engine="sequential", trace_packets=True,
                 notification_log=None):
    spec = ScenarioSpec(
        size=size,
        delay_model="lan",
        seed=seed,
        engine=engine,
        trace_packets=trace_packets,
        notification_log=notification_log,
    )
    with ExperimentRunner(spec) as runner:
        measurements = runner.run_scenario(workload)
        return {
            "measurements": measurements,
            "events": runner.protocol.simulator.events_processed,
            "packets": runner.tracer.total,
            "active": len(runner.active_ids),
            "allocation": runner.protocol.current_allocation().as_dict(),
        }


def test_poisson_churn_sustained(benchmark, print_table):
    """Fast tier: three sustained Poisson-churn segments on Medium (LAN)."""
    workload = PoissonChurnWorkload(
        arrival_rate=25000.0, mean_holding=6e-3, horizon=10e-3, segments=3
    )

    def run():
        return _run_poisson("medium", seed=17, workload=workload)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    measurements = result["measurements"]
    assert all(measurement.validated for measurement in measurements)
    assert result["active"] > 0
    print_table(
        "Poisson churn -- Medium LAN, %d segments" % len(measurements),
        format_table(
            ("segment", "quiescent at [ms]", "packets", "active sessions"),
            [
                (
                    measurement.description,
                    measurement.quiescence_time * 1e3,
                    measurement.packets,
                    result["active"],
                )
                for measurement in measurements
            ],
        ),
    )


@pytest.mark.slow_bench
def test_paper_medium_sustained_churn(print_table):
    """Nightly tier: sustained open-loop churn on the paper's full Medium.

    Six consecutive Poisson segments keep a large session population in
    steady churn (the open-loop regime Experiment 2's one-shot bursts never
    reach); every segment boundary is a validated quiescence point.
    """
    workload = PoissonChurnWorkload(
        arrival_rate=40000.0, mean_holding=8e-3, horizon=10e-3, segments=6
    )
    result = _run_poisson(
        "paper-medium",
        seed=3,
        workload=workload,
        trace_packets=False,
        notification_log="ring",
    )
    measurements = result["measurements"]
    assert len(measurements) == 6
    assert all(measurement.validated for measurement in measurements)
    assert result["active"] > 100
    print_table(
        "Paper-medium sustained Poisson churn (%d segments)" % len(measurements),
        format_table(
            ("segment", "quiescent at [ms]", "events"),
            [
                (
                    measurement.description,
                    measurement.quiescence_time * 1e3,
                    measurement.events_processed,
                )
                for measurement in measurements
            ],
        ),
    )
