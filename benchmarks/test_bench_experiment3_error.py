"""Figure 7: relative error of the assigned rates, B-Neck vs. BFYZ.

A Medium/LAN network receives a mass join and a partial leave in the first five
milliseconds; every 3 ms the error between the currently assigned rates and the
max-min fair rates of the final configuration is sampled, both per session
("error at sources") and per bottleneck link ("error in network links").

Reproduced qualitative findings:

* B-Neck converges to zero error strictly faster than BFYZ;
* after its convergence B-Neck's error is exactly zero (it computed the exact
  max-min rates and became quiescent);
* BFYZ's transients over-estimate (positive error percentiles appear on the
  way), while B-Neck's post-churn transients stay at or below the target --
  B-Neck is the more network-friendly of the two.
"""

from repro.experiments.experiment3 import Experiment3Config, run_experiment3
from repro.experiments.reporting import format_experiment3_table

CONFIG = Experiment3Config(
    size="medium",
    initial_sessions=250,
    leave_count=25,
    churn_window=5e-3,
    sample_interval=3e-3,
    horizon=60e-3,
    protocols=("bneck", "bfyz"),
    seed=5,
)


def test_figure7_error_distributions(benchmark, print_table):
    result = benchmark.pedantic(run_experiment3, args=(CONFIG,), iterations=1, rounds=1)
    bneck = result.series("bneck")
    bfyz = result.series("bfyz")

    # Both eventually converge on this workload; B-Neck strictly faster.
    assert bneck.convergence_time is not None
    assert bfyz.convergence_time is None or bneck.convergence_time <= bfyz.convergence_time

    # After convergence, B-Neck's error is exactly zero at every later sample.
    post = [
        stats
        for time, stats in bneck.source_error_series
        if time >= bneck.convergence_time
    ]
    assert post, "no samples after convergence"
    for stats in post:
        assert abs(stats.mean) < 1e-6
        assert abs(stats.p90) < 1e-6

    # BFYZ's transients over-estimate at some point (positive 90th percentile
    # after the churn window), which B-Neck avoids.
    churn_end = CONFIG.churn_window
    bfyz_overshoot = max(
        stats.p90 for time, stats in bfyz.source_error_series if time > churn_end
    )
    bneck_overshoot = max(
        stats.p90 for time, stats in bneck.source_error_series if time > churn_end
    )
    assert bneck_overshoot <= bfyz_overshoot + 1e-9

    print_table(
        "Figure 7 -- relative error at sources and in network links (percent)",
        format_experiment3_table(result),
    )
