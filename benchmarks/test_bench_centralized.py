"""Ablation: the centralized oracles (Figure 1 and classic water-filling).

The paper validates every distributed run against Centralized B-Neck (itself
equivalent to the Water-Filling algorithm).  This bench measures the cost of
the two oracles on growing workloads and checks that they agree with each other
and satisfy the direct max-min verification -- i.e. that the validation
machinery used throughout the test suite is itself trustworthy and cheap
compared to the distributed simulation.
"""

from repro.core.centralized import centralized_bneck
from repro.core.protocol import BNeckProtocol
from repro.fairness.verification import is_max_min_fair
from repro.fairness.waterfilling import water_filling
from repro.network.transit_stub import medium_network
from repro.workloads.generator import WorkloadGenerator, mixed_demand


def _build_sessions(count, seed):
    """Build ``count`` random sessions over a Medium network, without simulating."""
    network = medium_network("lan", seed=seed)
    generator = WorkloadGenerator(network, seed=seed)
    protocol = BNeckProtocol(network)
    specs = generator.generate(count, demand_sampler=mixed_demand(0.5, 1e6, 80e6))
    sessions = []
    for spec in specs:
        source_host = network.attach_host(spec.source_router, 100e6, 1e-6)
        destination_host = network.attach_host(spec.destination_router, 100e6, 1e-6)
        sessions.append(
            protocol.create_session(
                source_host.node_id,
                destination_host.node_id,
                demand=spec.demand,
                session_id=spec.session_id,
            )
        )
    return sessions


def test_centralized_bneck_oracle(benchmark):
    sessions = _build_sessions(800, seed=21)
    allocation = benchmark(centralized_bneck, sessions)
    assert len(allocation) == len(sessions)
    assert is_max_min_fair(sessions, allocation)


def test_waterfilling_oracle_agrees(benchmark, print_table):
    sessions = _build_sessions(800, seed=22)
    waterfilled = benchmark(water_filling, sessions)
    reference = centralized_bneck(sessions)
    assert waterfilled.equals(reference)
    assert is_max_min_fair(sessions, waterfilled)

    lines = ["sessions   total max-min rate [Mbps]"]
    for count in (100, 200, 400, 800):
        subset = sessions[:count]
        allocation = centralized_bneck(subset)
        lines.append("%8d   %.1f" % (count, allocation.total_rate() / 1e6))
    print_table(
        "Ablation -- centralized oracle total allocated rate vs population",
        "\n".join(lines),
    )
