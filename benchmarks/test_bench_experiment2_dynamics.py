"""Figure 6: traffic details of B-Neck under a highly dynamic workload.

Five consecutive phases of churn (mass join, leave, rate change, join, mixed)
hit a Medium/LAN network; the bench reports the packets of each type per 5 ms
interval and the time each phase needs to become quiescent again.

Reproduced qualitative findings:

* B-Neck becomes quiescent again after every phase, whatever the kind of
  churn;
* the time to quiescence is of the same order of magnitude across phase kinds
  (the paper: 35-60 ms for 100,000 sessions; here, scaled down, a few ms);
* once quiescence is reached no packet at all is transmitted until the next
  phase starts.

The five-phase run opts into the ring-buffer :class:`NotificationLog` and the
per-instant batched ``API.Rate`` pipeline: a churn run does not need the full
(unbounded) notification record, and the comparison bench below pins down that
batching + bounded logging change *nothing* about the simulation -- final
notified allocations and per-phase quiescence times are bit-identical to the
synchronous full-record configuration -- while delivering fewer application
callbacks at lower wall-clock cost.
"""

import time

from repro.experiments.experiment2 import Experiment2Config, run_experiment2
from repro.experiments.reporting import format_experiment2_table, format_table

# Ring-buffer log: Experiment 2 only reads phase/interval aggregates, never
# the per-notification record, so a churn run keeps memory flat.
CONFIG = Experiment2Config(
    size="medium",
    initial_sessions=400,
    churn_fraction=0.2,
    seed=3,
    notification_log="ring",
)


def _config(notification_log, batch_notifications, notification_batch_window=None):
    # Slightly smaller than the Figure-6 run: the comparison runs the workload
    # three times, and 300 sessions show the same ~19% callback reduction
    # while keeping the default benchmark tier fast.
    return Experiment2Config(
        size="medium",
        initial_sessions=300,
        churn_fraction=0.2,
        seed=3,
        notification_log=notification_log,
        batch_notifications=batch_notifications,
        notification_batch_window=notification_batch_window,
    )


def test_figure6_dynamic_phases(benchmark, print_table):
    result = benchmark.pedantic(run_experiment2, args=(CONFIG,), iterations=1, rounds=1)
    assert result.validated

    durations = result.phase_durations()
    assert set(durations) == {"join", "leave", "change", "join2", "mixed"}
    # Every phase reaches quiescence again (finite, positive durations).
    for name, duration in durations.items():
        assert duration > 0.0
    # The paper's conclusion: the time to quiescence is nearly independent of
    # the kind of dynamics.  We allow an order of magnitude of slack between
    # the churn-only phases (leave/change/join2/mixed).
    churn_durations = [durations[name] for name in ("leave", "change", "join2", "mixed")]
    assert max(churn_durations) <= 10 * min(churn_durations)
    # Phases produce packets; the series accounts for all of them.
    assert result.total_packets() > 0

    print_table(
        "Figure 6 -- packets per type per 5 ms interval, and per-phase quiescence",
        format_experiment2_table(result),
    )


BATCH_WINDOW = 1e-3  # one churn window: coalesce each burst's transient


def test_batched_pipeline_vs_synchronous_delivery(print_table):
    """Batching + bounded logging: fewer callbacks, same allocations, less time."""
    timings = {}

    def timed(label, config):
        started = time.perf_counter()
        result = run_experiment2(config)
        timings[label] = time.perf_counter() - started
        assert result.validated
        return result

    synchronous = timed(
        "synchronous", _config(notification_log="full", batch_notifications=False)
    )
    instant = timed(
        "instant", _config(notification_log="ring", batch_notifications=True)
    )
    windowed = timed(
        "windowed",
        _config(
            notification_log="null",
            batch_notifications=True,
            notification_batch_window=BATCH_WINDOW,
        ),
    )

    # The notification pipeline is observation-only: final notified rates are
    # bit-identical whichever variant records/delivers the notifications.
    assert instant.final_allocation == synchronous.final_allocation
    assert windowed.final_allocation == synchronous.final_allocation
    assert instant.phase_packets() == synchronous.phase_packets()
    assert windowed.phase_packets() == synchronous.phase_packets()

    # Per-instant batching leaves the event stream untouched bit for bit;
    # windowed flushes may stretch each reported phase by at most one window.
    assert instant.phase_durations() == synchronous.phase_durations()
    for name, duration in synchronous.phase_durations().items():
        assert duration <= windowed.phase_durations()[name] <= duration + BATCH_WINDOW

    # Coalescing can only reduce the application-facing callback stream, and
    # the windowed pipeline must reduce it measurably under churn.
    assert 0 < instant.rate_callbacks <= synchronous.rate_callbacks
    assert windowed.rate_callbacks < synchronous.rate_callbacks

    def row(label, result):
        saved = synchronous.rate_callbacks - result.rate_callbacks
        return (
            label,
            "%.3f" % timings[label.split()[0]],
            result.rate_callbacks,
            "%d (%.1f%%)" % (saved, 100.0 * saved / synchronous.rate_callbacks),
        )

    print_table(
        "Batched notification pipeline vs. synchronous per-packet delivery "
        "(identical five-phase churn, final allocations bit-identical)",
        format_table(
            ("pipeline", "wall-clock [s]", "API.Rate callbacks", "callbacks saved"),
            [
                ("synchronous + full log", "%.3f" % timings["synchronous"],
                 synchronous.rate_callbacks, "-"),
                row("instant batching + ring log", instant),
                row("windowed (1 ms) batching + null log", windowed),
            ],
        ),
    )
