"""Figure 6: traffic details of B-Neck under a highly dynamic workload.

Five consecutive phases of churn (mass join, leave, rate change, join, mixed)
hit a Medium/LAN network; the bench reports the packets of each type per 5 ms
interval and the time each phase needs to become quiescent again.

Reproduced qualitative findings:

* B-Neck becomes quiescent again after every phase, whatever the kind of
  churn;
* the time to quiescence is of the same order of magnitude across phase kinds
  (the paper: 35-60 ms for 100,000 sessions; here, scaled down, a few ms);
* once quiescence is reached no packet at all is transmitted until the next
  phase starts.
"""

from repro.experiments.experiment2 import Experiment2Config, run_experiment2
from repro.experiments.reporting import format_experiment2_table

CONFIG = Experiment2Config(
    size="medium",
    initial_sessions=400,
    churn_fraction=0.2,
    seed=3,
)


def test_figure6_dynamic_phases(benchmark, print_table):
    result = benchmark.pedantic(run_experiment2, args=(CONFIG,), iterations=1, rounds=1)
    assert result.validated

    durations = result.phase_durations()
    assert set(durations) == {"join", "leave", "change", "join2", "mixed"}
    # Every phase reaches quiescence again (finite, positive durations).
    for name, duration in durations.items():
        assert duration > 0.0
    # The paper's conclusion: the time to quiescence is nearly independent of
    # the kind of dynamics.  We allow an order of magnitude of slack between
    # the churn-only phases (leave/change/join2/mixed).
    churn_durations = [durations[name] for name in ("leave", "change", "join2", "mixed")]
    assert max(churn_durations) <= 10 * min(churn_durations)
    # Phases produce packets; the series accounts for all of them.
    assert result.total_packets() > 0

    print_table(
        "Figure 6 -- packets per type per 5 ms interval, and per-phase quiescence",
        format_experiment2_table(result),
    )
