"""Ablation: convergence of the non-quiescent baselines (Section IV remark).

The paper reports that, beyond about 500 sessions, CG and RCP "did not converge
to the solution in the time allocated", which is why only BFYZ appears in
Figures 7 and 8.  This bench sweeps the baseline protocols over growing session
counts on a Small/LAN network, records whether they reach a 1% error band
within the horizon, and confirms the ordering the paper relies on:

* B-Neck converges (and then goes quiescent) on every population size;
* BFYZ converges but keeps transmitting control packets;
* CG and RCP need markedly longer than B-Neck (or fail to converge within the
  horizon as populations grow).
"""

from repro.experiments.experiment3 import Experiment3Config, run_experiment3

SESSION_COUNTS = (50, 150)
HORIZON = 60e-3


def _run(count, protocols, seed):
    config = Experiment3Config(
        size="small",
        initial_sessions=count,
        leave_count=max(1, count // 10),
        churn_window=5e-3,
        sample_interval=3e-3,
        horizon=HORIZON,
        protocols=protocols,
        seed=seed,
    )
    return run_experiment3(config)


def test_baseline_convergence_sweep(benchmark, print_table):
    def sweep():
        return {
            count: _run(count, ("bneck", "bfyz", "cg", "rcp"), seed=31 + count)
            for count in SESSION_COUNTS
        }

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    lines = ["sessions  protocol  converged  convergence [ms]  quiescent  packets"]
    for count, result in results.items():
        for name in ("bneck", "bfyz", "cg", "rcp"):
            series = result.series(name)
            convergence = (
                "%.1f" % (series.convergence_time * 1e3)
                if series.convergence_time is not None
                else "-"
            )
            lines.append(
                "%8d  %-8s  %-9s  %-16s  %-9s  %d"
                % (
                    count,
                    name,
                    "yes" if series.converged() else "no",
                    convergence,
                    "yes" if series.quiescent else "no",
                    series.total_packets,
                )
            )
    print_table("Ablation -- baseline convergence vs population size", "\n".join(lines))

    for count, result in results.items():
        bneck = result.series("bneck")
        assert bneck.converged()
        assert bneck.quiescent
        for name in ("bfyz", "cg", "rcp"):
            series = result.series(name)
            # None of the baselines ever becomes quiescent.
            assert not series.quiescent
            # And none of them beats B-Neck to convergence.
            if series.convergence_time is not None:
                assert series.convergence_time >= bneck.convergence_time
