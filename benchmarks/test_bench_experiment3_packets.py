"""Figure 8: control packets transmitted per interval, B-Neck vs. BFYZ.

Reproduced qualitative findings:

* while sessions are still converging, B-Neck injects a comparable amount of
  control traffic to BFYZ;
* as soon as the sessions converge, B-Neck's traffic drops to zero (it is
  quiescent), whereas BFYZ keeps injecting the same number of packets per
  interval forever because it cannot detect convergence.
"""

from repro.experiments.experiment3 import Experiment3Config, run_experiment3

CONFIG = Experiment3Config(
    size="medium",
    initial_sessions=250,
    leave_count=25,
    churn_window=5e-3,
    sample_interval=3e-3,
    horizon=60e-3,
    protocols=("bneck", "bfyz"),
    seed=9,
)


def test_figure8_packets_per_interval(benchmark, print_table):
    result = benchmark.pedantic(run_experiment3, args=(CONFIG,), iterations=1, rounds=1)
    bneck = result.series("bneck")
    bfyz = result.series("bfyz")

    # B-Neck becomes quiescent; BFYZ does not.
    assert bneck.quiescent
    assert not bfyz.quiescent

    # In the last third of the run B-Neck transmits nothing, BFYZ keeps going.
    horizon = CONFIG.horizon
    tail_start = 2.0 * horizon / 3.0
    bneck_tail = sum(total for start, total in bneck.packets_series if start >= tail_start)
    bfyz_tail = sum(total for start, total in bfyz.packets_series if start >= tail_start)
    assert bneck_tail == 0
    assert bfyz_tail > 0

    # Overall BFYZ transmits (much) more than B-Neck over the horizon.
    assert bfyz.total_packets > bneck.total_packets

    lines = ["interval start [ms]   B-Neck packets   BFYZ packets"]
    bfyz_by_start = dict(bfyz.packets_series)
    for start, total in bneck.packets_series:
        lines.append(
            "%8.1f %20d %16d" % (start * 1e3, total, bfyz_by_start.get(start, 0))
        )
    lines.append(
        "TOTAL    %20d %16d" % (bneck.total_packets, bfyz.total_packets)
    )
    print_table("Figure 8 -- packets transmitted per interval", "\n".join(lines))
