"""Ablation: B-Neck cost on canonical topologies and delay models.

Beyond the transit-stub networks of the paper's evaluation, this bench profiles
the protocol on the canonical topologies (single bottleneck, parking lot,
dumbbell) where the max-min structure is fully understood, and quantifies two
design-relevant sensitivities:

* packets per session as the amount of session interaction grows (sessions
  sharing one bottleneck vs. sessions chained along a parking lot);
* the effect of propagation delay on the number of probe cycles (slower WAN
  links mean fewer, more up-to-date probe cycles -- the reason the paper's WAN
  scenarios transmit fewer packets than LAN).
"""

from repro.core.protocol import BNeckProtocol
from repro.core.validation import validate_against_oracle
from repro.network.topology import dumbbell_topology, parking_lot_topology
from repro.network.units import MBPS
from repro.simulator.clock import microseconds, milliseconds


def _single_bottleneck_run(session_count, propagation_delay):
    network = dumbbell_topology(
        side_count=session_count, bottleneck_capacity=100 * MBPS, delay=propagation_delay
    )
    protocol = BNeckProtocol(network)
    for index in range(session_count):
        source = network.attach_host("west%d" % index, 1000 * MBPS, microseconds(1))
        sink = network.attach_host("east%d" % index, 1000 * MBPS, microseconds(1))
        protocol.open_session(source.node_id, sink.node_id, session_id="d%d" % index)
    protocol.run_until_quiescent()
    assert validate_against_oracle(protocol).valid
    return protocol.tracer.total


def _parking_lot_run(hop_count):
    network = parking_lot_topology(hop_count, capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    long_source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
    long_sink = network.attach_host("r%d" % hop_count, 1000 * MBPS, microseconds(1))
    protocol.open_session(long_source.node_id, long_sink.node_id, session_id="long")
    for hop in range(hop_count):
        source = network.attach_host("r%d" % hop, 1000 * MBPS, microseconds(1))
        sink = network.attach_host("r%d" % (hop + 1), 1000 * MBPS, microseconds(1))
        protocol.open_session(source.node_id, sink.node_id, session_id="short%d" % hop)
    protocol.run_until_quiescent()
    assert validate_against_oracle(protocol).valid
    return protocol.tracer.total


def test_single_bottleneck_scaling(benchmark, print_table):
    def sweep():
        return {count: _single_bottleneck_run(count, microseconds(1)) for count in (10, 50, 200)}

    packets = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["sessions  packets  packets/session"]
    for count, total in packets.items():
        lines.append("%8d  %7d  %.1f" % (count, total, total / float(count)))
    print_table("Ablation -- one shared bottleneck, LAN delays", "\n".join(lines))
    # All sessions share a single bottleneck: a constant number of probe
    # cycles per session suffices, so packets grow about linearly.
    per_session = [total / float(count) for count, total in packets.items()]
    assert max(per_session) <= 4 * min(per_session)


def test_parking_lot_scaling(benchmark, print_table):
    def sweep():
        return {hops: _parking_lot_run(hops) for hops in (2, 4, 8, 16)}

    packets = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["hops  packets"]
    for hops, total in packets.items():
        lines.append("%4d  %7d" % (hops, total))
    print_table("Ablation -- parking lot, growing chain length", "\n".join(lines))
    totals = list(packets.values())
    assert totals == sorted(totals)


def test_wan_delay_reduces_packets(benchmark, print_table):
    def compare():
        lan = _single_bottleneck_run(100, microseconds(1))
        wan = _single_bottleneck_run(100, milliseconds(5))
        return lan, wan

    lan_packets, wan_packets = benchmark.pedantic(compare, iterations=1, rounds=1)
    print_table(
        "Ablation -- effect of propagation delay (100 sessions, one bottleneck)",
        "LAN packets: %d\nWAN packets: %d" % (lan_packets, wan_packets),
    )
    # Slow links slow down probe cycles, so fewer probes are wasted on stale
    # configurations: the WAN run never needs more packets than the LAN run.
    assert wan_packets <= lan_packets
