"""Ablation: B-Neck cost on canonical topologies and delay models.

Beyond the transit-stub networks of the paper's evaluation, this bench profiles
the protocol on the canonical topologies (single bottleneck, parking lot,
dumbbell) where the max-min structure is fully understood, and quantifies two
design-relevant sensitivities:

* packets per session as the amount of session interaction grows (sessions
  sharing one bottleneck vs. sessions chained along a parking lot);
* the effect of propagation delay on the number of probe cycles (slower WAN
  links mean fewer, more up-to-date probe cycles -- the reason the paper's WAN
  scenarios transmit fewer packets than LAN).
"""

import time

from repro.core.protocol import BNeckProtocol
from repro.core.validation import validate_against_oracle
from repro.network.topology import dumbbell_topology, parking_lot_topology
from repro.network.transit_stub import big_network, medium_network
from repro.network.units import MBPS
from repro.simulator.clock import microseconds, milliseconds
from repro.workloads.generator import WorkloadGenerator


def _single_bottleneck_run(session_count, propagation_delay):
    network = dumbbell_topology(
        side_count=session_count, bottleneck_capacity=100 * MBPS, delay=propagation_delay
    )
    protocol = BNeckProtocol(network)
    for index in range(session_count):
        source = network.attach_host("west%d" % index, 1000 * MBPS, microseconds(1))
        sink = network.attach_host("east%d" % index, 1000 * MBPS, microseconds(1))
        protocol.open_session(source.node_id, sink.node_id, session_id="d%d" % index)
    protocol.run_until_quiescent()
    assert validate_against_oracle(protocol).valid
    return protocol.tracer.total


def _parking_lot_run(hop_count):
    network = parking_lot_topology(hop_count, capacity=100 * MBPS)
    protocol = BNeckProtocol(network)
    long_source = network.attach_host("r0", 1000 * MBPS, microseconds(1))
    long_sink = network.attach_host("r%d" % hop_count, 1000 * MBPS, microseconds(1))
    protocol.open_session(long_source.node_id, long_sink.node_id, session_id="long")
    for hop in range(hop_count):
        source = network.attach_host("r%d" % hop, 1000 * MBPS, microseconds(1))
        sink = network.attach_host("r%d" % (hop + 1), 1000 * MBPS, microseconds(1))
        protocol.open_session(source.node_id, sink.node_id, session_id="short%d" % hop)
    protocol.run_until_quiescent()
    assert validate_against_oracle(protocol).valid
    return protocol.tracer.total


def test_single_bottleneck_scaling(benchmark, print_table):
    def sweep():
        return {count: _single_bottleneck_run(count, microseconds(1)) for count in (10, 50, 200)}

    packets = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["sessions  packets  packets/session"]
    for count, total in packets.items():
        lines.append("%8d  %7d  %.1f" % (count, total, total / float(count)))
    print_table("Ablation -- one shared bottleneck, LAN delays", "\n".join(lines))
    # All sessions share a single bottleneck: a constant number of probe
    # cycles per session suffices, so packets grow about linearly.
    per_session = [total / float(count) for count, total in packets.items()]
    assert max(per_session) <= 4 * min(per_session)


def test_parking_lot_scaling(benchmark, print_table):
    def sweep():
        return {hops: _parking_lot_run(hops) for hops in (2, 4, 8, 16)}

    packets = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["hops  packets"]
    for hops, total in packets.items():
        lines.append("%4d  %7d" % (hops, total))
    print_table("Ablation -- parking lot, growing chain length", "\n".join(lines))
    totals = list(packets.values())
    assert totals == sorted(totals)


def _transit_stub_run(build, session_count, seed, trace_packets=True):
    network = build("lan", seed=seed)
    protocol = BNeckProtocol(network, trace_packets=trace_packets)
    generator = WorkloadGenerator(network, seed=seed + session_count)
    generator.populate(protocol, session_count, join_window=(0.0, 1e-3))
    start = time.perf_counter()
    quiescence = protocol.run_until_quiescent()
    wall_clock = time.perf_counter() - start
    return protocol, quiescence, wall_clock


def test_transit_stub_scaling(benchmark, print_table):
    """Larger transit-stub workloads exercising the refactored hot path.

    This is the bench whose trajectory makes hot-path wins visible: it runs
    the paper's Medium and Big topologies with session populations beyond the
    Figure-5 sweeps, and reports simulated events per wall-clock second.
    """

    cases = (
        ("medium", medium_network, 200),
        ("medium", medium_network, 400),
        ("big", big_network, 250),
    )

    def sweep():
        rows = []
        for label, build, session_count in cases:
            protocol, quiescence, wall_clock = _transit_stub_run(build, session_count, seed=13)
            assert validate_against_oracle(protocol).valid
            rows.append(
                (
                    label,
                    session_count,
                    protocol.simulator.events_processed,
                    protocol.tracer.total,
                    quiescence,
                    wall_clock,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["network   sessions    events   packets   quiescence [ms]   events/s"]
    for label, count, events, packets, quiescence, wall_clock in rows:
        lines.append(
            "%-9s %8d  %8d  %8d   %15.3f   %8.0f"
            % (label, count, events, packets, quiescence * 1e3, events / wall_clock)
        )
    print_table("Ablation -- transit-stub scaling (hot-path throughput)", "\n".join(lines))
    # More sessions on the same topology mean more protocol work.
    medium_events = [events for label, _, events, _, _, _ in rows if label == "medium"]
    assert medium_events == sorted(medium_events)
    assert all(packets > 0 for _, _, _, packets, _, _ in rows)


def test_null_tracer_zero_overhead_path(benchmark, print_table):
    """The untraced fast path must process the same events, only faster."""

    def compare():
        results = {}
        for label, trace_packets in (("traced", True), ("untraced", False)):
            protocol, _, wall_clock = _transit_stub_run(
                medium_network, 250, seed=17, trace_packets=trace_packets
            )
            results[label] = (
                wall_clock,
                protocol.simulator.events_processed,
                protocol.tracer.total,
            )
        return results

    results = benchmark.pedantic(compare, iterations=1, rounds=1)
    print_table(
        "Ablation -- packet accounting on vs off (Medium, 250 sessions)",
        "\n".join(
            "%-9s  %.3f s  events=%d  packets=%d" % (label, wall, events, packets)
            for label, (wall, events, packets) in results.items()
        ),
    )
    # Tracing must be observationally irrelevant to the simulation itself.
    assert results["traced"][1] == results["untraced"][1]
    assert results["untraced"][2] == 0
    assert results["traced"][2] > 0


def test_wan_delay_reduces_packets(benchmark, print_table):
    def compare():
        lan = _single_bottleneck_run(100, microseconds(1))
        wan = _single_bottleneck_run(100, milliseconds(5))
        return lan, wan

    lan_packets, wan_packets = benchmark.pedantic(compare, iterations=1, rounds=1)
    print_table(
        "Ablation -- effect of propagation delay (100 sessions, one bottleneck)",
        "LAN packets: %d\nWAN packets: %d" % (lan_packets, wan_packets),
    )
    # Slow links slow down probe cycles, so fewer probes are wasted on stale
    # configurations: the WAN run never needs more packets than the LAN run.
    assert wan_packets <= lan_packets
