"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
experiment index in ``DESIGN.md``).  The workloads are scaled down from the
paper's (which used up to 300,000 sessions on an 11,000-router topology) so the
whole suite completes in a few minutes of pure Python; the *shapes* of the
series -- who wins, growth trends, crossovers -- are what is being reproduced.

Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` flag shows the reproduced tables; without it they are captured).
"""

import pytest


@pytest.fixture
def print_table(capsys):
    """Print a reproduced table so it is visible even with output capturing."""

    def _print(title, text):
        with capsys.disabled():
            print()
            print("=" * 72)
            print(title)
            print("=" * 72)
            print(text)

    return _print
