"""Figure 5 (left): time until quiescence vs. number of arriving sessions.

Regenerates the quiescence-time curves for the Small and Medium transit-stub
networks in both LAN and WAN scenarios (the Big network is exercised at a
single point to bound benchmark time).  The paper's qualitative findings that
this bench reproduces:

* for small session counts the time to quiescence is nearly negligible in the
  LAN scenario;
* once sessions interact, the time grows roughly linearly with the number of
  sessions;
* WAN times are dominated by propagation delay and are orders of magnitude
  larger than LAN times.
"""

from repro.experiments.experiment1 import (
    Experiment1Config,
    run_experiment1,
    run_experiment1_case,
)
from repro.experiments.reporting import format_experiment1_table
from repro.workloads.scenarios import NetworkScenario

SWEEP_CONFIG = Experiment1Config(
    session_counts=(10, 50, 150, 400),
    sizes=("small", "medium"),
    delay_models=("lan", "wan"),
    seed=7,
)


def test_figure5_left_time_to_quiescence(benchmark, print_table):
    rows = benchmark.pedantic(run_experiment1, args=(SWEEP_CONFIG,), iterations=1, rounds=1)
    assert all(row.validated for row in rows)
    # LAN quiescence times must be far below WAN quiescence times at equal size.
    by_label = {}
    for row in rows:
        by_label.setdefault((row.scenario_label, row.session_count), row)
    for size in ("small", "medium"):
        for count in SWEEP_CONFIG.session_counts:
            lan = by_label[("%s-lan" % size, count)]
            wan = by_label[("%s-wan" % size, count)]
            assert lan.time_to_quiescence < wan.time_to_quiescence
    # Quiescence time grows with the number of sessions once they interact.
    for size in ("small", "medium"):
        first = by_label[("%s-lan" % size, SWEEP_CONFIG.session_counts[0])]
        last = by_label[("%s-lan" % size, SWEEP_CONFIG.session_counts[-1])]
        assert last.time_to_quiescence >= first.time_to_quiescence
    print_table(
        "Figure 5 (left) -- time until quiescence [ms] vs sessions",
        format_experiment1_table(rows),
    )


def test_figure5_left_big_network_single_point(benchmark, print_table):
    scenario = NetworkScenario("big", "lan", seed=7)
    config = Experiment1Config(seed=7)
    row = benchmark.pedantic(
        run_experiment1_case, args=(scenario, 200, config), iterations=1, rounds=1
    )
    assert row.validated
    print_table(
        "Figure 5 (left) -- Big network, single point",
        format_experiment1_table([row]),
    )
