"""Opt-in paper-scale tier: the full-size Medium/Big topologies of the paper.

The paper evaluates B-Neck on transit-stub networks of up to 10,900 routers
with up to 300,000 sessions; the default benchmarks scale those down so a
pure-Python run finishes in minutes.  This module runs the *actual*
``PAPER_MEDIUM_PARAMETERS`` (1,100 routers) and ``PAPER_BIG_PARAMETERS``
(10,900 routers) topologies through the shared
:class:`~repro.experiments.runner.ExperimentRunner`, checking the paper's
headline property at full topology scale: B-Neck reaches quiescence and the
final allocation matches the centralized max-min oracle exactly.

Everything here is marked ``slow_bench`` and deselected by default (see
``pytest.ini``); run it explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_paper_scale.py -m slow_bench -s

CI runs this tier on manual dispatch and nightly.  The runs opt into the
ring-buffer notification log and windowed ``API.Rate`` batching -- at this
scale the full per-notification record is pure allocator churn.
"""

import pytest

from repro.experiments.experiment2 import Experiment2Config, run_experiment2
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner, ScenarioSpec

pytestmark = pytest.mark.slow_bench

MASS_JOIN_SESSIONS = 3000
CHURN_SESSIONS = 1500


def _mass_join(size, print_table):
    spec = ScenarioSpec(
        size=size,
        delay_model="lan",
        seed=0,
        trace_packets=False,
        notification_log="ring",
    )
    with ExperimentRunner(spec) as runner:
        runner.populate(MASS_JOIN_SESSIONS, join_window=(0.0, 1e-3))
        measurement = runner.checkpoint("mass join of %d sessions" % MASS_JOIN_SESSIONS)

        # The headline property at paper scale: quiescence is reached and the
        # distributed allocation equals the centralized max-min oracle.
        assert measurement.validated
        assert measurement.quiescence_time > 0.0
        assert runner.protocol.quiescent
        assert runner.protocol.in_flight_packets == 0

    print_table(
        "Paper-scale %s: mass join to quiescence" % size,
        format_table(
            ("scenario", "sessions", "quiescence [ms]", "events", "validated"),
            [(
                measurement.label,
                MASS_JOIN_SESSIONS,
                measurement.quiescence_time * 1e3,
                measurement.events_processed,
                "yes" if measurement.validated else "NO",
            )],
        ),
    )


def test_paper_medium_mass_join_quiescence(print_table):
    _mass_join("paper-medium", print_table)


def test_paper_big_mass_join_quiescence(print_table):
    _mass_join("paper-big", print_table)


def test_paper_medium_five_phase_churn(print_table):
    """Experiment 2's five churn phases on the paper's full Medium topology."""
    config = Experiment2Config(
        size="paper-medium",
        initial_sessions=CHURN_SESSIONS,
        churn_fraction=0.2,
        seed=0,
        notification_log="ring",
        notification_batch_window=1e-3,
    )
    result = run_experiment2(config)
    assert result.validated

    durations = result.phase_durations()
    assert set(durations) == {"join", "leave", "change", "join2", "mixed"}
    for duration in durations.values():
        assert duration > 0.0

    print_table(
        "Paper-scale medium: five-phase churn quiescence times",
        format_table(
            ("phase", "quiescence [ms]", "packets", "API.Rate callbacks"),
            [
                (outcome.phase.name, outcome.duration * 1e3, outcome.packets,
                 outcome.rate_callbacks)
                for outcome in result.outcomes
            ],
        ),
    )
