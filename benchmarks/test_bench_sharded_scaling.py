"""Sharded-engine scaling: 1/2/4 shards on the transit-stub churn scenarios.

Two workload shapes are measured:

* **Pre-scheduled churn**: a mass-join burst followed by a leave burst and a
  rate-change burst at fixed times, run to quiescence in one shot.
* **Multi-phase churn** (Experiment-2 style): five consecutive phases where
  phase N+1 is scheduled only after phase N's *observed* quiescence time --
  the shape that needs the persistent worker pool, since the driver must
  broadcast each phase's actions to the resident workers between runs.

Three things are checked:

* **Correctness**: every engine must produce the *bit-identical* final
  allocation (the sharding refactor's contract, also enforced at golden
  granularity in ``tests/test_hot_path_determinism.py``).
* **Serial sharding cost**: the lockstep engine's single-core wall-clock vs.
  the sequential engine.  Smaller per-lane heaps typically make it slightly
  *faster*, and it must never be disastrously slower.
* **Multi-core speedup** (``slow_bench`` tier): the persistent-parallel mode
  at paper-medium scale, one-shot and multi-phase.  The >=1.3x assertions
  only engage on machines with at least 4 CPUs (CI's nightly runners);
  single-core boxes still run the bit-identity checks and report the
  measured ratios.

Run the opt-in tier with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_sharded_scaling.py \
        -m slow_bench -s
"""

import os
import time

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.workloads.dynamics import DynamicPhase
from repro.workloads.generator import uniform_demand

HAVE_FORK = hasattr(os, "fork")
CPUS = os.cpu_count() or 1


def _run_churn(engine, size, seed, count, leave_at, change_at, validate=True):
    """One-shot transit-stub churn: join burst, leave burst, change burst."""
    spec = ScenarioSpec(
        size=size,
        delay_model="lan",
        seed=seed,
        engine=engine,
        trace_packets=False,
        notification_log="null",
        validate=validate,
    )
    with ExperimentRunner(spec, generator_seed=seed) as runner:
        runner.populate(count, join_window=(0.0, 1e-3))
        session_ids = list(runner.active_ids)
        for session_id in session_ids[: count // 5]:
            runner.protocol.leave(session_id, at=leave_at)
        for session_id in session_ids[count // 5 : 2 * count // 5]:
            runner.protocol.change(session_id, 5e6, at=change_at)
        start = time.perf_counter()
        quiescence = runner.run_to_quiescence()
        wall_clock = time.perf_counter() - start
        validated = runner.validate() if validate else None
        return {
            "engine": engine,
            "quiescence": quiescence,
            "events": runner.protocol.simulator.events_processed,
            "wall": wall_clock,
            "allocation": runner.protocol.current_allocation().as_dict(),
            "validated": validated,
        }


def _run_multi_phase_churn(engine, size, seed, count, validate=True):
    """Experiment-2-style churn: each phase scheduled after the previous
    phase's observed quiescence (exercises the persistent worker pool)."""
    spec = ScenarioSpec(
        size=size,
        delay_model="lan",
        seed=seed,
        engine=engine,
        trace_packets=False,
        notification_log="null",
        validate=validate,
    )
    with ExperimentRunner(spec, generator_seed=seed) as runner:
        churn = max(1, count // 5)
        phases = [
            DynamicPhase("join", joins=count),
            DynamicPhase("leave", leaves=churn),
            DynamicPhase("change", changes=churn),
            DynamicPhase("join2", joins=churn),
            DynamicPhase("mixed", joins=churn, leaves=churn, changes=churn),
        ]
        start = time.perf_counter()
        outcomes = runner.run_phases(
            phases, demand_sampler=uniform_demand(1e6, 80e6), inter_phase_gap=1e-3
        )
        wall_clock = time.perf_counter() - start
        validated = runner.validate() if validate else None
        return {
            "engine": engine,
            "quiescence": outcomes[-1].quiescence_time,
            "phase_quiescence": [outcome.quiescence_time for outcome in outcomes],
            "events": runner.protocol.simulator.events_processed,
            "wall": wall_clock,
            "allocation": runner.protocol.current_allocation().as_dict(),
            "validated": validated,
            "workers_live": getattr(runner.protocol.simulator, "workers_live", False),
        }


def _speedup_table(results):
    baseline = results[0]["wall"]
    rows = []
    for result in results:
        rows.append(
            (
                result["engine"],
                result["events"],
                result["quiescence"] * 1e3,
                result["wall"],
                baseline / result["wall"] if result["wall"] else float("inf"),
            )
        )
    return format_table(
        ("engine", "events", "quiescence [ms]", "wall [s]", "speedup"), rows
    )


def test_sharded_churn_scaling(benchmark, print_table):
    """1/2/4-shard lockstep wall-clock on the Big transit-stub churn scenario."""

    engines = ("sequential", "sharded:1", "sharded:2", "sharded:4")

    def sweep():
        return [
            _run_churn(engine, size="big", seed=21, count=450,
                       leave_at=3e-3, change_at=6e-3, validate=False)
            for engine in engines
        ]

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print_table(
        "Sharded scaling -- Big transit-stub, pre-scheduled churn (450 sessions)",
        _speedup_table(results),
    )
    # The sharding contract: bit-identical final allocations on every engine.
    baseline_allocation = results[0]["allocation"]
    for result in results[1:]:
        assert result["allocation"] == baseline_allocation, result["engine"]
    # The lockstep engine pays epoch barriers but wins smaller heaps; it must
    # stay within 2x of sequential on a single core (in practice it is ~1.2x
    # *faster* at 4 shards on this scenario).
    sequential_wall = results[0]["wall"]
    for result in results[1:]:
        assert result["wall"] < 2.0 * sequential_wall + 0.5, result["engine"]


@pytest.mark.skipif(not HAVE_FORK, reason="fork-parallel mode needs POSIX")
def test_parallel_mode_matches_serial_schedule(benchmark, print_table):
    """Fork-parallel and serial sharded runs share one schedule, bit-exactly."""

    def compare():
        serial = _run_churn("sharded:2", size="medium", seed=5, count=120,
                            leave_at=3e-3, change_at=6e-3)
        parallel = _run_churn("sharded:2/parallel", size="medium", seed=5,
                              count=120, leave_at=3e-3, change_at=6e-3)
        return serial, parallel

    serial, parallel = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert parallel["validated"]
    assert parallel["allocation"] == serial["allocation"]
    assert parallel["events"] == serial["events"]
    assert parallel["quiescence"] == serial["quiescence"]
    print_table(
        "Sharded engine -- serial vs fork-parallel (Medium, 120 sessions)",
        _speedup_table([serial, parallel]),
    )


@pytest.mark.skipif(not HAVE_FORK, reason="persistent-parallel mode needs POSIX")
def test_parallel_multi_phase_churn_matches_serial(benchmark, print_table):
    """Persistent workers over five churn phases: bit-exact vs serial sharded.

    Each phase is scheduled after the previous phase's observed quiescence,
    so the parallel engine must keep its workers resident and broadcast the
    new phase's actions between runs -- the old one-shot engine fell back to
    a single core here.
    """

    def compare():
        serial = _run_multi_phase_churn("sharded:2", size="medium", seed=9, count=120)
        parallel = _run_multi_phase_churn(
            "sharded:2/parallel", size="medium", seed=9, count=120
        )
        return serial, parallel

    serial, parallel = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert parallel["workers_live"]  # ran on the pool, no serial fallback
    assert parallel["validated"]
    assert parallel["allocation"] == serial["allocation"]
    assert parallel["events"] == serial["events"]
    assert parallel["phase_quiescence"] == serial["phase_quiescence"]
    print_table(
        "Sharded engine -- multi-phase churn, serial vs persistent-parallel "
        "(Medium, 120 sessions, 5 phases)",
        _speedup_table([serial, parallel]),
    )


@pytest.mark.slow_bench
def test_paper_scale_multi_phase_churn_speedup(print_table):
    """Paper-medium five-phase churn: persistent-parallel >=1.3x on 4+ CPUs.

    The nightly tier's multi-core claim for the *multi-phase* shape: phase
    N+1 depends on phase N's quiescence, so the whole sequence must run on
    the persistent worker pool without ever dropping to one core.  As with
    the one-shot bench, the speedup assertion only engages on machines with
    at least 4 CPUs.

    Identity contracts at this scale: serial-sharded and persistent-parallel
    share one schedule and must agree *bit-exactly* (allocation, per-phase
    quiescence, events).  Sequential vs. sharded is compared at ULP tolerance
    only: across five paper-scale phases the sharded engines' different
    event interleaving accumulates float rate arithmetic in a different
    order, drifting a handful of sessions by ~1 ULP (the tier-1 golden
    `churn-medium-lan-s5-n60` pins the bit-exact cross-engine case at the
    scale where the orders coincide).
    """
    kwargs = dict(size="paper-medium", seed=3, count=3000, validate=False)
    sequential = _run_multi_phase_churn("sequential", **kwargs)
    serial_sharded = _run_multi_phase_churn("sharded:4", **kwargs)
    results = [sequential, serial_sharded]
    assert serial_sharded["allocation"] == pytest.approx(
        sequential["allocation"], rel=1e-9
    )
    assert serial_sharded["phase_quiescence"] == pytest.approx(
        sequential["phase_quiescence"], rel=1e-9
    )

    if HAVE_FORK:
        parallel = _run_multi_phase_churn("sharded:4/parallel", **kwargs)
        results.append(parallel)
        # Same engine, two execution modes: these must be bit-identical.
        assert parallel["allocation"] == serial_sharded["allocation"]
        assert parallel["phase_quiescence"] == serial_sharded["phase_quiescence"]
        assert parallel["events"] == serial_sharded["events"]

    print_table(
        "Paper-medium five-phase churn (%d sessions) -- engine scaling"
        % kwargs["count"],
        _speedup_table(results),
    )

    if HAVE_FORK and CPUS >= 4:
        speedup = sequential["wall"] / results[-1]["wall"]
        assert speedup >= 1.3, (
            "persistent-parallel 4-shard multi-phase speedup %.2fx below the "
            "1.3x bar (sequential %.2fs, parallel %.2fs)"
            % (speedup, sequential["wall"], results[-1]["wall"])
        )


@pytest.mark.slow_bench
def test_paper_scale_sharded_speedup(print_table):
    """Paper-medium churn: sharded bit-identity, and >=1.3x on 4+ CPUs.

    The nightly tier's multi-core claim: at paper scale the fork-parallel
    4-shard engine beats the sequential engine by at least 1.3x wall-clock.
    On boxes with fewer than 4 CPUs the assertion is skipped (the workers
    would time-slice one core) but bit-identity is still enforced.

    Scale note: at 3,000 sessions the run is dense enough (~1M events over
    ~4,500 epochs) that per-epoch worker compute dominates the epoch-barrier
    IPC; much smaller populations under-fill the epochs and the parallel mode
    pays pipes for nothing.
    """
    kwargs = dict(size="paper-medium", seed=2, count=3000,
                  leave_at=4e-3, change_at=8e-3, validate=False)
    sequential = _run_churn("sequential", **kwargs)
    serial_sharded = _run_churn("sharded:4", **kwargs)
    results = [sequential, serial_sharded]
    assert serial_sharded["allocation"] == sequential["allocation"]

    if HAVE_FORK:
        parallel = _run_churn("sharded:4/parallel", **kwargs)
        results.append(parallel)
        assert parallel["allocation"] == sequential["allocation"]
        assert parallel["events"] == serial_sharded["events"]

    print_table(
        "Paper-medium churn (%d sessions) -- engine scaling" % kwargs["count"],
        _speedup_table(results),
    )

    if HAVE_FORK and CPUS >= 4:
        speedup = sequential["wall"] / results[-1]["wall"]
        assert speedup >= 1.3, (
            "parallel 4-shard speedup %.2fx below the 1.3x bar "
            "(sequential %.2fs, parallel %.2fs)"
            % (speedup, sequential["wall"], results[-1]["wall"])
        )
