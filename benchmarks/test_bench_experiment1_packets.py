"""Figure 5 (right): total control packets vs. number of arriving sessions.

The paper's qualitative findings reproduced here:

* the number of packets grows roughly linearly with the number of sessions;
* each LAN scenario produces more packets than the corresponding WAN scenario
  (WAN probe cycles are slower, so fewer of them are wasted on transient
  configurations), with the gap below one order of magnitude;
* B-Neck stays at a moderate number of packets per session.
"""

from repro.experiments.experiment1 import Experiment1Config, run_experiment1
from repro.experiments.reporting import format_experiment1_table

SWEEP_CONFIG = Experiment1Config(
    session_counts=(10, 50, 150, 400),
    sizes=("small", "medium"),
    delay_models=("lan", "wan"),
    seed=11,
)


def test_figure5_right_packet_counts(benchmark, print_table):
    rows = benchmark.pedantic(run_experiment1, args=(SWEEP_CONFIG,), iterations=1, rounds=1)
    assert all(row.validated for row in rows)

    by_label = {}
    for row in rows:
        by_label[(row.scenario_label, row.session_count)] = row

    counts = SWEEP_CONFIG.session_counts
    for size in ("small", "medium"):
        for delay_model in ("lan", "wan"):
            label = "%s-%s" % (size, delay_model)
            # Roughly linear growth: more sessions, more packets.
            packet_series = [by_label[(label, count)].total_packets for count in counts]
            assert packet_series == sorted(packet_series)
        # LAN produces more packets than WAN for the same size and count, but
        # within one order of magnitude (paper, Section IV, Experiment 1).
        for count in counts[1:]:
            lan_packets = by_label[("%s-lan" % size, count)].total_packets
            wan_packets = by_label[("%s-wan" % size, count)].total_packets
            assert lan_packets >= wan_packets
            assert lan_packets <= 10 * wan_packets

    print_table(
        "Figure 5 (right) -- total control packets vs sessions",
        format_experiment1_table(rows),
    )
