"""Pluggable rate arithmetic.

Max-min fair rates are produced by chains of subtractions and divisions
(``Be = (Ce - sum(rates)) / |Re|``), and both the centralized and the
distributed algorithms compare rates for *equality* ("all the sessions ... have
been assigned the same rate").  With IEEE floats those equalities only hold up
to rounding error, so every comparison in the library goes through a
:class:`RateAlgebra`:

* :class:`FloatAlgebra` (the default) compares with a relative tolerance;
* :class:`ExactAlgebra` lifts every division into :class:`fractions.Fraction`
  so equalities are exact -- used by the correctness tests.
"""

import fractions
import math

# Bound at module level: these run millions of times inside the simulation
# hot path, where repeated attribute lookups on ``math`` are measurable.
_isclose = math.isclose
_isinf = math.isinf


class RateAlgebra(object):
    """Comparison and division rules shared by all allocation algorithms."""

    def divide(self, numerator, denominator):
        """Return ``numerator / denominator`` in this algebra's number type."""
        raise NotImplementedError

    def equal(self, first, second):
        """Rate equality."""
        raise NotImplementedError

    def less(self, first, second):
        """Strict "first < second" (must be consistent with :meth:`equal`)."""
        raise NotImplementedError

    # Derived comparisons -------------------------------------------------

    def less_equal(self, first, second):
        return self.less(first, second) or self.equal(first, second)

    def greater(self, first, second):
        return self.less(second, first)

    def greater_equal(self, first, second):
        return self.less_equal(second, first)

    def is_zero(self, value):
        return self.equal(value, 0.0)

    def minimum(self, values):
        """Minimum of a non-empty iterable under this algebra's ordering."""
        iterator = iter(values)
        try:
            best = next(iterator)
        except StopIteration:
            raise ValueError("minimum() of an empty sequence")
        for value in iterator:
            if self.less(value, best):
                best = value
        return best


class FloatAlgebra(RateAlgebra):
    """Floating-point rates compared with a relative tolerance.

    The default tolerance of ``1e-9`` (relative) is far below any meaningful
    rate difference (1 bit/s on a 100 Mbps link is 1e-8 relative) but far above
    accumulated IEEE rounding error for the division depths reached in
    realistic topologies.
    """

    def __init__(self, relative_tolerance=1e-9, absolute_tolerance=1e-6):
        self.relative_tolerance = relative_tolerance
        self.absolute_tolerance = absolute_tolerance

    def divide(self, numerator, denominator):
        return numerator / denominator

    def equal(self, first, second):
        if first == second:
            return True
        if _isinf(first) or _isinf(second):
            return False
        return _isclose(
            first,
            second,
            rel_tol=self.relative_tolerance,
            abs_tol=self.absolute_tolerance,
        )

    def less(self, first, second):
        return first < second and not self.equal(first, second)

    def __repr__(self):
        return "FloatAlgebra(rel=%g, abs=%g)" % (
            self.relative_tolerance,
            self.absolute_tolerance,
        )


class ExactAlgebra(RateAlgebra):
    """Exact rational arithmetic (``fractions.Fraction``).

    Inputs may be ints, floats or Fractions; every division produces a
    Fraction, so equality comparisons are exact.  Infinite demands are handled
    specially since Fractions cannot represent infinity.
    """

    def _lift(self, value):
        if isinstance(value, fractions.Fraction):
            return value
        if isinstance(value, float) and math.isinf(value):
            return value
        return fractions.Fraction(value)

    def divide(self, numerator, denominator):
        return self._lift(numerator) / self._lift(denominator)

    def equal(self, first, second):
        first_is_inf = isinstance(first, float) and math.isinf(first)
        second_is_inf = isinstance(second, float) and math.isinf(second)
        if first_is_inf or second_is_inf:
            return first == second
        return self._lift(first) == self._lift(second)

    def less(self, first, second):
        first_is_inf = isinstance(first, float) and math.isinf(first)
        second_is_inf = isinstance(second, float) and math.isinf(second)
        if first_is_inf:
            return False
        if second_is_inf:
            return True
        return self._lift(first) < self._lift(second)

    def __repr__(self):
        return "ExactAlgebra()"


_DEFAULT = FloatAlgebra()


def default_algebra():
    """The library-wide default: :class:`FloatAlgebra` with standard tolerances."""
    return _DEFAULT
