"""Max-min fairness theory substrate.

This package contains everything about max-min fairness that is independent of
*how* the rates are computed:

* :mod:`~repro.fairness.algebra` -- pluggable rate arithmetic/comparison
  (tolerance-based floats or exact fractions), used by every algorithm in the
  library so that "equal rates" is a well-defined notion.
* :mod:`~repro.fairness.allocation` -- the :class:`RateAllocation` result type
  with feasibility and comparison helpers.
* :mod:`~repro.fairness.waterfilling` -- the classic progressive-filling
  (water-filling) algorithm, used as an independent oracle.
* :mod:`~repro.fairness.bottleneck` -- bottleneck analysis (Definition 1 of the
  paper): which links are bottlenecks of which sessions, ``R*_e``, ``F*_e`` and
  ``B*_e``.
* :mod:`~repro.fairness.verification` -- direct verification that an allocation
  is max-min fair via the bottleneck characterization theorem.
"""

from repro.fairness.algebra import ExactAlgebra, FloatAlgebra, RateAlgebra, default_algebra
from repro.fairness.allocation import RateAllocation
from repro.fairness.bottleneck import (
    BottleneckAnalysis,
    analyze_bottlenecks,
    link_load,
    session_bottlenecks,
)
from repro.fairness.verification import (
    MaxMinViolation,
    is_max_min_fair,
    verify_allocation,
)
from repro.fairness.waterfilling import water_filling

__all__ = [
    "BottleneckAnalysis",
    "ExactAlgebra",
    "FloatAlgebra",
    "MaxMinViolation",
    "RateAlgebra",
    "RateAllocation",
    "analyze_bottlenecks",
    "default_algebra",
    "is_max_min_fair",
    "link_load",
    "session_bottlenecks",
    "verify_allocation",
    "water_filling",
]
