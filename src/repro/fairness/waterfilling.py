"""Classic water-filling (progressive filling) max-min fair allocation.

This is the textbook algorithm of Bertsekas & Gallager that the paper cites as
"the Water-Filling algorithm [6], [18]" and uses to validate every B-Neck run.
It is intentionally implemented differently from the Centralized B-Neck of
Figure 1 (which discovers bottlenecks in increasing rate order) so that the two
serve as independent oracles for each other in the test suite.

The algorithm: grow the rate of every unfrozen session at the same pace; a
session freezes when one of its links saturates or when it reaches its own
maximum requested rate.  Repeat until every session is frozen.
"""

import math

from repro.fairness.algebra import default_algebra
from repro.fairness.allocation import RateAllocation


def water_filling(sessions, algebra=None):
    """Compute the max-min fair allocation of ``sessions``.

    Args:
        sessions: iterable of :class:`~repro.network.session.Session`.  Each
            session's path links carry the capacities; each session's
            ``effective_demand()`` bounds its rate.
        algebra: optional :class:`~repro.fairness.algebra.RateAlgebra`.

    Returns:
        A :class:`~repro.fairness.allocation.RateAllocation` with one entry per
        session.
    """
    algebra = algebra or default_algebra()
    sessions = list(sessions)
    allocation = RateAllocation(algebra=algebra)
    if not sessions:
        return allocation

    # Rates start at integer zero so that, under the exact algebra, every
    # arithmetic step stays rational (int + Fraction is a Fraction, whereas
    # float + Fraction falls back to float).
    rates = {session.session_id: 0 for session in sessions}
    frozen = set()

    # Index sessions by link once; capacities are lifted into the algebra's
    # number type so divisions chain exactly under ExactAlgebra.
    link_members = {}
    link_objects = {}
    link_capacity = {}
    for session in sessions:
        for link in session.links:
            link_objects[link.endpoints] = link
            link_capacity[link.endpoints] = algebra.divide(link.capacity, 1)
            link_members.setdefault(link.endpoints, []).append(session)

    # Per-link bookkeeping maintained incrementally as rates grow and
    # sessions freeze, so a round costs O(links + unfrozen) instead of
    # O(links x members):
    #
    # * ``active_counts[e]``: unfrozen members of ``e``;
    # * ``loads[e]``: total allocated rate crossing ``e``.  It tracks every
    #   rate change exactly (the uniform increment contributes
    #   ``increment * active_count``; demand clamps contribute their delta),
    #   so it only deviates from a from-scratch sum by accumulated rounding
    #   noise, orders of magnitude below the algebra's tolerance.
    active_counts = {ep: len(members) for ep, members in link_members.items()}
    loads = {ep: 0 for ep in link_members}
    path_keys = {s.session_id: [link.endpoints for link in s.links] for s in sessions}
    demands = {s.session_id: s.effective_demand() for s in sessions}

    def freeze(session_id):
        frozen.add(session_id)
        for endpoints in path_keys[session_id]:
            active_counts[endpoints] -= 1

    max_iterations = len(sessions) + len(link_objects) + 1
    for _ in range(max_iterations):
        unfrozen = [session for session in sessions if session.session_id not in frozen]
        if not unfrozen:
            break

        # The common rate increment is limited by the tightest link headroom
        # share and by the closest per-session demand.
        increment = math.inf
        for endpoints, active_count in active_counts.items():
            if not active_count:
                continue
            headroom = link_capacity[endpoints] - loads[endpoints]
            if headroom < 0:
                headroom = 0
            share = algebra.divide(headroom, active_count)
            if algebra.less(share, increment):
                increment = share
        for session in unfrozen:
            remaining_demand = demands[session.session_id] - rates[session.session_id]
            if algebra.less(remaining_demand, increment):
                increment = remaining_demand

        if math.isinf(increment):
            # No link constrains any unfrozen session and all demands are
            # infinite; this cannot happen for sessions routed over real links.
            raise RuntimeError("water-filling diverged: unconstrained sessions remain")

        if increment > 0:
            for session in unfrozen:
                rates[session.session_id] += increment
            for endpoints, active_count in active_counts.items():
                if active_count:
                    loads[endpoints] += increment * active_count

        # Freeze sessions that hit their demand.
        for session in unfrozen:
            session_id = session.session_id
            if algebra.greater_equal(rates[session_id], demands[session_id]):
                clamped = min(rates[session_id], demands[session_id])
                if clamped != rates[session_id]:
                    delta = clamped - rates[session_id]
                    for endpoints in path_keys[session_id]:
                        loads[endpoints] += delta
                    rates[session_id] = clamped
                freeze(session_id)

        # Freeze sessions crossing a saturated link.
        for endpoints, members in link_members.items():
            if not active_counts[endpoints]:
                continue
            if algebra.greater_equal(loads[endpoints], link_capacity[endpoints]):
                for member in members:
                    if member.session_id not in frozen:
                        freeze(member.session_id)
    else:
        remaining = [s.session_id for s in sessions if s.session_id not in frozen]
        if remaining:
            raise RuntimeError(
                "water-filling did not converge; %d sessions left: %r"
                % (len(remaining), remaining[:5])
            )

    for session in sessions:
        allocation.set_rate(session.session_id, rates[session.session_id])
    return allocation
