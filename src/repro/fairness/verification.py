"""Direct verification that an allocation is max-min fair.

The bottleneck characterization theorem (Bertsekas & Gallager) states that a
feasible allocation is max-min fair iff every session either

* is allocated its full requested demand, or
* has at least one bottleneck link (Definition 1 of the paper): a saturated
  link on which no other session gets a larger rate.

This check is independent of *any* allocation algorithm in the library, which
makes it the strongest oracle available to the property-based tests: both
water-filling and (centralized/distributed) B-Neck results must pass it.
"""

from repro.fairness.algebra import default_algebra


class MaxMinViolation(object):
    """A reason why an allocation fails to be max-min fair."""

    __slots__ = ("kind", "subject", "detail")

    def __init__(self, kind, subject, detail):
        self.kind = kind
        self.subject = subject
        self.detail = detail

    def __repr__(self):
        return "MaxMinViolation(%s, %r, %s)" % (self.kind, self.subject, self.detail)


def verify_allocation(sessions, allocation, algebra=None):
    """Return the list of :class:`MaxMinViolation` for an allocation.

    An empty list means the allocation is max-min fair (and feasible).
    Violation kinds:

    * ``overloaded-link`` -- the allocation exceeds some link capacity;
    * ``demand-exceeded`` -- a session got more than it asked for;
    * ``missing-rate`` -- a session has no assigned rate;
    * ``no-bottleneck`` -- a session is below its demand yet has no bottleneck
      link, so its rate could be increased (not max-min fair).
    """
    algebra = algebra or default_algebra()
    sessions = list(sessions)
    violations = []

    for session in sessions:
        if session.session_id not in allocation:
            violations.append(
                MaxMinViolation("missing-rate", session.session_id, "no rate assigned")
            )
    if violations:
        return violations

    # Feasibility on links.  The per-link member lists and saturation flags
    # computed here are reused by the per-session bottleneck checks below, so
    # the common case (every session demand-limited or quickly matched to a
    # bottleneck) avoids any per-session rescan of the full population.
    links = {}
    for session in sessions:
        for link in session.links:
            links.setdefault(link.endpoints, (link, []))[1].append(session)
    saturated = {}
    for endpoints, (link, members) in links.items():
        load = sum(float(allocation.rate(s.session_id)) for s in members)
        saturated[endpoints] = algebra.equal(load, link.capacity)
        if algebra.greater(load, link.capacity):
            violations.append(
                MaxMinViolation(
                    "overloaded-link",
                    link.endpoints,
                    "load %.6g exceeds capacity %.6g" % (load, link.capacity),
                )
            )

    # Per-session conditions.
    for session in sessions:
        rate = float(allocation.rate(session.session_id))
        demand = float(session.effective_demand())
        if algebra.greater(rate, demand):
            violations.append(
                MaxMinViolation(
                    "demand-exceeded",
                    session.session_id,
                    "rate %.6g exceeds demand %.6g" % (rate, demand),
                )
            )
            continue
        if algebra.equal(rate, demand):
            continue
        # Definition 1, specialized to an existence test (mirrors
        # fairness.bottleneck.session_bottlenecks -- keep the two in sync).
        has_bottleneck = False
        for link in session.links:
            endpoints = link.endpoints
            if not saturated[endpoints]:
                continue
            if all(
                algebra.less_equal(float(allocation.rate(other.session_id)), rate)
                for other in links[endpoints][1]
            ):
                has_bottleneck = True
                break
        if not has_bottleneck:
            violations.append(
                MaxMinViolation(
                    "no-bottleneck",
                    session.session_id,
                    "rate %.6g is below demand %.6g and no path link is a bottleneck"
                    % (rate, demand),
                )
            )
    return violations


def is_max_min_fair(sessions, allocation, algebra=None):
    """True when :func:`verify_allocation` reports no violation."""
    return not verify_allocation(sessions, allocation, algebra=algebra)
