"""The result type of every allocation algorithm in the library."""

from repro.fairness.algebra import default_algebra


class RateAllocation(object):
    """A mapping from session id to assigned rate, plus comparison helpers.

    Every algorithm in the library -- water-filling, centralized B-Neck,
    distributed B-Neck, and the non-quiescent baselines -- returns (or exposes)
    a :class:`RateAllocation`, so results can be compared uniformly.
    """

    def __init__(self, rates=None, algebra=None):
        self._rates = dict(rates or {})
        self.algebra = algebra or default_algebra()

    # -------------------------------------------------------------- mapping

    def set_rate(self, session_id, rate):
        self._rates[session_id] = rate

    def rate(self, session_id):
        return self._rates[session_id]

    def get(self, session_id, default=None):
        return self._rates.get(session_id, default)

    def __contains__(self, session_id):
        return session_id in self._rates

    def __len__(self):
        return len(self._rates)

    def __iter__(self):
        return iter(self._rates)

    def items(self):
        return self._rates.items()

    def session_ids(self):
        return list(self._rates)

    def as_dict(self):
        """A plain ``{session_id: float(rate)}`` dictionary."""
        return {session_id: float(rate) for session_id, rate in self._rates.items()}

    def total_rate(self):
        """Sum of all assigned rates."""
        return sum(float(rate) for rate in self._rates.values())

    # ------------------------------------------------------------ comparison

    def equals(self, other, algebra=None):
        """True when both allocations assign equal rates to the same sessions."""
        algebra = algebra or self.algebra
        if set(self._rates) != set(other.session_ids()):
            return False
        return all(
            algebra.equal(float(self._rates[session_id]), float(other.rate(session_id)))
            for session_id in self._rates
        )

    def max_relative_difference(self, other):
        """Largest ``|a - b| / max(|b|, 1)`` over sessions present in both."""
        worst = 0.0
        for session_id, rate in self._rates.items():
            if session_id not in other:
                continue
            reference = float(other.rate(session_id))
            difference = abs(float(rate) - reference) / max(abs(reference), 1.0)
            worst = max(worst, difference)
        return worst

    # ------------------------------------------------------------ feasibility

    def link_load(self, sessions, link):
        """Total rate assigned to sessions (from ``sessions``) crossing ``link``."""
        return sum(
            float(self._rates.get(session.session_id, 0.0))
            for session in sessions
            if session.crosses(link)
        )

    def is_feasible(self, sessions, algebra=None):
        """True when no link is overloaded and no session exceeds its demand."""
        algebra = algebra or self.algebra
        sessions = list(sessions)
        for session in sessions:
            rate = float(self._rates.get(session.session_id, 0.0))
            if algebra.greater(rate, float(session.effective_demand())):
                return False
        links = {}
        for session in sessions:
            for link in session.links:
                links.setdefault(link.endpoints, (link, []))[1].append(session)
        for link, members in links.values():
            load = sum(
                float(self._rates.get(session.session_id, 0.0)) for session in members
            )
            if algebra.greater(load, link.capacity):
                return False
        return True

    def __repr__(self):
        return "RateAllocation(sessions=%d, total=%.4g)" % (
            len(self._rates),
            self.total_rate(),
        )
