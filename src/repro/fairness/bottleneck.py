"""Bottleneck analysis (Definition 1 of the paper).

A link ``e`` in the path of session ``s`` is a *bottleneck of s* iff

* the link is saturated: ``sum of the rates of the sessions crossing e == Ce``,
  and
* no session crossing ``e`` has a larger rate than ``s``.

From a max-min fair allocation this module derives, for every link, the paper's
``R*_e`` (sessions restricted at ``e``), ``F*_e`` (sessions crossing ``e`` but
restricted elsewhere) and the bottleneck rate ``B*_e``; and, for every session,
the set of its bottleneck links.  These are used by the verification module,
by the Experiment 3 metrics ("error in network links" is measured over
bottleneck links), and by several tests.
"""

from repro.fairness.algebra import default_algebra


def link_load(sessions, allocation, link):
    """Total allocated rate crossing ``link``."""
    return sum(
        float(allocation.get(session.session_id, 0.0))
        for session in sessions
        if session.crosses(link)
    )


def members_by_link(sessions):
    """Index ``{link_endpoints: [session, ...]}`` over the sessions' paths.

    Callers that run :func:`session_bottlenecks` for many sessions of the
    same population build this once and pass it in, instead of letting every
    call re-scan all session paths.
    """
    index = {}
    for session in sessions:
        for link in session.links:
            index.setdefault(link.endpoints, []).append(session)
    return index


def session_bottlenecks(session, sessions, allocation, algebra=None, link_members=None):
    """Return the links of ``session`` that are bottlenecks of it.

    Args:
        link_members: optional precomputed :func:`members_by_link` index for
            ``sessions``; it is rebuilt per call when omitted.
    """
    algebra = algebra or default_algebra()
    sessions = list(sessions)
    if link_members is None:
        link_members = members_by_link(sessions)
    own_rate = float(allocation.get(session.session_id, 0.0))
    result = []
    for link in session.links:
        crossing = link_members.get(link.endpoints, ())
        load = sum(float(allocation.get(other.session_id, 0.0)) for other in crossing)
        if not algebra.equal(load, link.capacity):
            continue
        if all(
            algebra.less_equal(float(allocation.get(other.session_id, 0.0)), own_rate)
            for other in crossing
        ):
            result.append(link)
    return result


class BottleneckAnalysis(object):
    """Per-link restricted/unrestricted session sets for an allocation.

    Attributes:
        restricted: ``{link_endpoints: set(session_id)}`` -- the paper's ``R*_e``.
        unrestricted: ``{link_endpoints: set(session_id)}`` -- the paper's ``F*_e``.
        bottleneck_rate: ``{link_endpoints: rate}`` -- ``B*_e`` for links with
            non-empty ``R*_e``.
        bottleneck_links_of: ``{session_id: [link]}``.
    """

    def __init__(self, restricted, unrestricted, bottleneck_rate, bottleneck_links_of, links):
        self.restricted = restricted
        self.unrestricted = unrestricted
        self.bottleneck_rate = bottleneck_rate
        self.bottleneck_links_of = bottleneck_links_of
        self._links = links

    def system_bottlenecks(self):
        """Links that are bottlenecks for *every* session crossing them."""
        result = []
        for endpoints, link in self._links.items():
            restricted = self.restricted.get(endpoints, set())
            unrestricted = self.unrestricted.get(endpoints, set())
            if restricted and not unrestricted:
                result.append(link)
        return result

    def saturated_links(self):
        """Links with a non-empty restricted set (i.e. fully used links)."""
        return [
            self._links[endpoints]
            for endpoints, members in self.restricted.items()
            if members
        ]

    def __repr__(self):
        return "BottleneckAnalysis(links=%d, bottleneck_links=%d)" % (
            len(self._links),
            len(self.saturated_links()),
        )


def analyze_bottlenecks(sessions, allocation, algebra=None):
    """Build a :class:`BottleneckAnalysis` for an allocation.

    The allocation is normally max-min fair, in which case every session has at
    least one bottleneck (or is limited by its own demand); the analysis is
    still well defined for arbitrary feasible allocations, which is how the
    Experiment 3 metrics use it on the transient rates of BFYZ.
    """
    algebra = algebra or default_algebra()
    sessions = list(sessions)

    links = {}
    for session in sessions:
        for link in session.links:
            links[link.endpoints] = link
    link_members = members_by_link(sessions)

    restricted = {}
    unrestricted = {}
    bottleneck_rate = {}
    bottleneck_links_of = {session.session_id: [] for session in sessions}

    for endpoints, link in links.items():
        members = link_members[endpoints]
        load = sum(float(allocation.get(s.session_id, 0.0)) for s in members)
        saturated = algebra.equal(load, link.capacity)
        if not saturated:
            restricted[endpoints] = set()
            unrestricted[endpoints] = {s.session_id for s in members}
            continue
        largest = max(float(allocation.get(s.session_id, 0.0)) for s in members)
        restricted_here = {
            s.session_id
            for s in members
            if algebra.equal(float(allocation.get(s.session_id, 0.0)), largest)
        }
        restricted[endpoints] = restricted_here
        unrestricted[endpoints] = {
            s.session_id for s in members if s.session_id not in restricted_here
        }
        bottleneck_rate[endpoints] = largest
        for session in members:
            if session.session_id in restricted_here:
                bottleneck_links_of[session.session_id].append(link)

    return BottleneckAnalysis(
        restricted=restricted,
        unrestricted=unrestricted,
        bottleneck_rate=bottleneck_rate,
        bottleneck_links_of=bottleneck_links_of,
        links=links,
    )
