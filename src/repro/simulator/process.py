"""Base class for simulated protocol tasks.

A :class:`Process` is an actor attached to a :class:`~repro.simulator.simulation.Simulator`.
Concrete protocol tasks (the B-Neck RouterLink / SourceNode / DestinationNode
tasks, and the baseline protocols' per-link controllers) subclass it and use
:meth:`send` to deliver messages to peer processes after a link delay, and
:meth:`call_later` for timers.

Messages are delivered by invoking ``receive(message, sender)`` on the target
process at the delivery time; the handler executes atomically, mirroring the
paper's ``when received ... do`` blocks.
"""


class Process(object):
    """An actor with atomic message handlers, bound to a simulator.

    Every process carries a *shard placement*: the index of the execution
    shard that owns it under a sharded engine (see
    :mod:`repro.simulator.sharding`).  The single-queue engine ignores it;
    the default of shard 0 means an unplaced actor still runs correctly on a
    sharded engine, it just never benefits from parallelism.
    """

    shard_id = 0

    def __init__(self, simulator, name):
        self.simulator = simulator
        self.name = name

    def place_on_shard(self, shard_id):
        """Pin this actor to an execution shard (the shard-placement hook)."""
        self.shard_id = shard_id

    # ------------------------------------------------------------- messaging

    def send(self, target, message, delay, tag=None):
        """Deliver ``message`` to ``target`` after ``delay`` seconds.

        The delivery is modelled as a single event: at ``now + delay`` the
        target's :meth:`receive` handler runs atomically.
        """
        if tag is None:
            tag = type(message).__name__
        return self.simulator.schedule(
            delay, lambda: target.receive(message, self), tag=tag
        )

    def call_later(self, delay, callback, tag=None):
        """Schedule a local timer callback on this process."""
        if tag is None:
            tag = "%s.timer" % self.name
        return self.simulator.schedule(delay, callback, tag=tag)

    # --------------------------------------------------------------- handlers

    def receive(self, message, sender):
        """Handle a delivered message.  Subclasses must override."""
        raise NotImplementedError(
            "%s does not handle messages (received %r from %r)"
            % (type(self).__name__, message, sender)
        )

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)
