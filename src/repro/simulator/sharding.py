"""A sharded, multi-lane discrete-event engine with epoch-batched messaging.

:class:`ShardedSimulator` partitions the protocol's actors across ``K``
*lanes* -- one per shard -- each with its own
:class:`~repro.simulator.event_queue.EventQueue`, clock cursor and forked
:class:`~repro.simulator.random_source.RandomSource`.  The lanes advance in
lockstep *epochs*:

1. every cross-shard message produced during the previous epoch is delivered
   into its target lane's queue (the *mailbox barrier*);
2. the epoch end is computed as ``t_min + lookahead``, where ``t_min`` is the
   earliest pending event across all lanes and ``lookahead`` is the smallest
   control delay of any cut link (see
   :func:`repro.network.partition.partition_network`);
3. every lane independently drains its events with ``time < epoch_end``,
   buffering cross-shard sends in per-target outboxes.

Because a cross-shard message sent at time ``t`` is delivered no earlier than
``t + lookahead >= epoch_end`` (float addition is monotone, so the bound holds
bit-exactly), no lane can receive a message in its own past: the conservative
null-message-free synchronization of classic parallel discrete-event
simulation.  Within a lane the full ``(time, sequence)`` determinism contract
of :class:`~repro.simulator.event_queue.EventQueue` holds, and the mailbox
barrier inserts deliveries in a fixed order (by source lane, then send order),
so an entire sharded run is deterministic for a given seed and shard count.

Two execution modes share the exact same epoch schedule, drain loop and
mailbox ordering, and therefore produce bit-identical runs:

* **serial** (default): one process executes the lanes round-robin inside
  each epoch.  This mode supports everything the single-queue
  :class:`~repro.simulator.simulation.Simulator` supports (horizons, stop
  conditions, limits, tracers, multi-phase workloads) and is what the
  cross-engine determinism tests pin down.
* **parallel** (``parallel=True``, POSIX only): the engine forks one worker
  process per lane; each worker executes only its own lane and ships its
  outboxes back through a pipe at every epoch barrier.  The run is one-shot:
  everything must be scheduled before ``run_until_quiescent`` is called, and
  afterwards the driver's protocol state is refreshed through the
  export/import hooks (see below) so allocations, packet counts and
  validation keep working.  This is the multi-core path for paper-scale
  topologies.

The engine is protocol-agnostic: cross-shard payloads are opaque picklable
*descriptors* handed to ``remote_handler`` at delivery time, and the parallel
mode's state refresh goes through three optional hooks (``before_fork``,
``export_state``, ``import_state``) that
:meth:`repro.core.protocol.BNeckProtocol.use_shard_plan` wires up.
"""

import os
import traceback
from functools import partial

from repro.simulator.errors import SimulationLimitExceeded
from repro.simulator.event_queue import EventQueue
from repro.simulator.random_source import RandomSource

SEQUENTIAL = "sequential"
SHARDED = "sharded"
DEFAULT_SHARDS = 4


def parse_engine(engine):
    """Parse an engine knob into ``(kind, shards, parallel)``.

    Accepted values: ``"sequential"``, ``"sharded"`` (4 shards),
    ``"sharded:K"``, and ``"sharded:K/parallel"`` (fork one worker process
    per shard; falls back to the serial sharded mode where ``os.fork`` is
    unavailable).
    """
    if engine is None or engine == SEQUENTIAL:
        return (SEQUENTIAL, 1, False)
    head, _, tail = engine.partition(":")
    if head != SHARDED:
        raise ValueError(
            "unknown engine %r (expected %r, %r or 'sharded:K[/parallel]')"
            % (engine, SEQUENTIAL, SHARDED)
        )
    parallel = False
    if tail.endswith("/parallel"):
        parallel = True
        tail = tail[: -len("/parallel")]
    shards = DEFAULT_SHARDS
    if tail:
        try:
            shards = int(tail)
        except ValueError:
            raise ValueError("bad shard count in engine %r" % (engine,))
    if shards < 1:
        raise ValueError("engine %r needs at least one shard" % (engine,))
    return (SHARDED, shards, parallel)


class ShardLane(object):
    """One shard's execution state: queue, clock cursor and random stream."""

    __slots__ = (
        "index",
        "queue",
        "cursor",
        "last_event_time",
        "events_processed",
        "instant_callbacks",
        "random",
    )

    def __init__(self, index, random_source):
        self.index = index
        self.queue = EventQueue()
        self.cursor = 0.0
        self.last_event_time = 0.0
        self.events_processed = 0
        self.instant_callbacks = []
        self.random = random_source

    def __repr__(self):
        return "ShardLane(%d, pending=%d, cursor=%r)" % (
            self.index,
            len(self.queue),
            self.cursor,
        )


class ShardedSimulator(object):
    """Drop-in simulation engine executing K event-queue shards in lockstep.

    Args:
        plan: a :class:`~repro.network.partition.ShardPlan` (provides the
            shard count and the lookahead).
        lookahead: optional epoch-width override in seconds; defaults to the
            plan's cut-link lookahead.  Must not exceed it.
        parallel: execute lanes in forked worker processes (one-shot runs
            only; POSIX only, silently falls back to serial elsewhere).
        seed: base seed for the per-lane forked random streams.
        max_events / max_time: safety caps, as on
            :class:`~repro.simulator.simulation.Simulator` (serial mode only
            for parallel runs they must be unset).
        tracer: optional per-event tracer hook (serial mode only).
    """

    def __init__(self, plan, lookahead=None, parallel=False, seed=0,
                 max_events=None, max_time=None, tracer=None):
        if lookahead is not None:
            if lookahead <= 0:
                raise ValueError("lookahead must be positive, got %r" % (lookahead,))
            if lookahead > plan.lookahead:
                raise ValueError(
                    "lookahead %r exceeds the plan's safe bound %r"
                    % (lookahead, plan.lookahead)
                )
        self.plan = plan
        self.num_shards = plan.num_shards
        self.lookahead = plan.lookahead if lookahead is None else lookahead
        self.parallel = bool(parallel)
        base = RandomSource(seed)
        self.lanes = [
            ShardLane(index, base.fork("shard-%d" % index))
            for index in range(self.num_shards)
        ]
        self._outboxes = [[] for _ in range(self.num_shards)]
        self._current = None
        self._idle_now = 0.0
        self._events_total = 0
        self._stop_requested = False
        self._parallel_done = False
        self.max_events = max_events
        self.max_time = max_time
        self.tracer = tracer
        # Protocol-provided hooks.
        self.remote_handler = None   # descriptor -> None, delivers a message
        self.before_fork = None      # () -> None, snapshot counter baselines
        self.export_state = None     # shard_index -> picklable blob
        self.import_state = None     # [blob, ...] -> None, refresh the driver

    # ------------------------------------------------------------------ clock

    @property
    def now(self):
        """The executing lane's cursor, or the engine's idle clock."""
        lane = self._current
        return self._idle_now if lane is None else lane.cursor

    @property
    def current_shard(self):
        """Index of the lane currently executing events (``None`` when idle)."""
        lane = self._current
        return None if lane is None else lane.index

    @property
    def events_processed(self):
        return self._events_total

    @property
    def pending_events(self):
        queued = sum(len(lane.queue) for lane in self.lanes)
        return queued + sum(len(outbox) for outbox in self._outboxes)

    @property
    def pending_instant_callbacks(self):
        return sum(len(lane.instant_callbacks) for lane in self.lanes)

    # ------------------------------------------------------------- scheduling

    def _scheduling_lane(self):
        lane = self._current
        return self.lanes[0] if lane is None else lane

    def schedule(self, delay, callback, tag=None):
        """Schedule on the executing lane (lane 0 when idle), after ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        lane = self._scheduling_lane()
        return lane.queue.push(self.now + delay, callback, tag=tag)

    def schedule_at(self, time, callback, tag=None):
        """Schedule at an absolute time on the executing lane (lane 0 when idle)."""
        if time < self.now:
            raise ValueError(
                "cannot schedule in the past (now=%r, requested=%r)" % (self.now, time)
            )
        lane = self._scheduling_lane()
        return lane.queue.push(time, callback, tag=tag)

    def schedule_callback(self, delay, callback, tag=None):
        """Bare non-cancellable callback on the executing lane (fast path)."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        lane = self._scheduling_lane()
        lane.queue.push_callback(self.now + delay, callback, tag=tag)

    def schedule_on(self, shard, time, callback, tag=None):
        """Schedule at an absolute time on an explicit shard's lane.

        This is how API calls (Join/Leave/Change) are placed on the lane that
        owns the session's source actor.  Cross-lane scheduling is only legal
        while the engine is idle (between runs): a running lane owns only its
        own queue, so mid-run cross-shard work must travel through
        :meth:`post_remote` mailboxes instead.
        """
        if time < self.now:
            raise ValueError(
                "cannot schedule in the past (now=%r, requested=%r)" % (self.now, time)
            )
        lane = self._current
        if lane is not None and lane.index != shard:
            raise RuntimeError(
                "cannot schedule on shard %d while shard %d is executing; "
                "use post_remote for cross-shard work" % (shard, lane.index)
            )
        return self.lanes[shard].queue.push(time, callback, tag=tag)

    def post_remote(self, shard, delay, descriptor, tag=None):
        """Buffer a cross-shard delivery for the next epoch barrier.

        ``descriptor`` is an opaque (picklable, in parallel mode) payload that
        ``remote_handler`` turns back into a delivery at the target lane.
        While the engine is idle the delivery is pushed straight onto the
        target lane (installation-time sends need no barrier).
        """
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        handler = self.remote_handler
        if handler is None:
            raise RuntimeError("post_remote needs a remote_handler installed")
        lane = self._current
        if lane is None or lane.index == shard:
            queue = self.lanes[shard].queue
            queue.push_callback(self.now + delay, partial(handler, descriptor), tag=tag)
            return
        self._outboxes[shard].append((lane.cursor + delay, descriptor, tag))

    def call_at_instant_end(self, callback):
        """Defer ``callback`` to the end of the executing lane's instant."""
        self._scheduling_lane().instant_callbacks.append(callback)

    def cancel(self, event):
        """Cancel a previously scheduled event.

        The owning lane is found by scanning (cancellation is not on any
        sharded hot path: packet deliveries are bare callbacks and API calls
        are never revoked).
        """
        if event.cancelled or event.consumed:
            return
        for lane in self.lanes:
            for entry in lane.queue._heap:
                if entry[4] is event:
                    lane.queue.cancel(event)
                    return
        event.cancelled = True

    def stop(self):
        """Request that the current run returns before the next event."""
        self._stop_requested = True

    # ---------------------------------------------------------------- running

    def _deliver_outboxes(self):
        """The mailbox barrier: move buffered sends into their target queues.

        Entries are inserted per target lane in source-lane order, then send
        order -- the exact order the parallel driver concatenates worker
        outboxes in, which is what keeps the two modes bit-identical.
        """
        handler = self.remote_handler
        for target, entries in enumerate(self._outboxes):
            if not entries:
                continue
            queue = self.lanes[target].queue
            for time, descriptor, tag in entries:
                queue.push_callback(time, partial(handler, descriptor), tag=tag)
            self._outboxes[target] = []

    def _flush_lane_instant(self, lane):
        callbacks = lane.instant_callbacks
        lane.instant_callbacks = []
        for callback in callbacks:
            callback()

    def _check_limits(self, next_time):
        if self.max_events is not None and self._events_total >= self.max_events:
            raise SimulationLimitExceeded(
                "event limit of %d exceeded at t=%r (possible livelock)"
                % (self.max_events, self.now),
                events_processed=self._events_total,
                current_time=self.now,
            )
        if self.max_time is not None and next_time > self.max_time:
            raise SimulationLimitExceeded(
                "time limit of %r exceeded (next event at %r)"
                % (self.max_time, next_time),
                events_processed=self._events_total,
                current_time=self.now,
            )

    def _drain_lane(self, lane, exclusive_end, inclusive_cap, stop_condition):
        """Drain one lane's events up to the epoch boundary.

        Processes events with ``time < exclusive_end`` (and ``time <=
        inclusive_cap`` when a horizon applies), flushing end-of-instant
        callbacks exactly as the sequential engine does.  The trailing flush
        at the boundary is safe: all future deliveries into this lane land at
        ``>= exclusive_end``, strictly after the lane's cursor, so the current
        instant can never reopen.
        """
        queue = lane.queue
        constrained = self.max_events is not None or self.max_time is not None
        tracer = self.tracer
        self._current = lane
        try:
            while True:
                if self._stop_requested:
                    return
                if lane.instant_callbacks:
                    next_time = queue.peek_time()
                    if next_time is None or next_time > lane.cursor:
                        self._flush_lane_instant(lane)
                        if stop_condition is not None and stop_condition():
                            self._stop_requested = True
                            return
                        continue
                next_time = queue.peek_time()
                if next_time is None:
                    return
                if next_time >= exclusive_end:
                    return
                if inclusive_cap is not None and next_time > inclusive_cap:
                    return
                if constrained:
                    self._check_limits(next_time)
                entry = queue.pop_entry()
                lane.cursor = entry[0]
                lane.last_event_time = entry[0]
                lane.events_processed += 1
                self._events_total += 1
                if tracer is not None:
                    tracer.on_event(entry[0], entry[3])
                entry[2]()
                if stop_condition is not None and stop_condition():
                    self._stop_requested = True
                    return
        finally:
            if not self._stop_requested:
                while lane.instant_callbacks:
                    next_time = queue.peek_time()
                    if next_time is not None and next_time <= lane.cursor:
                        break
                    self._flush_lane_instant(lane)
            self._current = None

    def _run_serial(self, until, stop_condition):
        lanes = self.lanes
        lookahead = self.lookahead
        while not self._stop_requested:
            self._deliver_outboxes()
            t_min = None
            for lane in lanes:
                t = lane.queue.peek_time()
                if t is not None and (t_min is None or t < t_min):
                    t_min = t
            if t_min is None:
                break
            if until is not None and t_min > until:
                break
            epoch_end = t_min + lookahead
            for lane in lanes:
                self._drain_lane(lane, epoch_end, until, stop_condition)
                if self._stop_requested:
                    break

    def _ensure_runnable(self):
        if self._parallel_done:
            raise RuntimeError(
                "this ShardedSimulator already completed a parallel run; "
                "parallel sharded runs are one-shot (build a fresh engine)"
            )

    def run(self, until=None, stop_condition=None):
        """Run the sharded simulation (serial lockstep; see class docstring).

        Semantics mirror :meth:`repro.simulator.simulation.Simulator.run`:
        events up to and including ``until`` are processed, and the clock is
        left at ``until`` when a horizon is given and the run was not stopped.
        """
        self._ensure_runnable()
        self._stop_requested = False
        self._run_serial(until, stop_condition)
        last = max(lane.last_event_time for lane in self.lanes)
        self._idle_now = max(self._idle_now, last)
        if until is not None and not self._stop_requested:
            self._idle_now = max(self._idle_now, until)
        return self._idle_now

    def run_until_quiescent(self):
        """Run until every lane's queue drains; returns the quiescence time.

        In parallel mode this forks one worker per lane (one-shot; see the
        class docstring), falling back to the bit-identical serial schedule
        when forking is unavailable.
        """
        self._ensure_runnable()
        # A stale stop() from an earlier interrupted run must not end this
        # drain early (matching Simulator.run_until_quiescent).
        self._stop_requested = False
        if self.parallel and self.num_shards > 1 and hasattr(os, "fork"):
            return self._run_parallel()
        self._run_serial(None, None)
        last = max(lane.last_event_time for lane in self.lanes)
        self._idle_now = max(self._idle_now, last)
        return self._idle_now

    # ------------------------------------------------------- parallel (fork)

    def _run_parallel(self):
        if self.remote_handler is None:
            raise RuntimeError("parallel sharded runs need a remote_handler")
        if self.max_events is not None or self.max_time is not None or self.tracer is not None:
            raise RuntimeError(
                "max_events/max_time/tracer are not supported in parallel "
                "sharded runs; use the serial sharded mode"
            )
        if self.before_fork is not None:
            self.before_fork()
        import multiprocessing

        shard_count = self.num_shards
        conns = []
        pids = []
        for index in range(shard_count):
            parent_conn, child_conn = multiprocessing.Pipe()
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    parent_conn.close()
                    for earlier in conns:
                        earlier.close()
                    self._worker_loop(index, child_conn)
                    status = 0
                except BaseException:
                    try:
                        child_conn.send(("error", traceback.format_exc()))
                    except Exception:
                        pass
                finally:
                    try:
                        child_conn.close()
                    finally:
                        os._exit(status)
            child_conn.close()
            conns.append(parent_conn)
            pids.append(pid)

        try:
            # One round trip per epoch: the driver knows every lane's
            # post-drain peek (from the previous replies) and holds the
            # undelivered mail, so ``t_min`` -- the earliest event anywhere --
            # is computable without polling the workers again.
            inboxes = [[] for _ in range(shard_count)]
            peeks = [lane.queue.peek_time() for lane in self.lanes]
            while True:
                t_min = min((t for t in peeks if t is not None), default=None)
                for inbox in inboxes:
                    for time, _descriptor, _tag in inbox:
                        if t_min is None or time < t_min:
                            t_min = time
                if t_min is None:
                    break
                epoch_end = t_min + self.lookahead
                for conn, inbox in zip(conns, inboxes):
                    conn.send(("step", inbox, epoch_end))
                inboxes = [[] for _ in range(shard_count)]
                replies = [self._recv(conn) for conn in conns]
                peeks = []
                for worker_outboxes, peek in replies:
                    peeks.append(peek)
                    for target in range(shard_count):
                        inboxes[target].extend(worker_outboxes[target])
            for conn in conns:
                conn.send(("finish",))
            summaries = [self._recv(conn) for conn in conns]
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for pid in pids:
                os.waitpid(pid, 0)

        self._events_total = 0
        for lane, summary in zip(self.lanes, summaries):
            lane.events_processed = summary["events"]
            lane.last_event_time = summary["last_event_time"]
            lane.cursor = summary["cursor"]
            self._events_total += summary["events"]
            # The driver never executed anything: its queues still hold every
            # event the workers consumed.  Drop them so quiescence holds.
            lane.queue.clear()
            lane.instant_callbacks = []
        self._outboxes = [[] for _ in range(shard_count)]
        self._parallel_done = True
        self._idle_now = max(
            self._idle_now, max(lane.last_event_time for lane in self.lanes)
        )
        if self.import_state is not None:
            self.import_state([summary["protocol"] for summary in summaries])
        return self._idle_now

    @staticmethod
    def _recv(conn):
        message = conn.recv()
        if message[0] == "error":
            raise RuntimeError("sharded worker failed:\n%s" % message[1])
        return message[1]

    def _worker_loop(self, index, conn):
        """The per-shard worker: serve step/finish requests until done.

        The worker inherited the full simulation state via fork but only ever
        executes its own lane; every other lane's copy goes stale and is
        ignored.  Inbox entries are pushed in the order the driver merged
        them (source lane, then send order) -- the serial barrier's order.
        """
        lane = self.lanes[index]
        handler = self.remote_handler
        shard_count = self.num_shards
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "step":
                # Deliver this epoch's mail (driver-merged order), drain the
                # lane to the epoch end, return outboxes + post-drain peek.
                for time, descriptor, tag in message[1]:
                    lane.queue.push_callback(time, partial(handler, descriptor), tag=tag)
                self._outboxes = [[] for _ in range(shard_count)]
                self._drain_lane(lane, message[2], None, None)
                conn.send(("ok", (self._outboxes, lane.queue.peek_time())))
            elif kind == "finish":
                blob = None if self.export_state is None else self.export_state(index)
                conn.send(
                    (
                        "ok",
                        {
                            "events": lane.events_processed,
                            "last_event_time": lane.last_event_time,
                            "cursor": lane.cursor,
                            "protocol": blob,
                        },
                    )
                )
                return
            else:
                raise ValueError("unknown worker request %r" % (kind,))

    def __repr__(self):
        return "ShardedSimulator(shards=%d, lookahead=%.3g, pending=%d, processed=%d%s)" % (
            self.num_shards,
            self.lookahead,
            self.pending_events,
            self._events_total,
            ", parallel" if self.parallel else "",
        )
