"""A sharded, multi-lane discrete-event engine with epoch-batched messaging.

:class:`ShardedSimulator` partitions the protocol's actors across ``K``
*lanes* -- one per shard -- each with its own
:class:`~repro.simulator.event_queue.EventQueue`, clock cursor and forked
:class:`~repro.simulator.random_source.RandomSource`.  The lanes advance in
lockstep *epochs*:

1. every cross-shard message produced during the previous epoch is delivered
   into its target lane's queue (the *mailbox barrier*);
2. the epoch end is computed as ``t_min + lookahead``, where ``t_min`` is the
   earliest pending event across all lanes and ``lookahead`` is the smallest
   control delay of any cut link (see
   :func:`repro.network.partition.partition_network`);
3. every lane independently drains its events with ``time < epoch_end``,
   buffering cross-shard sends in per-target outboxes.

Because a cross-shard message sent at time ``t`` is delivered no earlier than
``t + lookahead >= epoch_end`` (float addition is monotone, so the bound holds
bit-exactly), no lane can receive a message in its own past: the conservative
null-message-free synchronization of classic parallel discrete-event
simulation.  Within a lane the full ``(time, sequence)`` determinism contract
of :class:`~repro.simulator.event_queue.EventQueue` holds, and the mailbox
barrier inserts deliveries in a fixed order (by source lane, then send order),
so an entire sharded run is deterministic for a given seed and shard count.

Two execution modes share the exact same epoch schedule, drain loop and
mailbox ordering, and therefore produce bit-identical runs:

* **serial** (default): one process executes the lanes round-robin inside
  each epoch.  This mode supports everything the single-queue
  :class:`~repro.simulator.simulation.Simulator` supports (horizons, stop
  conditions, limits, tracers, multi-phase workloads) and is what the
  cross-engine determinism tests pin down.
* **parallel** (``parallel=True``, POSIX only): the engine keeps a
  *persistent worker pool* -- one forked process per lane -- resident across
  runs.  Workers are forked once, at the first parallel run, and then served
  commands over pipes (see the command protocol below), so multi-phase
  workloads where phase N+1's schedule depends on phase N's observed
  quiescence time execute on all cores without ever falling back to serial.
  This is the multi-core path for paper-scale topologies.

The worker command protocol
---------------------------

Each worker owns exactly one lane and answers five commands:

``BROADCAST_ACTIONS``
    Replay a batch of opaque *action* blobs through ``action_handler`` (the
    protocol installs one that applies joins/leaves/changes).  Every process
    -- the driver included -- replays the same batch through the same code
    path, so all copies of a lane's queue receive the same pushes in the same
    relative order.  No reply; pipe FIFO ordering guarantees the actions are
    applied before any later run command.
``RUN_UNTIL`` / ``RUN_TO_QUIESCENCE``
    One epoch step: push this epoch's inbox (driver-merged, source-lane
    order), drain the lane up to ``epoch_end`` (``RUN_UNTIL`` additionally
    caps at the run's horizon), reply with the per-target outboxes, the
    post-drain peek and the lane's event count.  The peek doubles as the
    lane's *idle token*: global quiescence is detected by the driver as the
    all-lanes-idle exchange where every token is ``None`` and no mail is in
    flight.
``EXPORT_STATE``
    End-of-run synchronization: flush the lane's bookkeeping timers, export
    the protocol state delta through ``export_state``, re-baseline the delta
    counters (``before_fork``), and reply with the lane summary.  The driver
    folds the summaries back through ``import_state``, so allocations, packet
    counts and validation work transparently between runs.
``SHUTDOWN``
    Exit the worker loop.  Workers also exit on EOF, so a driver that simply
    goes away never leaves orphans.

Cross-shard payloads are opaque picklable *descriptors* handed to
``remote_handler`` at delivery time; outboxes crossing a pipe are
batch-encoded through the optional ``encode_outbox`` / ``decode_inbox``
hooks (the protocol installs a flat-tuple packet codec, see
:mod:`repro.core.packets`), so an entire epoch's mail pickles as one list of
primitive tuples.  All hooks are installed by
:meth:`repro.core.protocol.BNeckProtocol.use_shard_plan`.
"""

import heapq
import itertools
import os
import traceback
from functools import partial

from repro.simulator.errors import SimulationLimitExceeded
from repro.simulator.event_queue import EventQueue
from repro.simulator.random_source import RandomSource

SEQUENTIAL = "sequential"
SHARDED = "sharded"
DEFAULT_SHARDS = 4

# Worker command protocol (see the module docstring).
BROADCAST_ACTIONS = "BROADCAST_ACTIONS"
RUN_UNTIL = "RUN_UNTIL"
RUN_TO_QUIESCENCE = "RUN_TO_QUIESCENCE"
EXPORT_STATE = "EXPORT_STATE"
SHUTDOWN = "SHUTDOWN"

_ENGINE_GRAMMAR = "'sequential', 'sharded' or 'sharded:K[/parallel]' with K >= 1"


def parse_engine(engine):
    """Parse an engine knob into ``(kind, shards, parallel)``.

    Accepted values: ``"sequential"``, ``"sharded"`` (4 shards),
    ``"sharded:K"``, and ``"sharded:K/parallel"`` (one persistent worker
    process per shard; falls back to the serial sharded mode where
    ``os.fork`` is unavailable).  Anything else -- a zero or negative shard
    count, a non-integer count, trailing junk -- is rejected with an error
    naming the expected grammar.
    """
    if engine is None or engine == SEQUENTIAL:
        return (SEQUENTIAL, 1, False)
    if not isinstance(engine, str):
        raise ValueError(
            "engine must be a string or None, got %r (expected %s)"
            % (engine, _ENGINE_GRAMMAR)
        )
    head, separator, tail = engine.partition(":")
    if head != SHARDED:
        raise ValueError(
            "unknown engine %r (expected %s)" % (engine, _ENGINE_GRAMMAR)
        )
    parallel = False
    if tail.endswith("/parallel"):
        parallel = True
        tail = tail[: -len("/parallel")]
    if separator and not tail:
        raise ValueError(
            "engine %r is missing its shard count after ':' (expected %s)"
            % (engine, _ENGINE_GRAMMAR)
        )
    shards = DEFAULT_SHARDS
    if tail:
        try:
            shards = int(tail)
        except ValueError:
            raise ValueError(
                "bad shard count %r in engine %r (expected %s)"
                % (tail, engine, _ENGINE_GRAMMAR)
            ) from None
    if shards < 1:
        raise ValueError(
            "engine %r needs at least one shard, got %d (expected %s)"
            % (engine, shards, _ENGINE_GRAMMAR)
        )
    return (SHARDED, shards, parallel)


class ShardLane(object):
    """One shard's execution state: queue, clock cursor and random stream."""

    __slots__ = (
        "index",
        "queue",
        "cursor",
        "last_event_time",
        "events_processed",
        "instant_callbacks",
        "timers",
        "timer_counter",
        "random",
    )

    def __init__(self, index, random_source):
        self.index = index
        self.queue = EventQueue()
        self.cursor = 0.0
        self.last_event_time = 0.0
        self.events_processed = 0
        self.instant_callbacks = []
        # Bookkeeping timers: (due, sequence, callback) heap entries that fire
        # *between* events and never touch the event queue (see
        # ShardedSimulator.schedule_bookkeeping).
        self.timers = []
        self.timer_counter = itertools.count()
        self.random = random_source

    def __repr__(self):
        return "ShardLane(%d, pending=%d, cursor=%r)" % (
            self.index,
            len(self.queue),
            self.cursor,
        )


class _WorkerPool(object):
    """The persistent per-lane worker processes of a parallel sharded run.

    One process per lane, forked from the driver and kept resident across
    runs; the driver talks to each worker over a dedicated pipe.  Every pipe
    failure (a worker that died mid-epoch, a broken send) surfaces as a
    :class:`RuntimeError` naming the lane instead of a hang, and
    :meth:`shutdown` closes the pipes *before* reaping so a worker blocked on
    a full reply pipe unblocks (EPIPE) rather than deadlocking the driver.
    """

    def __init__(self, engine):
        import multiprocessing

        self.num_shards = engine.num_shards
        self.conns = []
        self.pids = []
        for index in range(self.num_shards):
            parent_conn, child_conn = multiprocessing.Pipe()
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    parent_conn.close()
                    for earlier in self.conns:
                        earlier.close()
                    engine._worker_main(index, child_conn)
                    status = 0
                except BaseException:
                    try:
                        child_conn.send(("error", traceback.format_exc()))
                    except Exception:
                        pass
                finally:
                    try:
                        child_conn.close()
                    finally:
                        os._exit(status)
            child_conn.close()
            self.conns.append(parent_conn)
            self.pids.append(pid)

    def _guarded_send(self, lane_index, sender, payload):
        try:
            sender(payload)
        except (OSError, ValueError) as exc:
            raise RuntimeError(
                "sharded worker for lane %d died (pipe send failed: %s); "
                "the engine can no longer run" % (lane_index, exc)
            ) from exc

    def send(self, lane_index, message):
        self._guarded_send(lane_index, self.conns[lane_index].send, message)

    def broadcast(self, message):
        """Send one message to every worker, pickling it exactly once."""
        from multiprocessing.reduction import ForkingPickler

        payload = bytes(ForkingPickler.dumps(message))
        for lane_index in range(self.num_shards):
            self._guarded_send(
                lane_index, self.conns[lane_index].send_bytes, payload
            )

    def recv(self, lane_index):
        """Receive one reply from a worker, surfacing failures as typed errors."""
        try:
            message = self.conns[lane_index].recv()
        except EOFError as exc:
            raise RuntimeError(
                "sharded worker for lane %d died mid-epoch (EOF on pipe); "
                "a crashed or killed worker cannot be recovered" % (lane_index,)
            ) from exc
        kind = message[0]
        if kind == "error":
            raise RuntimeError(
                "sharded worker for lane %d failed:\n%s" % (lane_index, message[1])
            )
        if kind == "limit":
            raise SimulationLimitExceeded(
                message[1], events_processed=message[2], current_time=message[3]
            )
        return message[1]

    def shutdown(self):
        """Stop every worker: best-effort SHUTDOWN, close pipes, reap."""
        for conn in self.conns:
            try:
                conn.send((SHUTDOWN,))
            except Exception:
                pass
        for conn in self.conns:
            try:
                conn.close()
            except Exception:
                pass
        for pid in self.pids:
            try:
                os.waitpid(pid, 0)
            except OSError:
                pass
        self.conns = []
        self.pids = []

    def __del__(self):
        try:
            if self.pids:
                self.shutdown()
        except Exception:
            pass


class ShardedSimulator(object):
    """Drop-in simulation engine executing K event-queue shards in lockstep.

    Args:
        plan: a :class:`~repro.network.partition.ShardPlan` (provides the
            shard count and the lookahead).
        lookahead: optional epoch-width override in seconds; defaults to the
            plan's cut-link lookahead.  Must not exceed it.
        parallel: execute lanes in a persistent pool of forked worker
            processes (POSIX only, silently falls back to serial elsewhere).
            Workers stay resident across runs, so multi-phase workloads --
            broadcast actions, run, broadcast the next phase -- stay on all
            cores.
        seed: base seed for the per-lane forked random streams.
        max_events / max_time: safety caps, as on
            :class:`~repro.simulator.simulation.Simulator`.  Serial runs
            check them per event; parallel runs check ``max_time`` before
            every epoch and ``max_events`` at epoch barriers (plus a
            per-worker in-epoch backstop inherited at fork time), so parallel
            limits trigger at epoch granularity.
        tracer: optional per-event tracer hook (serial mode only; the
            protocol-level packet tracer works in both modes).
    """

    def __init__(self, plan, lookahead=None, parallel=False, seed=0,
                 max_events=None, max_time=None, tracer=None):
        if lookahead is not None:
            if lookahead <= 0:
                raise ValueError("lookahead must be positive, got %r" % (lookahead,))
            if lookahead > plan.lookahead:
                raise ValueError(
                    "lookahead %r exceeds the plan's safe bound %r"
                    % (lookahead, plan.lookahead)
                )
        self.plan = plan
        self.num_shards = plan.num_shards
        self.lookahead = plan.lookahead if lookahead is None else lookahead
        self.parallel = bool(parallel)
        base = RandomSource(seed)
        self.lanes = [
            ShardLane(index, base.fork("shard-%d" % index))
            for index in range(self.num_shards)
        ]
        self._outboxes = [[] for _ in range(self.num_shards)]
        self._current = None
        self._idle_now = 0.0
        self._events_total = 0
        self._stop_requested = False
        self.max_events = max_events
        self.max_time = max_time
        self.tracer = tracer
        # Persistent-pool state (parallel mode).
        self._pool = None
        self._pool_retired = False
        self._remote_peeks = None
        self._remote_pending = 0
        self._in_broadcast = False
        # Protocol-provided hooks.
        self.remote_handler = None   # descriptor -> None, delivers a message
        self.action_handler = None   # actions blob -> result, replays a batch
        self.before_fork = None      # () -> None, snapshot counter baselines
        self.export_state = None     # shard_index -> picklable blob
        self.import_state = None     # [blob, ...] -> None, refresh the driver
        self.encode_outbox = None    # [(time, descriptor, tag)] -> wire entries
        self.decode_inbox = None     # wire entries -> [(time, descriptor, tag)]

    # ------------------------------------------------------------------ clock

    @property
    def now(self):
        """The executing lane's cursor, or the engine's idle clock."""
        lane = self._current
        return self._idle_now if lane is None else lane.cursor

    @property
    def current_shard(self):
        """Index of the lane currently executing events (``None`` when idle)."""
        lane = self._current
        return None if lane is None else lane.index

    @property
    def events_processed(self):
        return self._events_total

    @property
    def pending_events(self):
        queued = sum(len(lane.queue) for lane in self.lanes)
        pending = queued + sum(len(outbox) for outbox in self._outboxes)
        if self._pool is not None:
            # Live workers own the authoritative queues: their post-sync
            # backlog plus whatever the driver mirrored since the last sync
            # (broadcast actions land in both copies, so the two parts are
            # disjoint).
            pending += self._remote_pending
        return pending

    @property
    def pending_instant_callbacks(self):
        return sum(len(lane.instant_callbacks) for lane in self.lanes)

    @property
    def pending_bookkeeping(self):
        """Bookkeeping timers not yet fired (they never block quiescence)."""
        return sum(len(lane.timers) for lane in self.lanes)

    @property
    def workers_live(self):
        """True once the persistent worker pool has been forked."""
        return self._pool is not None

    # ------------------------------------------------------------- scheduling

    def _scheduling_lane(self):
        lane = self._current
        return self.lanes[0] if lane is None else lane

    def _check_driver_scheduling(self):
        # With live workers the driver's queues are mirrors: every push must
        # also happen in the workers, which only the action-broadcast path
        # guarantees.  A direct schedule would silently never execute.
        if self._pool is not None and self._current is None and not self._in_broadcast:
            raise RuntimeError(
                "cannot schedule directly on a driver with live persistent "
                "workers; describe the work as session actions and broadcast "
                "them (see ShardedSimulator.broadcast_actions)"
            )

    def schedule(self, delay, callback, tag=None):
        """Schedule on the executing lane (lane 0 when idle), after ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        self._check_driver_scheduling()
        lane = self._scheduling_lane()
        return lane.queue.push(self.now + delay, callback, tag=tag)

    def schedule_at(self, time, callback, tag=None):
        """Schedule at an absolute time on the executing lane (lane 0 when idle)."""
        if time < self.now:
            raise ValueError(
                "cannot schedule in the past (now=%r, requested=%r)" % (self.now, time)
            )
        self._check_driver_scheduling()
        lane = self._scheduling_lane()
        return lane.queue.push(time, callback, tag=tag)

    def schedule_callback(self, delay, callback, tag=None):
        """Bare non-cancellable callback on the executing lane (fast path)."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        self._check_driver_scheduling()
        lane = self._scheduling_lane()
        lane.queue.push_callback(self.now + delay, callback, tag=tag)

    def schedule_on(self, shard, time, callback, tag=None):
        """Schedule at an absolute time on an explicit shard's lane.

        This is how API calls (Join/Leave/Change) are placed on the lane that
        owns the session's source actor.  Cross-lane scheduling is only legal
        while the engine is idle (between runs): a running lane owns only its
        own queue, so mid-run cross-shard work must travel through
        :meth:`post_remote` mailboxes instead.
        """
        if time < self.now:
            raise ValueError(
                "cannot schedule in the past (now=%r, requested=%r)" % (self.now, time)
            )
        lane = self._current
        if lane is not None and lane.index != shard:
            raise RuntimeError(
                "cannot schedule on shard %d while shard %d is executing; "
                "use post_remote for cross-shard work" % (shard, lane.index)
            )
        if lane is None:
            self._check_driver_scheduling()
        return self.lanes[shard].queue.push(time, callback, tag=tag)

    def schedule_bookkeeping(self, delay, callback):
        """Schedule an out-of-band *bookkeeping timer* on the executing lane.

        Timers fire ``callback(due)`` between events -- always before any
        event of the same lane with ``time >= due`` executes, and at the
        latest when a run ends -- but they are not simulation events: they
        never appear in ``events_processed``, never delay quiescence or
        stretch a reported phase duration, and must not schedule simulation
        work.  The protocol uses them for windowed ``API.Rate`` flushes.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        self._check_driver_scheduling()
        lane = self._scheduling_lane()
        heapq.heappush(lane.timers, (self.now + delay, next(lane.timer_counter), callback))

    def post_remote(self, shard, delay, descriptor, tag=None):
        """Buffer a cross-shard delivery for the next epoch barrier.

        ``descriptor`` is an opaque (picklable, in parallel mode) payload that
        ``remote_handler`` turns back into a delivery at the target lane.
        While the engine is idle the delivery is pushed straight onto the
        target lane (installation-time sends need no barrier).
        """
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        handler = self.remote_handler
        if handler is None:
            raise RuntimeError("post_remote needs a remote_handler installed")
        lane = self._current
        if lane is None or lane.index == shard:
            if lane is None:
                self._check_driver_scheduling()
            queue = self.lanes[shard].queue
            queue.push_callback(self.now + delay, partial(handler, descriptor), tag=tag)
            return
        self._outboxes[shard].append((lane.cursor + delay, descriptor, tag))

    def call_at_instant_end(self, callback):
        """Defer ``callback`` to the end of the executing lane's instant."""
        self._scheduling_lane().instant_callbacks.append(callback)

    def cancel(self, event):
        """Cancel a previously scheduled event.

        The owning lane is found by scanning (cancellation is not on any
        sharded hot path: packet deliveries are bare callbacks and API calls
        are never revoked).
        """
        if event.cancelled or event.consumed:
            return
        for lane in self.lanes:
            for entry in lane.queue._heap:
                if entry[4] is event:
                    lane.queue.cancel(event)
                    return
        event.cancelled = True

    def stop(self):
        """Request that the current run returns before the next event.

        Serial runs honour the request between events, as the sequential
        engine does.  In a parallel run the flag is observed by the lane that
        executes the ``stop()`` (each worker resets it at the start of every
        epoch, so a latched flag can never wedge later epochs); the worker
        finishes nothing further in that epoch and reports the stop in its
        reply, and the driver ends the run at the epoch barrier.
        """
        self._stop_requested = True

    # ----------------------------------------------------- action broadcasting

    def broadcast_actions(self, actions):
        """Replay an action batch everywhere: live workers first, then locally.

        ``actions`` is an opaque picklable blob understood by the installed
        ``action_handler``.  With a live pool the batch is sent to every
        worker (applied there before any later run command thanks to pipe
        FIFO ordering) and then replayed on the driver, so all copies of each
        lane's queue receive the same pushes in the same relative order.
        Without a pool -- serial mode, or parallel before the first run --
        this is simply a local replay.  Returns the local handler's result.
        """
        handler = self.action_handler
        if handler is None:
            raise RuntimeError("broadcast_actions needs an action_handler installed")
        pool = self._pool
        if pool is not None:
            try:
                pool.broadcast((BROADCAST_ACTIONS, actions))
            except BaseException:
                # Even a KeyboardInterrupt mid-broadcast leaves the workers
                # divergent (some got the batch, some did not): retire the
                # pool rather than risk silently wrong later runs.
                self.shutdown()
                raise
        self._in_broadcast = True
        try:
            return handler(actions)
        except BaseException:
            if pool is not None:
                # The workers received (and will apply) the full batch while
                # the driver's mirror stopped mid-replay: the two sides have
                # diverged, so fail fast and coherently instead of letting a
                # later command surface a confusing worker error.
                self.shutdown()
            raise
        finally:
            self._in_broadcast = False

    # ---------------------------------------------------------------- running

    def _deliver_outboxes(self):
        """The mailbox barrier: move buffered sends into their target queues.

        Entries are inserted per target lane in source-lane order, then send
        order -- the exact order the parallel driver concatenates worker
        outboxes in, which is what keeps the two modes bit-identical.
        """
        handler = self.remote_handler
        for target, entries in enumerate(self._outboxes):
            if not entries:
                continue
            queue = self.lanes[target].queue
            for time, descriptor, tag in entries:
                queue.push_callback(time, partial(handler, descriptor), tag=tag)
            self._outboxes[target] = []

    def _flush_lane_instant(self, lane):
        callbacks = lane.instant_callbacks
        lane.instant_callbacks = []
        for callback in callbacks:
            callback()

    def _fire_lane_timers(self, lane, cap):
        """Fire the lane's bookkeeping timers with ``due <= cap`` (in order)."""
        timers = lane.timers
        outer = self._current
        self._current = lane
        try:
            while timers and (cap is None or timers[0][0] <= cap):
                due, _sequence, callback = heapq.heappop(timers)
                callback(due)
        finally:
            self._current = outer

    def _flush_all_timers(self, cap):
        for lane in self.lanes:
            if lane.timers:
                self._fire_lane_timers(lane, cap)

    def _check_limits(self, next_time):
        if self.max_events is not None and self._events_total >= self.max_events:
            raise SimulationLimitExceeded(
                "event limit of %d exceeded at t=%r (possible livelock)"
                % (self.max_events, self.now),
                events_processed=self._events_total,
                current_time=self.now,
            )
        if self.max_time is not None and next_time > self.max_time:
            raise SimulationLimitExceeded(
                "time limit of %r exceeded (next event at %r)"
                % (self.max_time, next_time),
                events_processed=self._events_total,
                current_time=self.now,
            )

    def _drain_lane(self, lane, exclusive_end, inclusive_cap, stop_condition):
        """Drain one lane's events up to the epoch boundary.

        Processes events with ``time < exclusive_end`` (and ``time <=
        inclusive_cap`` when a horizon applies), flushing end-of-instant
        callbacks exactly as the sequential engine does.  The trailing flush
        at the boundary is safe: all future deliveries into this lane land at
        ``>= exclusive_end``, strictly after the lane's cursor, so the current
        instant can never reopen.  Bookkeeping timers fire before any event
        with ``time >= due`` executes (deferral past an epoch boundary is
        harmless: only this lane's events can touch this lane's buffers).
        """
        queue = lane.queue
        constrained = self.max_events is not None or self.max_time is not None
        tracer = self.tracer
        timers = lane.timers
        self._current = lane
        try:
            while True:
                if self._stop_requested:
                    return
                if lane.instant_callbacks:
                    next_time = queue.peek_time()
                    if next_time is None or next_time > lane.cursor:
                        self._flush_lane_instant(lane)
                        if stop_condition is not None and stop_condition():
                            self._stop_requested = True
                            return
                        continue
                next_time = queue.peek_time()
                if next_time is None:
                    return
                if next_time >= exclusive_end:
                    return
                if inclusive_cap is not None and next_time > inclusive_cap:
                    return
                if timers and timers[0][0] <= next_time:
                    self._fire_lane_timers(lane, next_time)
                if constrained:
                    self._check_limits(next_time)
                entry = queue.pop_entry()
                lane.cursor = entry[0]
                lane.last_event_time = entry[0]
                lane.events_processed += 1
                self._events_total += 1
                if tracer is not None:
                    tracer.on_event(entry[0], entry[3])
                entry[2]()
                if stop_condition is not None and stop_condition():
                    self._stop_requested = True
                    return
        finally:
            if not self._stop_requested:
                while lane.instant_callbacks:
                    next_time = queue.peek_time()
                    if next_time is not None and next_time <= lane.cursor:
                        break
                    self._flush_lane_instant(lane)
            self._current = None

    def _run_serial(self, until, stop_condition):
        lanes = self.lanes
        lookahead = self.lookahead
        while not self._stop_requested:
            self._deliver_outboxes()
            t_min = None
            for lane in lanes:
                t = lane.queue.peek_time()
                if t is not None and (t_min is None or t < t_min):
                    t_min = t
            if t_min is None:
                break
            if until is not None and t_min > until:
                break
            epoch_end = t_min + lookahead
            for lane in lanes:
                self._drain_lane(lane, epoch_end, until, stop_condition)
                if self._stop_requested:
                    break

    def _use_pool(self):
        return self.parallel and self.num_shards > 1 and hasattr(os, "fork")

    def run(self, until=None, stop_condition=None):
        """Run the sharded simulation up to a horizon (or until it drains).

        Semantics mirror :meth:`repro.simulator.simulation.Simulator.run`:
        events up to and including ``until`` are processed, and the clock is
        left at ``until`` when a horizon is given and the run was not
        stopped.  In parallel mode the run executes on the persistent worker
        pool (``stop_condition`` needs the serial mode: a predicate over
        driver state cannot observe worker progress).
        """
        self._stop_requested = False
        if self._use_pool():
            if stop_condition is not None:
                raise RuntimeError(
                    "stop_condition is not supported in parallel sharded "
                    "runs; use the serial sharded mode"
                )
            return self._run_parallel(until)
        self._run_serial(until, stop_condition)
        last = max(lane.last_event_time for lane in self.lanes)
        self._idle_now = max(self._idle_now, last)
        if not self._stop_requested:
            if until is not None:
                self._idle_now = max(self._idle_now, until)
            self._flush_all_timers(until)
        return self._idle_now

    def run_until_quiescent(self):
        """Run until every lane's queue drains; returns the quiescence time.

        In parallel mode this runs on the persistent worker pool (forked at
        the first parallel run and kept resident), falling back to the
        bit-identical serial schedule when forking is unavailable.
        """
        # A stale stop() from an earlier interrupted run must not end this
        # drain early (matching Simulator.run_until_quiescent).
        self._stop_requested = False
        if self._use_pool():
            return self._run_parallel(None)
        self._run_serial(None, None)
        last = max(lane.last_event_time for lane in self.lanes)
        self._idle_now = max(self._idle_now, last)
        self._flush_all_timers(None)
        return self._idle_now

    # -------------------------------------------------- parallel (worker pool)

    def shutdown(self):
        """Terminate the persistent worker pool (idempotent).

        After a shutdown the driver's protocol state reflects the last
        completed sync; the workers' authoritative queues and link states are
        gone, so the engine cannot run parallel epochs anymore -- a later
        parallel run raises instead of silently re-forking from the driver's
        incomplete mirror.  A shutdown before the first parallel run (e.g.
        ``ExperimentRunner.close`` on an engine that never ran) retires
        nothing.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            self._pool_retired = True
            pool.shutdown()

    def _start_pool(self):
        if self._pool_retired:
            raise RuntimeError(
                "this ShardedSimulator's persistent worker pool has been "
                "shut down (explicitly, or after a worker failure/limit "
                "error); the driver only mirrors the last sync, so a new "
                "pool cannot be seeded -- build a fresh engine"
            )
        if self.remote_handler is None:
            raise RuntimeError("parallel sharded runs need a remote_handler")
        if self.before_fork is not None:
            self.before_fork()
        self._pool = _WorkerPool(self)

    def _merged_peeks(self):
        """Initial per-lane peeks for a run: last synced worker backlog merged
        with the driver-side mirror of everything broadcast since."""
        peeks = []
        for index, lane in enumerate(self.lanes):
            local = lane.queue.peek_time()
            remote = None if self._remote_peeks is None else self._remote_peeks[index]
            if local is None:
                peeks.append(remote)
            elif remote is None:
                peeks.append(local)
            else:
                peeks.append(min(local, remote))
        return peeks

    def _run_parallel(self, until):
        if self.tracer is not None:
            raise RuntimeError(
                "engine-level tracers are not supported in parallel sharded "
                "runs; use the serial sharded mode (the protocol-level packet "
                "tracer works in both)"
            )
        shard_count = self.num_shards
        try:
            if self._pool is None:
                self._start_pool()
                peeks = [lane.queue.peek_time() for lane in self.lanes]
            else:
                peeks = self._merged_peeks()
            pool = self._pool
            command = RUN_TO_QUIESCENCE if until is None else RUN_UNTIL
            inboxes = [[] for _ in range(shard_count)]
            stopped = False
            while not stopped:
                t_min = min((t for t in peeks if t is not None), default=None)
                for inbox in inboxes:
                    for entry in inbox:
                        if t_min is None or entry[0] < t_min:
                            t_min = entry[0]
                if t_min is None:
                    break
                if until is not None and t_min > until:
                    break
                if self.max_events is not None or self.max_time is not None:
                    # Epoch-granularity enforcement (the driver is idle, so
                    # self.now is the last synced clock); workers keep their
                    # inherited per-event checks as an in-epoch backstop.
                    self._check_limits(t_min)
                epoch_end = t_min + self.lookahead
                for index in range(shard_count):
                    pool.send(index, (command, inboxes[index], epoch_end, until))
                inboxes = [[] for _ in range(shard_count)]
                peeks = []
                for index in range(shard_count):
                    worker_outboxes, peek, lane_events, lane_stopped = pool.recv(index)
                    peeks.append(peek)
                    stopped = stopped or lane_stopped
                    lane = self.lanes[index]
                    self._events_total += lane_events - lane.events_processed
                    lane.events_processed = lane_events
                    for target in range(shard_count):
                        inboxes[target].extend(worker_outboxes[target])
            # A horizon or stop() exit can leave undelivered mail; push it
            # into the worker queues now (a zero-width delivery step) so it
            # takes its sequence slots before any later action broadcast --
            # exactly the serial barrier's ordering.
            if any(inboxes):
                for index in range(shard_count):
                    pool.send(index, (command, inboxes[index], 0.0, until))
                for index in range(shard_count):
                    pool.recv(index)
            # End-of-run synchronization (EXPORT_STATE): flush bookkeeping
            # timers (not on stopped runs: they are paused, not drained),
            # gather per-lane summaries and protocol state deltas.
            for index in range(shard_count):
                pool.send(index, (EXPORT_STATE, until, not stopped))
            summaries = [pool.recv(index) for index in range(shard_count)]
        except BaseException:
            # Any abnormal exit -- a worker failure, a limit error, or a
            # KeyboardInterrupt between send and recv -- leaves in-flight
            # mail and un-consumed replies in the pipes; the pool cannot be
            # reused, so tear it down (mirroring the one-shot engine's
            # `finally` guarantees).
            self.shutdown()
            raise

        self._events_total = 0
        self._remote_peeks = []
        self._remote_pending = 0
        for lane, summary in zip(self.lanes, summaries):
            lane.events_processed = summary["events"]
            lane.last_event_time = summary["last_event_time"]
            lane.cursor = summary["cursor"]
            self._events_total += summary["events"]
            self._remote_peeks.append(summary["peek"])
            self._remote_pending += summary["pending"]
            # The driver executed nothing: its queue mirrors hold every event
            # the workers consumed (or still own).  Drop them; the synced
            # peek/pending numbers describe the authoritative worker state.
            lane.queue.clear()
            lane.instant_callbacks = []
            lane.timers = []
        self._outboxes = [[] for _ in range(shard_count)]
        self._idle_now = max(
            self._idle_now, max(lane.last_event_time for lane in self.lanes)
        )
        if until is not None and not stopped:
            self._idle_now = max(self._idle_now, until)
        self._stop_requested = False
        if self.import_state is not None:
            self.import_state([summary["protocol"] for summary in summaries])
        return self._idle_now

    def _worker_main(self, index, conn):
        """The persistent per-shard worker: serve commands until shutdown.

        The worker inherited the full simulation state via fork but only ever
        executes its own lane; every other lane's copy goes stale (action
        broadcasts keep it structurally consistent) and is never drained.
        Inbox entries are pushed in the order the driver merged them (source
        lane, then send order) -- the serial barrier's order.
        """
        lane = self.lanes[index]
        handler = self.remote_handler
        decode = self.decode_inbox
        encode = self.encode_outbox
        shard_count = self.num_shards
        self._pool = None  # this process is a worker, not a driver
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # the driver went away; exit quietly
            kind = message[0]
            if kind == RUN_UNTIL or kind == RUN_TO_QUIESCENCE:
                inbox, epoch_end, cap = message[1], message[2], message[3]
                if decode is not None and inbox:
                    inbox = decode(inbox)
                for time, descriptor, tag in inbox:
                    lane.queue.push_callback(
                        time, partial(handler, descriptor), tag=tag
                    )
                self._outboxes = [[] for _ in range(shard_count)]
                # Reset the stop flag per epoch: a stop() latched in an
                # earlier epoch (workers never run the driver's run methods,
                # which is where the serial engines reset it) must not make
                # every later _drain_lane return without progress -- that
                # would livelock the driver's epoch loop.
                self._stop_requested = False
                try:
                    self._drain_lane(lane, epoch_end, cap, None)
                except SimulationLimitExceeded as exc:
                    # Ship the fields captured at raise time (the lane's
                    # clock); recomputing here would read the worker's stale
                    # idle clock, since _drain_lane already reset _current.
                    conn.send(
                        ("limit", str(exc), exc.events_processed, exc.current_time)
                    )
                    continue
                outboxes = self._outboxes
                if encode is not None:
                    outboxes = [
                        encode(entries) if entries else entries
                        for entries in outboxes
                    ]
                conn.send(
                    (
                        "ok",
                        (
                            outboxes,
                            lane.queue.peek_time(),
                            lane.events_processed,
                            self._stop_requested,
                        ),
                    )
                )
            elif kind == BROADCAST_ACTIONS:
                self.action_handler(message[1])
            elif kind == EXPORT_STATE:
                cap = message[1]  # None = run drained: flush every timer
                if lane.timers and message[2]:
                    self._fire_lane_timers(lane, cap)
                blob = None if self.export_state is None else self.export_state(index)
                if self.before_fork is not None:
                    self.before_fork()  # re-baseline the per-run export deltas
                conn.send(
                    (
                        "ok",
                        {
                            "events": lane.events_processed,
                            "last_event_time": lane.last_event_time,
                            "cursor": lane.cursor,
                            "peek": lane.queue.peek_time(),
                            "pending": len(lane.queue),
                            "protocol": blob,
                        },
                    )
                )
            elif kind == SHUTDOWN:
                return
            else:
                raise ValueError("unknown worker command %r" % (kind,))

    def __repr__(self):
        return "ShardedSimulator(shards=%d, lookahead=%.3g, pending=%d, processed=%d%s)" % (
            self.num_shards,
            self.lookahead,
            self.pending_events,
            self._events_total,
            ", parallel (workers %s)" % ("live" if self._pool else "cold")
            if self.parallel
            else "",
        )
