"""A deterministic priority queue of timed events.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a strictly
increasing insertion counter.  Ties in time are therefore broken by insertion
order, which keeps simulation runs fully deterministic for a given workload and
random seed -- a requirement for the regression tests that compare distributed
B-Neck against the centralized oracle.
"""

import heapq
import itertools


class Event(object):
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        sequence: insertion counter used for deterministic tie-breaking.
        callback: zero-argument callable executed when the event fires.
        cancelled: set by :meth:`cancel`; cancelled events are skipped.
        tag: optional label used by traces and tests.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "tag")

    def __init__(self, time, sequence, callback, tag=None):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.tag = tag

    def cancel(self):
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(time=%r, seq=%d, tag=%r, %s)" % (
            self.time,
            self.sequence,
            self.tag,
            state,
        )


class EventQueue(object):
    """Min-heap of :class:`Event` objects ordered by (time, insertion order)."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time, callback, tag=None):
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if time < 0:
            raise ValueError("event time must be non-negative, got %r" % time)
        event = Event(time, next(self._counter), callback, tag=tag)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self):
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self):
        """Return the time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event):
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self):
        """Drop every pending event."""
        self._heap = []
        self._live = 0

    def __len__(self):
        return self._live

    def __bool__(self):
        return self._live > 0

    def __repr__(self):
        return "EventQueue(pending=%d)" % self._live
