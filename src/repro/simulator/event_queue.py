"""A deterministic priority queue of timed events.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a strictly
increasing insertion counter.  Ties in time are therefore broken by insertion
order, which keeps simulation runs fully deterministic for a given workload and
random seed -- a requirement for the regression tests that compare distributed
B-Neck against the centralized oracle.

Heap micro-layout
-----------------

The heap stores flat ``(time, sequence, callback, tag, event)`` tuples: tuple
comparisons run entirely in C, so sift-up and sift-down never call back into
Python on the hot path.  Two entry flavours share that layout:

* **Cancellable entries** (:meth:`EventQueue.push`) additionally allocate an
  :class:`Event` handle (the fifth tuple slot) that callers use with
  :meth:`EventQueue.cancel`.
* **Bare entries** (:meth:`EventQueue.push_callback`) carry ``None`` in the
  event slot and allocate nothing beyond the tuple.  The vast majority of
  simulation events are packet deliveries that are never cancelled; storing
  them bare skips one object allocation (and its GC tracking) per packet.

The simulation loop consumes raw tuples through :meth:`EventQueue.pop_entry`;
:meth:`EventQueue.pop` keeps the historical Event-returning interface for
callers that want a handle (synthesizing an already-consumed :class:`Event`
for bare entries).
"""

import heapq
import itertools

# Indices into the (time, sequence, callback, tag, event) heap entries.
ENTRY_TIME = 0
ENTRY_SEQUENCE = 1
ENTRY_CALLBACK = 2
ENTRY_TAG = 3
ENTRY_EVENT = 4


class Event(object):
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        sequence: insertion counter used for deterministic tie-breaking.
        callback: zero-argument callable executed when the event fires.
        cancelled: set by :meth:`cancel`; cancelled events are skipped.
        consumed: set by :meth:`EventQueue.pop` once the event has fired;
            consumed events can no longer be cancelled.
        tag: optional label used by traces and tests.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "consumed", "tag")

    def __init__(self, time, sequence, callback, tag=None):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.consumed = False
        self.tag = tag

    def cancel(self):
        """Mark the event as cancelled; it will be skipped when popped.

        Prefer :meth:`EventQueue.cancel`, which also keeps the queue's
        live-event count in sync; this raw marker does not.
        """
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self):
        if self.cancelled:
            state = "cancelled"
        elif self.consumed:
            state = "consumed"
        else:
            state = "pending"
        return "Event(time=%r, seq=%d, tag=%r, %s)" % (
            self.time,
            self.sequence,
            self.tag,
            state,
        )


class EventQueue(object):
    """Min-heap of timed callbacks ordered by (time, insertion order)."""

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time, callback, tag=None):
        """Schedule ``callback`` at absolute ``time`` and return an :class:`Event`.

        The returned event is the cancellation handle; use
        :meth:`push_callback` instead when the caller will never cancel.
        """
        if time < 0:
            raise ValueError("event time must be non-negative, got %r" % time)
        sequence = next(self._counter)
        event = Event(time, sequence, callback, tag=tag)
        heapq.heappush(self._heap, (time, sequence, callback, tag, event))
        self._live += 1
        return event

    def push_callback(self, time, callback, tag=None):
        """Schedule a *non-cancellable* bare callback at absolute ``time``.

        No :class:`Event` handle is allocated or returned: the entry cannot be
        cancelled, which is exactly right for the packet-delivery majority of
        simulation events.  Ordering is identical to :meth:`push` (the same
        sequence counter is shared), so mixing bare and cancellable entries
        preserves full (time, sequence) determinism.
        """
        if time < 0:
            raise ValueError("event time must be non-negative, got %r" % time)
        heapq.heappush(self._heap, (time, next(self._counter), callback, tag, None))
        self._live += 1

    def pop_entry(self):
        """Remove and return the earliest live heap entry as a raw tuple.

        The returned tuple is ``(time, sequence, callback, tag, event)`` where
        ``event`` is ``None`` for bare entries.  Cancellable entries are marked
        *consumed*: a later :meth:`cancel` on their handle is a no-op and does
        not disturb the live-event count.  Returns ``None`` when the queue
        holds no live events.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[4]
            if event is not None:
                if event.cancelled:
                    continue
                event.consumed = True
            self._live -= 1
            return entry
        return None

    def pop(self):
        """Remove and return the earliest live event as an :class:`Event`.

        Compatibility wrapper around :meth:`pop_entry`: bare entries are
        wrapped in a freshly synthesized, already-consumed :class:`Event` so
        callers can keep reading ``.time`` / ``.tag`` / ``.callback``.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        event = entry[4]
        if event is None:
            event = Event(entry[0], entry[1], entry[2], tag=entry[3])
            event.consumed = True
        return event

    def peek_time(self):
        """Return the time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heap[0][4]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    def cancel(self, event):
        """Cancel a previously scheduled event.

        Cancelling an event that already fired (was popped) or was already
        cancelled is a no-op, so the live-event count stays consistent no
        matter how often or how late ``cancel`` is called.
        """
        if event.cancelled or event.consumed:
            return
        event.cancelled = True
        self._live -= 1

    def clear(self):
        """Drop every pending event.

        Dropped cancellable events are marked cancelled so a stale handle
        passed to :meth:`cancel` afterwards stays a no-op instead of
        corrupting the live-event count.  Bare entries have no handle and are
        simply discarded.
        """
        for entry in self._heap:
            event = entry[4]
            if event is not None:
                event.cancelled = True
        self._heap = []
        self._live = 0

    def __len__(self):
        return self._live

    def __bool__(self):
        return self._live > 0

    def __repr__(self):
        return "EventQueue(pending=%d)" % self._live
