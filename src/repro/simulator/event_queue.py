"""A deterministic priority queue of timed events.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a strictly
increasing insertion counter.  Ties in time are therefore broken by insertion
order, which keeps simulation runs fully deterministic for a given workload and
random seed -- a requirement for the regression tests that compare distributed
B-Neck against the centralized oracle.

The heap itself stores ``(time, sequence, event)`` tuples rather than the
:class:`Event` objects: tuple comparisons run entirely in C, so sift-up and
sift-down never call back into Python on the hot path.  The :class:`Event`
object is still what callers receive from :meth:`EventQueue.push` and
:meth:`EventQueue.pop`, and is the handle used for cancellation.
"""

import heapq
import itertools


class Event(object):
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        sequence: insertion counter used for deterministic tie-breaking.
        callback: zero-argument callable executed when the event fires.
        cancelled: set by :meth:`cancel`; cancelled events are skipped.
        consumed: set by :meth:`EventQueue.pop` once the event has fired;
            consumed events can no longer be cancelled.
        tag: optional label used by traces and tests.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "consumed", "tag")

    def __init__(self, time, sequence, callback, tag=None):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.consumed = False
        self.tag = tag

    def cancel(self):
        """Mark the event as cancelled; it will be skipped when popped.

        Prefer :meth:`EventQueue.cancel`, which also keeps the queue's
        live-event count in sync; this raw marker does not.
        """
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self):
        if self.cancelled:
            state = "cancelled"
        elif self.consumed:
            state = "consumed"
        else:
            state = "pending"
        return "Event(time=%r, seq=%d, tag=%r, %s)" % (
            self.time,
            self.sequence,
            self.tag,
            state,
        )


class EventQueue(object):
    """Min-heap of :class:`Event` objects ordered by (time, insertion order)."""

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time, callback, tag=None):
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if time < 0:
            raise ValueError("event time must be non-negative, got %r" % time)
        sequence = next(self._counter)
        event = Event(time, sequence, callback, tag=tag)
        heapq.heappush(self._heap, (time, sequence, event))
        self._live += 1
        return event

    def pop(self):
        """Remove and return the earliest non-cancelled event.

        The returned event is marked *consumed*: a later :meth:`cancel` on it
        is a no-op and does not disturb the live-event count.  Returns ``None``
        when the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                continue
            event.consumed = True
            self._live -= 1
            return event
        return None

    def peek_time(self):
        """Return the time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event):
        """Cancel a previously scheduled event.

        Cancelling an event that already fired (was popped) or was already
        cancelled is a no-op, so the live-event count stays consistent no
        matter how often or how late ``cancel`` is called.
        """
        if event.cancelled or event.consumed:
            return
        event.cancelled = True
        self._live -= 1

    def clear(self):
        """Drop every pending event.

        Dropped events are marked cancelled so a stale handle passed to
        :meth:`cancel` afterwards stays a no-op instead of corrupting the
        live-event count.
        """
        for entry in self._heap:
            entry[2].cancelled = True
        self._heap = []
        self._live = 0

    def __len__(self):
        return self._live

    def __bool__(self):
        return self._live > 0

    def __repr__(self):
        return "EventQueue(pending=%d)" % self._live
