"""Control-packet accounting and event tracing.

The paper's evaluation reports, for every experiment, the number of control
packets transmitted -- in total (Figure 5, right), per packet type and 5 ms
interval (Figure 6), and per interval for B-Neck vs. BFYZ (Figure 8).  Every
packet transmission across a link is accounted for ("a Probe cycle of session s
generates a number of packets that is twice the length of s's path").

:class:`PacketTracer` is the single collection point for that accounting: the
protocol orchestrators call :meth:`PacketTracer.record` every time a packet is
put on a link.
"""

import collections


class TraceEvent(object):
    """A generic trace record: something happened at a time."""

    __slots__ = ("time", "kind", "detail")

    def __init__(self, time, kind, detail=None):
        self.time = time
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "TraceEvent(%r, %r, %r)" % (self.time, self.kind, self.detail)


class Tracer(object):
    """Optional simulator hook that records every processed event's tag."""

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.events = []

    def on_event(self, time, tag):
        if self.enabled:
            self.events.append(TraceEvent(time, tag))

    def count_by_kind(self):
        """Return ``{tag: count}`` over all recorded events."""
        counts = collections.Counter(event.kind for event in self.events)
        return dict(counts)

    def clear(self):
        self.events = []


class PacketRecord(object):
    """One packet transmission across one link."""

    __slots__ = ("time", "packet_type", "session_id", "link", "direction")

    def __init__(self, time, packet_type, session_id, link=None, direction=None):
        self.time = time
        self.packet_type = packet_type
        self.session_id = session_id
        self.link = link
        self.direction = direction

    def __repr__(self):
        return "PacketRecord(t=%r, type=%r, session=%r, link=%r, dir=%r)" % (
            self.time,
            self.packet_type,
            self.session_id,
            self.link,
            self.direction,
        )


class NullPacketTracer(object):
    """A tracer that records nothing, as cheaply as possible.

    Protocol hot paths test the ``enabled`` attribute and skip the ``record``
    call entirely, so an untraced simulation pays zero accounting cost per
    packet.  The counting attributes exist (frozen at zero) so code that
    reads ``tracer.total`` after a run keeps working.
    """

    enabled = False

    def __init__(self):
        self.records = []
        self.total = 0
        self.by_type = collections.Counter()
        self.by_session = collections.Counter()
        self.last_packet_time = 0.0

    def record(self, time, packet_type, session_id, link=None, direction=None):
        """Accepted and discarded (callers normally skip the call entirely)."""

    def clear(self):
        pass

    def __repr__(self):
        return "NullPacketTracer()"


class PacketTracer(object):
    """Accounts every control packet put on a link.

    Two collection modes are supported:

    * *counting only* (``keep_records=False``, the default): per-type totals
      and per-interval histograms, cheap enough for large sweeps;
    * *full records* (``keep_records=True``): every :class:`PacketRecord` is
      kept, which the tests use to assert fine-grained properties.

    The ``enabled`` attribute is what the protocol hot path checks before
    calling :meth:`record`; it is always true for this class (use
    :class:`NullPacketTracer` to turn packet accounting off).
    """

    enabled = True

    def __init__(self, keep_records=False, interval=None):
        self.keep_records = keep_records
        self.interval = interval
        self.records = []
        self.total = 0
        self.by_type = collections.Counter()
        self.by_session = collections.Counter()
        self._interval_counts = collections.defaultdict(collections.Counter)
        self.last_packet_time = 0.0

    def record(self, time, packet_type, session_id, link=None, direction=None):
        """Record a packet transmission at ``time`` across ``link``."""
        self.total += 1
        self.by_type[packet_type] += 1
        self.by_session[session_id] += 1
        self.last_packet_time = max(self.last_packet_time, time)
        if self.interval is not None:
            bucket = int(time / self.interval)
            self._interval_counts[bucket][packet_type] += 1
        if self.keep_records:
            self.records.append(
                PacketRecord(time, packet_type, session_id, link=link, direction=direction)
            )

    # ------------------------------------------------------------ aggregates

    def packets_per_session(self):
        """Average number of packets per session (0.0 when no sessions)."""
        if not self.by_session:
            return 0.0
        return self.total / float(len(self.by_session))

    def interval_series(self, packet_types=None):
        """Return ``[(interval_start_time, {type: count})]`` sorted by time.

        Args:
            packet_types: optional iterable restricting the reported types.
        """
        if self.interval is None:
            raise ValueError("PacketTracer was created without an interval")
        series = []
        if not self._interval_counts:
            return series
        last_bucket = max(self._interval_counts)
        for bucket in range(0, last_bucket + 1):
            counts = self._interval_counts.get(bucket, collections.Counter())
            if packet_types is not None:
                counts = collections.Counter(
                    {ptype: counts.get(ptype, 0) for ptype in packet_types}
                )
            series.append((bucket * self.interval, dict(counts)))
        return series

    def totals_per_interval(self):
        """Return ``[(interval_start_time, total_packets)]`` sorted by time."""
        return [
            (start, sum(counts.values())) for start, counts in self.interval_series()
        ]

    def clear(self):
        self.records = []
        self.total = 0
        self.by_type = collections.Counter()
        self.by_session = collections.Counter()
        self._interval_counts = collections.defaultdict(collections.Counter)
        self.last_packet_time = 0.0

    def __repr__(self):
        return "PacketTracer(total=%d, types=%d)" % (self.total, len(self.by_type))
