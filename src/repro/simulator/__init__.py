"""Discrete-event simulation substrate.

This package replaces the Peersim (Java) simulator used in the paper with a
small, deterministic, pure-Python discrete-event engine.  It provides:

* :class:`~repro.simulator.event_queue.EventQueue` -- a priority queue of timed
  events with deterministic tie-breaking.
* :class:`~repro.simulator.simulation.Simulator` -- the simulation loop, with
  support for running until the event queue drains (*quiescence*), until a time
  horizon, or until a predicate holds.
* :class:`~repro.simulator.process.Process` -- base class for simulated actors
  (protocol tasks) whose handlers execute atomically.
* :class:`~repro.simulator.tracing.PacketTracer` -- control-packet accounting
  (per type, per time interval) used by the experiment harnesses.
* :mod:`~repro.simulator.statistics` -- summary statistics and time series
  helpers used for the figures.
* :mod:`~repro.simulator.clock` -- time-unit helpers (the simulator clock is a
  float number of seconds).
"""

from repro.simulator.clock import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_time,
    microseconds,
    milliseconds,
    seconds,
)
from repro.simulator.errors import (
    SimulationError,
    SimulationLimitExceeded,
    SimulationNotRunning,
)
from repro.simulator.event_queue import Event, EventQueue
from repro.simulator.process import Process
from repro.simulator.random_source import RandomSource
from repro.simulator.sharding import ShardedSimulator, ShardLane, parse_engine
from repro.simulator.simulation import Simulator
from repro.simulator.statistics import (
    Histogram,
    SummaryStatistics,
    TimeSeries,
    percentile,
    summarize,
)
from repro.simulator.tracing import (
    NullPacketTracer,
    PacketRecord,
    PacketTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Event",
    "EventQueue",
    "Histogram",
    "MICROSECOND",
    "MILLISECOND",
    "NullPacketTracer",
    "PacketRecord",
    "PacketTracer",
    "Process",
    "RandomSource",
    "SECOND",
    "ShardLane",
    "ShardedSimulator",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationNotRunning",
    "Simulator",
    "SummaryStatistics",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "format_time",
    "microseconds",
    "milliseconds",
    "parse_engine",
    "percentile",
    "seconds",
    "summarize",
]
