"""The simulation loop.

A :class:`Simulator` owns the event queue and the clock.  Protocol tasks
schedule work through :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time); each scheduled callback executes
atomically at its firing time, matching the paper's model of ``when`` blocks
that are "executed atomically, and activated asynchronously when an event is
triggered".  :meth:`Simulator.schedule_callback` is the fast path for the
non-cancellable majority (packet deliveries): it stores a bare callback in the
heap with no :class:`~repro.simulator.event_queue.Event` handle allocation.

Because B-Neck is *quiescent*, a steady-state simulation terminates on its own:
once the max-min fair rates are computed, no task schedules further events and
the queue drains.  :meth:`Simulator.run` therefore runs until the queue is
empty by default, and the time of the last processed event is the
time-to-quiescence reported by the experiments.

End-of-instant batching
-----------------------

All events sharing one timestamp form an *instant*.  Work registered through
:meth:`Simulator.call_at_instant_end` during an instant is deferred until every
event of that instant (including events scheduled *for* the instant while it
runs) has been processed, and executes before the clock advances to the next
event time.  Deferred callbacks run in registration order, so the mechanism
preserves the (time, sequence) determinism contract; they may schedule new
events (same-instant or later) and re-register themselves, in which case the
flush repeats until the instant is truly exhausted.  The B-Neck protocol layer
uses this to coalesce ``API.Rate`` notifications: however many rate updates a
session receives within one instant, its application sees a single batched
callback carrying the final value (see
:meth:`repro.core.protocol.BNeckProtocol.notify_rate`).

A run that returns mid-instant (via :meth:`Simulator.stop` or a
``stop_condition``) leaves the instant incomplete: its deferred callbacks stay
queued and run when a later ``run`` call finishes the instant.  Runs that end
because the queue drained or a time horizon was crossed always flush first.

Bookkeeping timers
------------------

:meth:`Simulator.schedule_bookkeeping` registers an out-of-band timer that is
*not* a simulation event: it fires ``callback(due)`` between events -- always
before any event with ``time >= due`` executes, and at the latest when a run
ends -- without ever touching the event queue.  Timers therefore never show in
``events_processed``, never hold up quiescence detection, never stretch a
reported quiescence time, and never count against ``max_events`` /
``max_time``.  Their callbacks receive the due time explicitly (the clock is
not advanced for them) and must not schedule simulation events.  The protocol
uses them for windowed ``API.Rate`` flushes, whose old event-based
implementation could stretch a reported phase by up to one window.
"""

import heapq
import itertools

from repro.simulator.errors import SimulationLimitExceeded
from repro.simulator.event_queue import EventQueue


class Simulator(object):
    """Discrete-event simulation loop with quiescence detection.

    Args:
        max_events: optional safety cap on processed events; exceeded caps
            raise :class:`SimulationLimitExceeded`.
        max_time: optional safety cap on the simulation clock.
        tracer: optional object with an ``on_event(time, tag)`` hook invoked
            for every processed event.
    """

    def __init__(self, max_events=None, max_time=None, tracer=None):
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._instant_callbacks = []
        self._timers = []
        self._timer_counter = itertools.count()
        self.max_events = max_events
        self.max_time = max_time
        self.tracer = tracer
        self._stop_requested = False

    # ------------------------------------------------------------------ clock

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self):
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self):
        """Number of live events still waiting in the queue."""
        return len(self._queue)

    @property
    def pending_instant_callbacks(self):
        """Number of end-of-instant callbacks not yet flushed.

        Non-zero only while a run is mid-instant (or after a run was stopped
        mid-instant); quiescent simulators always report 0.
        """
        return len(self._instant_callbacks)

    @property
    def pending_bookkeeping(self):
        """Bookkeeping timers not yet fired (they never block quiescence)."""
        return len(self._timers)

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay, callback, tag=None):
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        return self._queue.push(self._now + delay, callback, tag=tag)

    def schedule_at(self, time, callback, tag=None):
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                "cannot schedule in the past (now=%r, requested=%r)" % (self._now, time)
            )
        return self._queue.push(time, callback, tag=tag)

    def schedule_callback(self, delay, callback, tag=None):
        """Schedule a *non-cancellable* callback ``delay`` seconds from now.

        The fast path for the packet-delivery majority: the queue stores the
        bare callback with no :class:`~repro.simulator.event_queue.Event`
        handle, so nothing is returned and the entry cannot be cancelled.
        Ordering is identical to :meth:`schedule`.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        self._queue.push_callback(self._now + delay, callback, tag=tag)

    def call_at_instant_end(self, callback):
        """Defer ``callback`` to the end of the current instant.

        The callback runs after every event carrying the current timestamp has
        been processed and before the clock advances (or the run returns, when
        the queue drains or a horizon is crossed).  Callbacks run in
        registration order and may register further deferred callbacks or
        schedule new events.  See the module docstring for the full contract.
        """
        self._instant_callbacks.append(callback)

    def schedule_bookkeeping(self, delay, callback):
        """Schedule an out-of-band *bookkeeping timer* (see module docstring).

        ``callback(due)`` fires between events -- before any event with
        ``time >= due`` executes, and at the latest when the current (or
        next) run ends -- without occupying an event-queue slot: it is
        invisible to ``events_processed``, quiescence times and safety caps.
        The callback must not schedule simulation events.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        heapq.heappush(
            self._timers, (self._now + delay, next(self._timer_counter), callback)
        )

    def _fire_timers(self, cap):
        """Fire bookkeeping timers with ``due <= cap`` (``None`` fires all)."""
        timers = self._timers
        while timers and (cap is None or timers[0][0] <= cap):
            due, _sequence, callback = heapq.heappop(timers)
            callback(due)

    def cancel(self, event):
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    def stop(self):
        """Request that the current :meth:`run` call returns before the next event."""
        self._stop_requested = True

    # ---------------------------------------------------------------- running

    def _flush_instant(self):
        """Run one batch of end-of-instant callbacks (registration order)."""
        callbacks = self._instant_callbacks
        self._instant_callbacks = []
        for callback in callbacks:
            callback()

    def _instant_finished(self):
        """True when no live event shares the current timestamp."""
        next_time = self._queue.peek_time()
        return next_time is None or next_time > self._now

    def step(self):
        """Execute the next pending unit of work.

        Runs either one batch of end-of-instant callbacks (when the current
        instant is exhausted) or the next event.  Returns ``False`` only when
        neither remains.
        """
        if self._instant_callbacks and self._instant_finished():
            self._flush_instant()
            return True
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        self._now = entry[0]
        self._events_processed += 1
        if self.tracer is not None:
            self.tracer.on_event(self._now, entry[3])
        entry[2]()
        return True

    def _unconstrained(self):
        """True when no per-event bookkeeping (limits, tracing) is needed."""
        return self.max_events is None and self.max_time is None and self.tracer is None

    def run(self, until=None, stop_condition=None):
        """Run the simulation.

        Args:
            until: optional absolute time horizon.  Events scheduled after the
                horizon stay in the queue; the clock is advanced to ``until``
                when the horizon is hit with work still pending.
            stop_condition: optional zero-argument predicate evaluated after
                every event; the run stops once it returns ``True``.

        Returns:
            The simulation time at which the run stopped.
        """
        self._running = True
        self._stop_requested = False
        try:
            if until is None and stop_condition is None and self._unconstrained():
                self._drain_fast()
            else:
                self._run_general(until, stop_condition)
        finally:
            self._running = False
        if until is not None and not self._queue and self._now < until:
            # The queue drained before the horizon: advance the clock so
            # repeated run(until=...) calls observe monotonic time.
            self._now = until
        if self._timers and not self._stop_requested:
            # Runs that ended by draining (or crossing a horizon) fire their
            # matured bookkeeping timers; runs ended early by stop() or a
            # stop_condition leave them pending, like unfinished instants.
            next_time = self._queue.peek_time()
            if next_time is None or (until is not None and next_time > until):
                self._fire_timers(until)
        return self._now

    def _run_general(self, until, stop_condition):
        """The fully-featured run loop: horizon, limits, tracer, predicate."""
        while True:
            if self._stop_requested:
                break
            if self._instant_callbacks and self._instant_finished():
                # The current instant is exhausted: flush its deferred work
                # before the clock may advance (or the run return).  The
                # predicate is re-evaluated right after -- flushed callbacks
                # (batched API.Rate deliveries) are exactly what stop
                # conditions tend to watch.
                self._flush_instant()
                if stop_condition is not None and stop_condition():
                    # Record the early termination (as ShardedSimulator does)
                    # so the end-of-run timer flush knows this run was paused,
                    # not drained.
                    self._stop_requested = True
                    break
                continue
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            if self._timers and self._timers[0][0] <= next_time:
                self._fire_timers(next_time)
            self._check_limits(next_time)
            self.step()
            if stop_condition is not None and stop_condition():
                self._stop_requested = True
                break

    def _drain_fast(self, check_stop=True):
        """Drain the queue with no limit checks and no tracer hook.

        Processes exactly the same events in exactly the same order as the
        general loop; it only skips the per-event bookkeeping that is a no-op
        when ``max_events``/``max_time``/``tracer`` are unset.

        Args:
            check_stop: honour :meth:`stop` between events (:meth:`run`
                semantics).  :meth:`run_until_quiescent` passes ``False``
                because it never observed the stop flag, and a stale flag
                from an earlier stopped ``run`` must not end it early.
        """
        pop = self._queue.pop_entry
        while not (check_stop and self._stop_requested):
            if self._instant_callbacks and self._instant_finished():
                self._flush_instant()
                continue
            entry = pop()
            if entry is None:
                break
            if self._timers and self._timers[0][0] <= entry[0]:
                self._fire_timers(entry[0])
            self._now = entry[0]
            self._events_processed += 1
            entry[2]()

    def run_until_quiescent(self):
        """Run until the event queue drains and return the quiescence time.

        The returned value is the timestamp of the last processed event, i.e.
        the instant at which the network stopped carrying control traffic.
        End-of-instant callbacks do not delay the reported time: they execute
        at the timestamp of the instant they belong to.
        """
        if self._unconstrained():
            self._drain_fast(check_stop=False)
            if self._timers:
                self._fire_timers(None)
            # After a drain the clock sits on the last processed event (or is
            # untouched when the queue was already empty).
            return self._now
        last_event_time = self._now
        while True:
            if self._instant_callbacks and self._instant_finished():
                self._flush_instant()
                continue
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if self._timers and self._timers[0][0] <= next_time:
                self._fire_timers(next_time)
            self._check_limits(next_time)
            self.step()
            last_event_time = self._now
        if self._timers:
            self._fire_timers(None)
        return last_event_time

    def _check_limits(self, next_time):
        if self.max_events is not None and self._events_processed >= self.max_events:
            raise SimulationLimitExceeded(
                "event limit of %d exceeded at t=%r (possible livelock)"
                % (self.max_events, self._now),
                events_processed=self._events_processed,
                current_time=self._now,
            )
        if self.max_time is not None and next_time > self.max_time:
            raise SimulationLimitExceeded(
                "time limit of %r exceeded (next event at %r)" % (self.max_time, next_time),
                events_processed=self._events_processed,
                current_time=self._now,
            )

    def __repr__(self):
        return "Simulator(now=%r, pending=%d, processed=%d)" % (
            self._now,
            len(self._queue),
            self._events_processed,
        )
