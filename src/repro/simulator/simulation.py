"""The simulation loop.

A :class:`Simulator` owns the event queue and the clock.  Protocol tasks
schedule work through :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time); each scheduled callback executes
atomically at its firing time, matching the paper's model of ``when`` blocks
that are "executed atomically, and activated asynchronously when an event is
triggered".

Because B-Neck is *quiescent*, a steady-state simulation terminates on its own:
once the max-min fair rates are computed, no task schedules further events and
the queue drains.  :meth:`Simulator.run` therefore runs until the queue is
empty by default, and the time of the last processed event is the
time-to-quiescence reported by the experiments.
"""

from repro.simulator.errors import SimulationLimitExceeded
from repro.simulator.event_queue import EventQueue


class Simulator(object):
    """Discrete-event simulation loop with quiescence detection.

    Args:
        max_events: optional safety cap on processed events; exceeded caps
            raise :class:`SimulationLimitExceeded`.
        max_time: optional safety cap on the simulation clock.
        tracer: optional object with an ``on_event(time, tag)`` hook invoked
            for every processed event.
    """

    def __init__(self, max_events=None, max_time=None, tracer=None):
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self.max_events = max_events
        self.max_time = max_time
        self.tracer = tracer
        self._stop_requested = False

    # ------------------------------------------------------------------ clock

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self):
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self):
        """Number of live events still waiting in the queue."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay, callback, tag=None):
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        return self._queue.push(self._now + delay, callback, tag=tag)

    def schedule_at(self, time, callback, tag=None):
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                "cannot schedule in the past (now=%r, requested=%r)" % (self._now, time)
            )
        return self._queue.push(time, callback, tag=tag)

    def cancel(self, event):
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    def stop(self):
        """Request that the current :meth:`run` call returns before the next event."""
        self._stop_requested = True

    # ---------------------------------------------------------------- running

    def step(self):
        """Execute the next pending event.  Returns ``False`` if none remain."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        if self.tracer is not None:
            self.tracer.on_event(self._now, event.tag)
        event.callback()
        return True

    def _unconstrained(self):
        """True when no per-event bookkeeping (limits, tracing) is needed."""
        return self.max_events is None and self.max_time is None and self.tracer is None

    def run(self, until=None, stop_condition=None):
        """Run the simulation.

        Args:
            until: optional absolute time horizon.  Events scheduled after the
                horizon stay in the queue; the clock is advanced to ``until``
                when the horizon is hit with work still pending.
            stop_condition: optional zero-argument predicate evaluated after
                every event; the run stops once it returns ``True``.

        Returns:
            The simulation time at which the run stopped.
        """
        self._running = True
        self._stop_requested = False
        try:
            if until is None and stop_condition is None and self._unconstrained():
                self._drain_fast()
            else:
                self._run_general(until, stop_condition)
        finally:
            self._running = False
        if until is not None and not self._queue and self._now < until:
            # The queue drained before the horizon: advance the clock so
            # repeated run(until=...) calls observe monotonic time.
            self._now = until
        return self._now

    def _run_general(self, until, stop_condition):
        """The fully-featured run loop: horizon, limits, tracer, predicate."""
        while True:
            if self._stop_requested:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self._check_limits(next_time)
            self.step()
            if stop_condition is not None and stop_condition():
                break

    def _drain_fast(self, check_stop=True):
        """Drain the queue with no limit checks and no tracer hook.

        Processes exactly the same events in exactly the same order as the
        general loop; it only skips the per-event bookkeeping that is a no-op
        when ``max_events``/``max_time``/``tracer`` are unset.

        Args:
            check_stop: honour :meth:`stop` between events (:meth:`run`
                semantics).  :meth:`run_until_quiescent` passes ``False``
                because it never observed the stop flag, and a stale flag
                from an earlier stopped ``run`` must not end it early.
        """
        pop = self._queue.pop
        while not (check_stop and self._stop_requested):
            event = pop()
            if event is None:
                break
            self._now = event.time
            self._events_processed += 1
            event.callback()

    def run_until_quiescent(self):
        """Run until the event queue drains and return the quiescence time.

        The returned value is the timestamp of the last processed event, i.e.
        the instant at which the network stopped carrying control traffic.
        """
        if self._unconstrained():
            self._drain_fast(check_stop=False)
            # After a drain the clock sits on the last processed event (or is
            # untouched when the queue was already empty).
            return self._now
        last_event_time = self._now
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            self._check_limits(next_time)
            self.step()
            last_event_time = self._now
        return last_event_time

    def _check_limits(self, next_time):
        if self.max_events is not None and self._events_processed >= self.max_events:
            raise SimulationLimitExceeded(
                "event limit of %d exceeded at t=%r (possible livelock)"
                % (self.max_events, self._now),
                events_processed=self._events_processed,
                current_time=self._now,
            )
        if self.max_time is not None and next_time > self.max_time:
            raise SimulationLimitExceeded(
                "time limit of %r exceeded (next event at %r)" % (self.max_time, next_time),
                events_processed=self._events_processed,
                current_time=self._now,
            )

    def __repr__(self):
        return "Simulator(now=%r, pending=%d, processed=%d)" % (
            self._now,
            len(self._queue),
            self._events_processed,
        )
