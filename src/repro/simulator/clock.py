"""Time-unit helpers.

The simulator clock is a plain ``float`` measured in **seconds**.  The paper
reports its results in microseconds and milliseconds, so these helpers make the
experiment code read like the paper ("sessions join during the first
millisecond", "propagation delay of 1 microsecond", ...).
"""

SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6


def seconds(value):
    """Return ``value`` seconds expressed in simulator time units."""
    return float(value) * SECOND


def milliseconds(value):
    """Return ``value`` milliseconds expressed in simulator time units."""
    return float(value) * MILLISECOND


def microseconds(value):
    """Return ``value`` microseconds expressed in simulator time units."""
    return float(value) * MICROSECOND


def to_milliseconds(time_value):
    """Convert a simulator time (seconds) to milliseconds."""
    return float(time_value) / MILLISECOND


def to_microseconds(time_value):
    """Convert a simulator time (seconds) to microseconds."""
    return float(time_value) / MICROSECOND


def format_time(time_value):
    """Format a simulator time with a human-friendly unit.

    >>> format_time(0.0025)
    '2.500 ms'
    >>> format_time(3e-6)
    '3.000 us'
    """
    if time_value >= SECOND:
        return "%.3f s" % time_value
    if time_value >= MILLISECOND:
        return "%.3f ms" % (time_value / MILLISECOND)
    return "%.3f us" % (time_value / MICROSECOND)
