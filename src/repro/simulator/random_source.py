"""Seeded randomness for reproducible workloads and topologies.

All stochastic choices in the library (topology generation, session endpoints,
arrival times, WAN propagation delays) flow through a :class:`RandomSource`, so
a single integer seed makes an entire experiment reproducible.
"""

import hashlib
import random


class RandomSource(object):
    """A thin wrapper around :class:`random.Random` with domain helpers."""

    def __init__(self, seed=0):
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label):
        """Derive an independent stream, deterministically, from a label.

        Forked streams let different subsystems (topology vs. workload) draw
        random numbers without perturbing each other's sequences.  The child
        seed is derived with a *stable* hash: Python's built-in ``hash`` of a
        string is randomized per process (PYTHONHASHSEED), which used to make
        every "seeded" topology and workload differ from one interpreter run
        to the next.
        """
        digest = hashlib.sha256(
            ("%r|%r" % (self.seed, label)).encode("utf-8")
        ).digest()
        derived_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFF
        return RandomSource(derived_seed)

    def uniform(self, low, high):
        """Uniform float in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def randint(self, low, high):
        """Uniform integer in ``[low, high]`` (inclusive)."""
        return self._rng.randint(low, high)

    def choice(self, sequence):
        """Uniformly chosen element of a non-empty sequence."""
        return self._rng.choice(sequence)

    def sample(self, population, count):
        """``count`` distinct elements drawn without replacement."""
        return self._rng.sample(population, count)

    def shuffle(self, items):
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def random(self):
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def expovariate(self, rate):
        """Exponentially distributed value with the given rate."""
        return self._rng.expovariate(rate)

    def paretovariate(self, alpha):
        """Pareto-distributed value (heavy-tailed, minimum 1) with shape ``alpha``."""
        return self._rng.paretovariate(alpha)

    def pair(self, population):
        """Two distinct elements of ``population`` chosen uniformly."""
        first, second = self._rng.sample(population, 2)
        return first, second

    def __repr__(self):
        return "RandomSource(seed=%d)" % self.seed
