"""Summary statistics and time-series helpers for the experiment figures.

Figure 7 of the paper reports, at fixed sampling instants, the 10th percentile,
median, 90th percentile and mean of the relative rate error across sessions.
These helpers compute exactly those aggregates without pulling in plotting
dependencies.
"""

import math


def percentile(values, fraction):
    """Return the ``fraction``-quantile of ``values`` by linear interpolation.

    ``fraction`` is in ``[0, 1]``; an empty input raises ``ValueError``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1], got %r" % fraction)
    data = sorted(values)
    if not data:
        raise ValueError("cannot take the percentile of an empty sequence")
    if len(data) == 1:
        return data[0]
    position = fraction * (len(data) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return data[lower]
    weight = position - lower
    return data[lower] * (1.0 - weight) + data[upper] * weight


def mean(values):
    """Arithmetic mean; raises ``ValueError`` on empty input."""
    data = list(values)
    if not data:
        raise ValueError("cannot take the mean of an empty sequence")
    return sum(data) / float(len(data))


class SummaryStatistics(object):
    """The aggregate the paper plots: 10th/50th/90th percentiles and mean."""

    __slots__ = ("count", "mean", "median", "p10", "p90", "minimum", "maximum")

    def __init__(self, count, mean_value, median, p10, p90, minimum, maximum):
        self.count = count
        self.mean = mean_value
        self.median = median
        self.p10 = p10
        self.p90 = p90
        self.minimum = minimum
        self.maximum = maximum

    def as_dict(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p10": self.p10,
            "p90": self.p90,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self):
        return (
            "SummaryStatistics(count=%d, mean=%.4g, median=%.4g, p10=%.4g, p90=%.4g)"
            % (self.count, self.mean, self.median, self.p10, self.p90)
        )


def summarize(values):
    """Build a :class:`SummaryStatistics` from a non-empty sequence."""
    data = sorted(values)
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    return SummaryStatistics(
        count=len(data),
        mean_value=mean(data),
        median=percentile(data, 0.5),
        p10=percentile(data, 0.1),
        p90=percentile(data, 0.9),
        minimum=data[0],
        maximum=data[-1],
    )


class TimeSeries(object):
    """A sequence of ``(time, value)`` samples with convenience accessors."""

    def __init__(self, name=""):
        self.name = name
        self.samples = []

    def append(self, time, value):
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(
                "time series %r must be appended in non-decreasing time order" % self.name
            )
        self.samples.append((time, value))

    def times(self):
        return [time for time, _ in self.samples]

    def values(self):
        return [value for _, value in self.samples]

    def last(self):
        if not self.samples:
            raise ValueError("time series %r is empty" % self.name)
        return self.samples[-1]

    def __len__(self):
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __repr__(self):
        return "TimeSeries(name=%r, samples=%d)" % (self.name, len(self.samples))


class Histogram(object):
    """Fixed-width histogram used for packet-count distributions."""

    def __init__(self, bin_width):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.counts = {}
        self.total = 0

    def add(self, value, weight=1):
        bucket = int(value // self.bin_width)
        self.counts[bucket] = self.counts.get(bucket, 0) + weight
        self.total += weight

    def as_sorted_bins(self):
        """Return ``[(bin_start, count)]`` sorted by bin start."""
        return [
            (bucket * self.bin_width, self.counts[bucket])
            for bucket in sorted(self.counts)
        ]

    def __repr__(self):
        return "Histogram(bin_width=%r, bins=%d, total=%d)" % (
            self.bin_width,
            len(self.counts),
            self.total,
        )
