"""Exceptions raised by the simulation substrate."""


class SimulationError(Exception):
    """Base class for all simulator errors."""


class SimulationNotRunning(SimulationError):
    """Raised when an operation requires an active simulation run."""


class SimulationLimitExceeded(SimulationError):
    """Raised when a configured safety limit (events or time) is exceeded.

    The distributed B-Neck protocol is quiescent, so a correct run in a steady
    state always drains the event queue.  Hitting this limit in a test is a
    strong signal of a livelock or of a protocol bug, which is why it is an
    error rather than a silent truncation.
    """

    def __init__(self, message, events_processed=None, current_time=None):
        super().__init__(message)
        self.events_processed = events_processed
        self.current_time = current_time
