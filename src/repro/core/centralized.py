"""Centralized B-Neck (Figure 1 of the paper).

The centralized algorithm discovers bottleneck links iteratively, in increasing
order of their bottleneck rates: at every round it computes, for each remaining
link, the estimate ``B_e = (C_e - sum of already-fixed rates crossing e) / |R_e|``,
fixes the rate of every session crossing a link whose estimate is minimal, and
removes those links from consideration.

It is used exactly as in the paper's evaluation: "every B-Neck execution result
... has been successfully validated against the result obtained when executing
the centralized version with the same input data".

Maximum-rate requests are handled through the paper's *modified system*: each
session with a finite requested rate gets a private virtual link of capacity
``D_s = min(r_s, C_e0)`` prepended to its path.
"""

from repro.fairness.algebra import default_algebra
from repro.fairness.allocation import RateAllocation


def _build_link_table(sessions, algebra):
    """Map link key -> (capacity, set of crossing session ids).

    Real links are keyed by their endpoints; the virtual demand link of a
    session ``s`` is keyed by ``("demand", s)``.  Capacities are lifted into
    the algebra's number type so division chains stay exact under ExactAlgebra.
    """
    import math

    capacities = {}
    members = {}
    for session in sessions:
        for link in session.links:
            key = link.endpoints
            capacities[key] = algebra.divide(link.capacity, 1)
            members.setdefault(key, set()).add(session.session_id)
        demand = session.effective_demand()
        if not math.isinf(demand):
            key = ("demand", session.session_id)
            capacities[key] = algebra.divide(demand, 1)
            members[key] = {session.session_id}
    return capacities, members


def centralized_bneck(sessions, algebra=None):
    """Compute the max-min fair rates of ``sessions`` with Centralized B-Neck.

    Args:
        sessions: iterable of :class:`~repro.network.session.Session`.
        algebra: optional :class:`~repro.fairness.algebra.RateAlgebra`.

    Returns:
        A :class:`~repro.fairness.allocation.RateAllocation`.
    """
    algebra = algebra or default_algebra()
    sessions = list(sessions)
    allocation = RateAllocation(algebra=algebra)
    if not sessions:
        return allocation

    capacities, members = _build_link_table(sessions, algebra)

    restricted = {key: set(ids) for key, ids in members.items()}   # R_e
    # Load of the already-fixed sessions crossing each link (the F_e sum),
    # maintained incrementally: every session fixed in a round got the same
    # minimal rate, so the sum grows by ``minimum * |moved|`` per link.
    fixed_load = {key: 0 for key in members}
    rates = {}                                                     # lambda*_s
    # Kept as an insertion-ordered list so the minimum tie-break among
    # near-equal estimates does not depend on set (hash) iteration order.
    live_links = [key for key, ids in restricted.items() if ids]

    # Each round fixes the rate of at least one session, so the loop runs at
    # most once per session.
    for _ in range(len(sessions) + 1):
        if not live_links:
            break
        estimates = {}
        for key in live_links:
            estimates[key] = algebra.divide(
                capacities[key] - fixed_load[key], len(restricted[key])
            )
        minimum = algebra.minimum(estimates.values())
        minimal_links = {
            key for key in live_links if algebra.equal(estimates[key], minimum)
        }
        newly_fixed = set()
        for key in minimal_links:
            newly_fixed |= restricted[key]
        for session_id in newly_fixed:
            rates[session_id] = minimum
        next_live = []
        for key in live_links:
            if key in minimal_links:
                continue
            members_here = restricted[key]
            moved = members_here & newly_fixed
            if moved:
                fixed_load[key] = fixed_load[key] + minimum * len(moved)
                members_here -= moved
            if members_here:
                next_live.append(key)
        live_links = next_live
    else:
        if live_links:
            raise RuntimeError("Centralized B-Neck did not terminate")

    for session in sessions:
        # A session crossing only unsaturated links with infinite demand cannot
        # occur over real (finite-capacity) links, so every session has a rate.
        allocation.set_rate(session.session_id, rates[session.session_id])
    return allocation
