"""The DestinationNode task (Figure 4 of the paper).

The destination node closes Probe cycles (turning a ``Join``/``Probe`` into an
upstream ``Response``) and detects the no-bottleneck-found condition: when a
``SetBottleneck`` arrives with ``beta`` still false, the network changed while
the packet was travelling and the session must run a new Probe cycle, which the
destination requests with an upstream ``Update``.
"""

from repro.core.packets import (
    Join,
    Leave,
    Probe,
    RESPONSE,
    Response,
    SetBottleneck,
    Update,
)
from repro.simulator.process import Process


class DestinationNodeTask(Process):
    """Runs the B-Neck destination algorithm for one session."""

    def __init__(self, simulator, protocol, session):
        super(DestinationNodeTask, self).__init__(
            simulator, "DN(%s)" % session.session_id
        )
        self.protocol = protocol
        self.session = session
        self.session_id = session.session_id
        # The destination sits past the last link of the path.
        self.link_id = ("destination", session.session_id)
        self.closed_probe_cycles = 0
        self.no_bottleneck_updates = 0
        self.left = False

    def _send_upstream(self, packet):
        self.protocol.forward_upstream_from_destination(self.session_id, packet)

    # Packet-type -> unbound handler, built once at class definition time (see
    # the assignment below the handler definitions).
    _DISPATCH = None

    def receive(self, message, sender):
        if self.left:
            return
        handler = self._DISPATCH.get(message.__class__)
        if handler is None:
            raise TypeError("%s cannot handle %r" % (self.name, message))
        handler(self, message)

    def on_probe_cycle_end(self, message):
        """Figure 4, lines 3-7: close the Probe cycle."""
        self.closed_probe_cycles += 1
        self._send_upstream(
            Response(message.session_id, RESPONSE, message.rate, message.restricting_link)
        )

    def on_set_bottleneck(self, message):
        """Figure 4, lines 9-10: no link confirmed a bottleneck -> re-probe."""
        if not message.found_bottleneck:
            self.no_bottleneck_updates += 1
            self._send_upstream(Update(message.session_id))

    def on_leave(self, message):
        self.left = True


DestinationNodeTask._DISPATCH = {
    Join: DestinationNodeTask.on_probe_cycle_end,
    Probe: DestinationNodeTask.on_probe_cycle_end,
    SetBottleneck: DestinationNodeTask.on_set_bottleneck,
    Leave: DestinationNodeTask.on_leave,
}
