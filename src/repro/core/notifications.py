"""Pluggable storage for ``API.Rate`` notification records.

Every ``API.Rate`` invocation is recorded by
:meth:`~repro.core.protocol.BNeckProtocol.notify_rate`.  The historical
behaviour -- an unbounded list of
:class:`~repro.core.api.RateNotification` objects -- is exactly what the
small correctness tests want, but a long dynamic run (Experiment 2-style
churn, or the paper-scale topologies) accumulates millions of records the
experiments never read.  The protocol therefore accepts any *notification
log*, and three variants are provided:

* :class:`NotificationLog` -- the compatible default: keeps every record,
  supports ``len`` / indexing / iteration like the plain list it replaces.
* :class:`RingNotificationLog` -- bounded memory: keeps only the most recent
  ``capacity`` records and counts how many older ones were evicted.
* :class:`NullNotificationLog` -- keeps nothing; the cheapest option for
  benchmarks that only read final allocations.

All variants are interchangeable: ``record`` is the single write entry point,
and the sequence protocol (over whatever records are retained) is the read
side.  The protocol's ``last_notified_rate`` bookkeeping is independent of the
log, so dropping records never changes protocol behaviour -- simulation
traces are bit-identical across variants.
"""

import collections

from repro.core.api import RateNotification

FULL = "full"
RING = "ring"
NULL = "null"


class NotificationLog(object):
    """Full-record log: every ``API.Rate`` invocation is kept (the default)."""

    kind = FULL

    def __init__(self):
        self._records = []

    def record(self, time, session_id, rate):
        """Store one ``API.Rate`` invocation; returns the stored record."""
        notification = RateNotification(time, session_id, rate)
        self._records.append(notification)
        return notification

    @property
    def recorded(self):
        """Total number of ``API.Rate`` invocations seen (retained or not)."""
        return len(self._records)

    @property
    def dropped(self):
        """Number of records evicted to bound memory (0 for the full log)."""
        return 0

    def last_for(self, session_id):
        """The most recent retained record of ``session_id`` (or ``None``)."""
        for notification in reversed(self._records):
            if notification.session_id == session_id:
                return notification
        return None

    def clear(self):
        self._records = []

    def __len__(self):
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __iter__(self):
        return iter(self._records)

    def __repr__(self):
        return "%s(retained=%d, recorded=%d)" % (
            type(self).__name__,
            len(self),
            self.recorded,
        )


class RingNotificationLog(NotificationLog):
    """Bounded log: retains the most recent ``capacity`` records only."""

    kind = RING

    def __init__(self, capacity=4096):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive, got %r" % capacity)
        self.capacity = capacity
        self._records = collections.deque(maxlen=capacity)
        self._recorded = 0

    def record(self, time, session_id, rate):
        notification = RateNotification(time, session_id, rate)
        self._records.append(notification)
        self._recorded += 1
        return notification

    @property
    def recorded(self):
        return self._recorded

    @property
    def dropped(self):
        return self._recorded - len(self._records)

    def clear(self):
        self._records.clear()
        self._recorded = 0


class NullNotificationLog(object):
    """A log that retains nothing, as cheaply as possible.

    ``record`` only bumps a counter -- no :class:`RateNotification` is
    allocated -- so churn-heavy benchmark runs pay nothing per notification.
    The read side reports an empty sequence.
    """

    kind = NULL

    __slots__ = ("_recorded",)

    def __init__(self):
        self._recorded = 0

    def record(self, time, session_id, rate):
        self._recorded += 1
        return None

    @property
    def recorded(self):
        return self._recorded

    @property
    def dropped(self):
        return self._recorded

    def last_for(self, session_id):
        return None

    def clear(self):
        self._recorded = 0

    def __len__(self):
        return 0

    def __getitem__(self, index):
        raise IndexError("NullNotificationLog retains no records")

    def __iter__(self):
        return iter(())

    def __repr__(self):
        return "NullNotificationLog(recorded=%d)" % self._recorded


def make_notification_log(spec):
    """Build a notification log from a spec.

    Accepts ``None`` / ``"full"`` (the compatible default), ``"ring"`` /
    ``"ring:<capacity>"``, ``"null"``, a zero-argument factory, or an already
    constructed log object (anything with a ``record`` method).
    """
    if spec is None or spec == FULL:
        return NotificationLog()
    if isinstance(spec, str):
        if spec == NULL:
            return NullNotificationLog()
        if spec == RING:
            return RingNotificationLog()
        if spec.startswith(RING + ":"):
            return RingNotificationLog(capacity=int(spec.split(":", 1)[1]))
        raise ValueError(
            "unknown notification log %r (expected 'full', 'ring[:N]' or 'null')" % spec
        )
    if hasattr(spec, "record") and not isinstance(spec, type):
        return spec
    if callable(spec):
        return make_notification_log(spec())
    raise TypeError("cannot build a notification log from %r" % (spec,))
