"""The B-Neck algorithm (the paper's primary contribution).

The package mirrors the paper's Section III structure:

* :mod:`~repro.core.centralized` -- Centralized B-Neck (Figure 1), used both as
  an intuition-preserving reference algorithm and as the correctness oracle.
* :mod:`~repro.core.packets` -- the seven B-Neck control packets
  (``Join``, ``Probe``, ``Response``, ``Update``, ``Bottleneck``,
  ``SetBottleneck``, ``Leave``).
* :mod:`~repro.core.state` -- per-link per-session protocol state
  (``R_e``, ``F_e``, ``mu^e_s``, ``lambda^e_s``, ``B_e``).
* :mod:`~repro.core.router_link` -- the RouterLink task (Figure 2).
* :mod:`~repro.core.source_node` -- the SourceNode task (Figure 3).
* :mod:`~repro.core.destination_node` -- the DestinationNode task (Figure 4).
* :mod:`~repro.core.api` -- the session-facing primitives
  (``API.Join`` / ``API.Leave`` / ``API.Change`` / ``API.Rate``).
* :mod:`~repro.core.actions` -- joins/leaves/changes as broadcastable data
  records, replayable in every process of a persistent-worker parallel run.
* :mod:`~repro.core.notifications` -- pluggable ``API.Rate`` record storage
  (full / ring-buffer / null) behind ``BNeckProtocol.notifications``.
* :mod:`~repro.core.protocol` -- :class:`BNeckProtocol`, which instantiates the
  tasks over a network + simulator, routes packets along session paths with
  link delays, and exposes quiescence-and-rates helpers.
* :mod:`~repro.core.quiescence` -- the stability predicate of Definition 2.
* :mod:`~repro.core.validation` -- validation of distributed runs against the
  centralized oracle, as done in the paper's evaluation.
"""

from repro.core.api import RateNotification, SessionApplication
from repro.core.centralized import centralized_bneck
from repro.core.notifications import (
    NotificationLog,
    NullNotificationLog,
    RingNotificationLog,
    make_notification_log,
)
from repro.core.actions import (
    CapacityChangeAction,
    ChangeAction,
    JoinAction,
    LeaveAction,
    join_action_from_spec,
    replay_actions,
)
from repro.core.packets import (
    BOTTLENECK,
    Bottleneck,
    Join,
    Leave,
    PACKET_TYPES,
    Probe,
    RESPONSE,
    Response,
    SetBottleneck,
    UPDATE,
    Update,
)
from repro.core.protocol import BNeckProtocol
from repro.core.quiescence import StabilityReport, check_stability
from repro.core.state import IDLE, LinkState, WAITING_PROBE, WAITING_RESPONSE
from repro.core.validation import ValidationResult, validate_against_oracle

__all__ = [
    "BNeckProtocol",
    "BOTTLENECK",
    "Bottleneck",
    "CapacityChangeAction",
    "ChangeAction",
    "IDLE",
    "Join",
    "JoinAction",
    "Leave",
    "LeaveAction",
    "LinkState",
    "NotificationLog",
    "NullNotificationLog",
    "PACKET_TYPES",
    "Probe",
    "RingNotificationLog",
    "RESPONSE",
    "RateNotification",
    "Response",
    "SessionApplication",
    "SetBottleneck",
    "StabilityReport",
    "UPDATE",
    "Update",
    "ValidationResult",
    "WAITING_PROBE",
    "WAITING_RESPONSE",
    "centralized_bneck",
    "check_stability",
    "join_action_from_spec",
    "make_notification_log",
    "replay_actions",
    "validate_against_oracle",
]
