"""Network stability (Definition 2 of the paper) and quiescence checking.

Definition 2: a link ``e`` is *stable* when every session it knows is IDLE,
every session in ``R_e`` is recorded at exactly ``B_e`` and, when ``R_e`` is
not empty, every session in ``F_e`` is recorded below ``B_e``.  The *network*
is stable when every link is stable and no B-Neck packet is in transit or being
processed.

Because the simulator executes handlers atomically and the only scheduled
events of a steady-state B-Neck run are packet deliveries, "no packet in
transit" is equivalent to "the protocol's in-flight counter is zero".
Permanent stability implies quiescence (Lemma 1), and stability implies the
recorded rates are the max-min fair rates (Lemma 2); the test suite checks both
by combining :func:`check_stability` with the centralized oracle.
"""


class StabilityReport(object):
    """The outcome of a stability check."""

    def __init__(self, stable, unstable_links, in_flight_packets, checked_links):
        self.stable = stable
        self.unstable_links = unstable_links
        self.in_flight_packets = in_flight_packets
        self.checked_links = checked_links

    def __bool__(self):
        return self.stable

    def __repr__(self):
        return (
            "StabilityReport(stable=%r, unstable_links=%d, in_flight=%d, checked=%d)"
            % (self.stable, len(self.unstable_links), self.in_flight_packets, self.checked_links)
        )


def check_stability(protocol):
    """Evaluate Definition 2 on a running :class:`~repro.core.protocol.BNeckProtocol`.

    Returns a :class:`StabilityReport`; the report is truthy iff the network is
    stable *and* no control packet is in flight.
    """
    unstable = []
    checked = 0
    for link_state in protocol.all_link_states():
        checked += 1
        if not link_state.is_stable():
            unstable.append(link_state.link_id)
    in_flight = protocol.in_flight_packets
    stable = not unstable and in_flight == 0
    return StabilityReport(
        stable=stable,
        unstable_links=unstable,
        in_flight_packets=in_flight,
        checked_links=checked,
    )
