"""Validation of distributed B-Neck runs against the centralized oracles.

The paper validates every distributed run against Centralized B-Neck.  This
module does the same and additionally cross-checks against the independent
water-filling implementation and the direct max-min verification predicate, so
a single call gives the strongest correctness statement available:

* centralized B-Neck and water-filling agree with each other;
* the distributed rates equal the oracle rates;
* the distributed rates satisfy the bottleneck characterization of max-min
  fairness directly.
"""

from repro.core.centralized import centralized_bneck
from repro.fairness.verification import verify_allocation
from repro.fairness.waterfilling import water_filling


class ValidationResult(object):
    """The outcome of validating a distributed run."""

    def __init__(
        self,
        matches_centralized,
        matches_waterfilling,
        oracles_agree,
        max_relative_error,
        violations,
        centralized,
        waterfilling,
        distributed,
    ):
        self.matches_centralized = matches_centralized
        self.matches_waterfilling = matches_waterfilling
        self.oracles_agree = oracles_agree
        self.max_relative_error = max_relative_error
        self.violations = violations
        self.centralized = centralized
        self.waterfilling = waterfilling
        self.distributed = distributed

    @property
    def valid(self):
        """True when the distributed allocation matches the oracle and is max-min fair."""
        return self.matches_centralized and self.oracles_agree and not self.violations

    def __bool__(self):
        return self.valid

    def __repr__(self):
        return (
            "ValidationResult(valid=%r, matches_centralized=%r, matches_waterfilling=%r, "
            "max_relative_error=%.3g, violations=%d)"
            % (
                self.valid,
                self.matches_centralized,
                self.matches_waterfilling,
                self.max_relative_error,
                len(self.violations),
            )
        )


def validate_against_oracle(protocol, allocation=None, algebra=None):
    """Validate a (normally quiescent) protocol run against the oracles.

    Args:
        protocol: a :class:`~repro.core.protocol.BNeckProtocol`.
        allocation: optional allocation to check; defaults to the protocol's
            :meth:`~repro.core.protocol.BNeckProtocol.current_allocation`.
        algebra: optional rate algebra for the comparisons.

    Returns:
        A :class:`ValidationResult`.
    """
    algebra = algebra or protocol.algebra
    sessions = protocol.active_sessions()
    distributed = allocation if allocation is not None else protocol.current_allocation()
    centralized = centralized_bneck(sessions, algebra=algebra)
    waterfilled = water_filling(sessions, algebra=algebra)

    matches_centralized = distributed.equals(centralized, algebra=algebra)
    matches_waterfilling = distributed.equals(waterfilled, algebra=algebra)
    oracles_agree = centralized.equals(waterfilled, algebra=algebra)
    max_relative_error = distributed.max_relative_difference(centralized)
    violations = verify_allocation(sessions, distributed, algebra=algebra)

    return ValidationResult(
        matches_centralized=matches_centralized,
        matches_waterfilling=matches_waterfilling,
        oracles_agree=oracles_agree,
        max_relative_error=max_relative_error,
        violations=violations,
        centralized=centralized,
        waterfilling=waterfilled,
        distributed=distributed,
    )
