"""The B-Neck protocol orchestrator.

:class:`BNeckProtocol` glues the three task types of Section III-C to a
network and a discrete-event simulator:

* it instantiates one :class:`~repro.core.router_link.RouterLinkTask` per
  directed link crossed by some session, one
  :class:`~repro.core.source_node.SourceNodeTask` and one
  :class:`~repro.core.destination_node.DestinationNodeTask` per session;
* it routes packets hop by hop along session paths (downstream) and reverse
  paths (upstream), applying each link's control-packet delay and accounting
  every transmission in a :class:`~repro.simulator.tracing.PacketTracer`;
* it exposes the session API (``join`` / ``leave`` / ``change``), records every
  ``API.Rate`` notification, and provides quiescence and allocation helpers
  used by the experiments and tests.

Notification batching
---------------------

``API.Rate`` deliveries to :class:`~repro.core.api.SessionApplication`
objects are *batched per simulation instant* by default: however many times a
session's rate is renegotiated within one timestamp, the application receives
a single ``deliver_rate`` callback carrying the final value, executed at the
end of the instant through
:meth:`~repro.simulator.simulation.Simulator.call_at_instant_end`.  Batching
never alters the simulation itself (notifications schedule no events), so
packet counts, event counts and final allocations are bit-identical with
batching on or off; only the application-facing callback stream is coalesced.
Pass ``batch_notifications=False`` for the historical synchronous per-packet
delivery.

With nonzero link delays a session's consecutive renegotiations land on
*distinct* instants (each re-probe costs at least a round trip), so
per-instant coalescing alone rarely drops callbacks.  For churn-heavy
experiments, ``notification_batch_window=w`` widens the batch to logical
windows of ``w`` seconds: pending rates are delivered at the next multiple of
``w``, coalescing the whole convergence transient of a churn burst into one
application update per session per window.  Windowed flushes run as
out-of-band *bookkeeping timers*
(:meth:`~repro.simulator.simulation.Simulator.schedule_bookkeeping`), so --
exactly like per-instant batching -- they never appear in
``events_processed``, never stretch a reported quiescence time, and never
count against ``Simulator.max_events`` / ``max_time`` caps; applications
still observe the window-boundary timestamp.

The record of ``API.Rate`` invocations is kept in a pluggable *notification
log* (see :mod:`repro.core.notifications`): the default retains everything
(list-compatible via the ``notifications`` attribute); churn-heavy runs can
pass ``notification_log="ring"`` (bounded memory) or ``"null"`` (keep
nothing) without affecting protocol behaviour.
"""

import math

from repro.core.actions import (
    CapacityChangeAction,
    ChangeAction,
    LeaveAction,
    replay_actions,
    validate_actions,
)
from repro.core.api import RateNotification, SessionApplication
from repro.core.notifications import make_notification_log
from repro.core.destination_node import DestinationNodeTask
from repro.core.packets import decode_packet, encode_packet
from repro.core.router_link import RouterLinkTask
from repro.core.source_node import SourceNodeTask
from repro.fairness.algebra import default_algebra
from repro.fairness.allocation import RateAllocation
from repro.network.routing import PathComputer, path_links
from repro.network.session import Session, SessionRegistry
from repro.simulator.simulation import Simulator
from repro.simulator.tracing import NullPacketTracer, PacketTracer

DOWNSTREAM = "downstream"
UPSTREAM = "upstream"


class _SessionWiring(object):
    """Per-session forwarding table: ordered protocol stages and path links."""

    __slots__ = ("session", "stages", "links", "index_by_key")

    def __init__(self, session, stages, links):
        self.session = session
        self.stages = stages
        self.links = links
        self.index_by_key = {}
        # Stage 0 (the source) is addressed by the access link it owns; stages
        # 1..k by the link their RouterLink controls; the destination by a
        # dedicated key.
        self.index_by_key[links[0].endpoints] = 0
        for position in range(1, len(links)):
            self.index_by_key[links[position].endpoints] = position
        self.index_by_key[("destination", session.session_id)] = len(links)


class BNeckProtocol(object):
    """B-Neck running over a network on a discrete-event simulator.

    Args:
        network: the :class:`~repro.network.graph.Network` to run over.
        simulator: optional simulator (one is created if omitted).
        algebra: optional rate algebra; defaults to tolerance-based floats.
        tracer: optional :class:`~repro.simulator.tracing.PacketTracer`.
        routing_metric: ``"hops"`` (paper default) or ``"delay"``.
        trace_packets: when false (and no explicit ``tracer`` is given) a
            :class:`~repro.simulator.tracing.NullPacketTracer` is installed
            and the per-packet accounting in :meth:`_transmit` is skipped
            entirely -- use for runs that only report times, not counts.
        notification_log: where ``API.Rate`` records are kept -- ``"full"``
            (default, unbounded), ``"ring"`` / ``"ring:N"``, ``"null"``, or a
            log object (see :func:`repro.core.notifications.make_notification_log`).
        batch_notifications: when true (default) application ``API.Rate``
            callbacks are coalesced per simulation instant (see the module
            docstring); when false each ``notify_rate`` call reaches the
            application synchronously.
        notification_batch_window: optional window width (seconds) for
            coalescing across instants; ``None`` (default) batches per
            instant.  Ignored when ``batch_notifications`` is false.
    """

    def __init__(self, network, simulator=None, algebra=None, tracer=None,
                 routing_metric="hops", trace_packets=True,
                 notification_log=None, batch_notifications=True,
                 notification_batch_window=None):
        self.network = network
        self.simulator = simulator or Simulator()
        self.algebra = algebra or default_algebra()
        if tracer is None:
            tracer = PacketTracer() if trace_packets else NullPacketTracer()
        self.tracer = tracer
        # Hoisted once: _transmit runs per packet and must not pay a dynamic
        # getattr there.  Rebind this flag if you ever swap `tracer` later.
        self._trace_packets = getattr(tracer, "enabled", True)
        self.registry = SessionRegistry()
        self.path_computer = PathComputer(network, metric=routing_metric)
        self._router_links = {}
        self._sources = {}
        self._destinations = {}
        self._applications = {}
        self._wirings = {}
        self._sessions = {}
        self._last_rate = {}
        self.notification_log = make_notification_log(notification_log)
        self.batch_notifications = bool(batch_notifications)
        if notification_batch_window is not None and notification_batch_window <= 0:
            raise ValueError(
                "notification_batch_window must be positive, got %r"
                % (notification_batch_window,)
            )
        self.notification_batch_window = notification_batch_window
        self._pending_rates = {}
        self.rate_callbacks = 0
        self.in_flight_packets = 0
        self._session_counter = 0
        self._shard_plan = None
        self._pending_by_shard = None
        self._fork_baseline = None
        self._replaying_actions = False
        # Scheduled-but-not-yet-applied capacity changes, as (at, source,
        # target, capacity) tuples.  On serial engines the scheduled event
        # itself consumes its entry; the driver of a persistent-parallel run
        # never executes events, so it folds due entries into its network
        # mirror at the end-of-run state sync instead (the workers applied
        # them at event time).
        self._pending_capacity_changes = []

    # ------------------------------------------------------------------ sharding

    def use_shard_plan(self, plan):
        """Partition this protocol's actors across the plan's shards.

        Requires ``simulator`` to be a
        :class:`~repro.simulator.sharding.ShardedSimulator` and must be called
        before any session joins.  Every RouterLink task created afterwards is
        placed on the shard of its link's transmitting router; SourceNode and
        DestinationNode tasks follow their host's attached router.  Packet
        sends then resolve local vs. remote: same-shard deliveries take the
        usual bare-callback fast path, cross-shard deliveries travel as
        ``(session_id, stage_index, packet)`` descriptors through the
        engine's epoch-batched mailboxes (batch-encoded as flat primitive
        tuples when they cross a worker pipe).  This also installs the
        action-broadcast handler that lets :meth:`apply_actions` replay
        joins/leaves/changes identically in every persistent worker process.
        """
        if self._sources or self._router_links:
            raise RuntimeError("use_shard_plan must be called before sessions join")
        simulator = self.simulator
        if not hasattr(simulator, "post_remote"):
            raise TypeError(
                "use_shard_plan needs a ShardedSimulator, got %r" % (simulator,)
            )
        self._shard_plan = plan
        self._pending_by_shard = [dict() for _ in range(plan.num_shards)]
        simulator.remote_handler = self._deliver_remote
        simulator.action_handler = self._replay_actions
        simulator.before_fork = self._snapshot_fork_baseline
        simulator.export_state = self._export_shard_state
        simulator.import_state = self._import_shard_states
        simulator.encode_outbox = self._encode_outbox
        simulator.decode_inbox = self._decode_inbox

    def _deliver_remote(self, descriptor):
        """Deliver a cross-shard packet descriptor to its target stage."""
        session_id, stage_index, packet = descriptor
        self.in_flight_packets -= 1
        self._wirings[session_id].stages[stage_index].receive(packet, None)

    @staticmethod
    def _encode_outbox(entries):
        """Batch-encode an epoch outbox for the worker pipe.

        Each ``(time, (session_id, stage_index, packet), tag)`` entry becomes
        one flat ``(time, session_id, stage_index, type_code, field...)``
        tuple of primitives (see :func:`repro.core.packets.encode_packet`), so
        a whole epoch's mail pickles without a single packet object on the
        wire.  The delivery time stays in slot 0 -- the engine's driver reads
        it for ``t_min`` without decoding.
        """
        return [
            (time, descriptor[0], descriptor[1]) + encode_packet(descriptor[2])
            for time, descriptor, _tag in entries
        ]

    @staticmethod
    def _decode_inbox(entries):
        """Rebuild ``(time, descriptor, tag)`` triples from the wire encoding."""
        decoded = []
        for entry in entries:
            packet = decode_packet(entry[3:])
            decoded.append((entry[0], (entry[1], entry[2], packet), packet.type_name))
        return decoded

    # ------------------------------------------------------------------ actions

    def _workers_live(self):
        return getattr(self.simulator, "workers_live", False)

    def apply_actions(self, actions):
        """Apply a batch of session actions, engine-transparently.

        ``actions`` are :mod:`repro.core.actions` records (joins, leaves,
        changes) with every random choice already resolved and an absolute
        time each.  On a sequential or serial-sharded engine the batch is
        replayed locally; with live persistent parallel workers it is
        broadcast so every worker replays the identical batch before the next
        run command.  Returns ``{session_id: session}`` for the joins
        (driver-side copies).
        """
        actions = validate_actions(list(actions))
        # Resolve capacity targets against this network *before* any
        # broadcast: an unknown link or a host endpoint must surface as a
        # clean driver-side error, not fail mid-replay after live workers
        # already received the batch (which would force a pool teardown).
        for action in actions:
            if action.kind == "capacity":
                self._check_capacity_action(action)
        simulator = self.simulator
        if self._shard_plan is not None and hasattr(simulator, "broadcast_actions"):
            if getattr(simulator, "workers_live", False):
                # Reject past-dated actions *before* the broadcast: a worker's
                # idle clock lags the driver's, so its own past-time guards
                # would not fire, and a batch the driver later rejects would
                # already be scheduled worker-side -- permanent divergence.
                now = simulator.now
                for action in actions:
                    if action.at < now:
                        raise RuntimeError(
                            "action %r is dated before the current time %r; "
                            "actions broadcast to live persistent workers "
                            "must be scheduled at or after `now`" % (action, now)
                        )
            return simulator.broadcast_actions(actions)
        return self._replay_actions(actions)

    def _replay_actions(self, actions):
        """The engine's ``action_handler``: apply a batch to this process."""
        self._replaying_actions = True
        try:
            return replay_actions(self, actions)
        finally:
            self._replaying_actions = False

    # ------------------------------------------------------------------ sessions

    def create_session(self, source_host, destination_host, demand=math.inf, session_id=None):
        """Build a :class:`~repro.network.session.Session` along the shortest path.

        This only constructs the object; call :meth:`join` to activate it.
        """
        if session_id is None:
            self._session_counter += 1
            session_id = "session-%d" % self._session_counter
        node_path = self.path_computer.route(source_host, destination_host)
        links = path_links(self.network, node_path)
        session = Session(session_id, source_host, destination_host, node_path, links, demand)
        return session

    def join(self, session, at=None, application=None):
        """``API.Join``: activate a session, optionally at a future time.

        Returns the :class:`~repro.core.api.SessionApplication` that will
        receive the session's ``API.Rate`` notifications.
        """
        if session.session_id in self._sessions:
            raise ValueError("session %r already joined" % session.session_id)
        if self._workers_live() and not self._replaying_actions:
            raise RuntimeError(
                "cannot join a session object directly while persistent "
                "parallel workers are live: the join must be replayed in "
                "every worker process.  Describe it as a JoinAction and use "
                "apply_actions (ExperimentRunner.install and the phase "
                "machinery do this automatically)"
            )
        if application is None:
            application = SessionApplication(session.session_id, session.demand)
        self._sessions[session.session_id] = session
        self._applications[session.session_id] = application

        source = SourceNodeTask(self.simulator, self, session, self.algebra)
        destination = DestinationNodeTask(self.simulator, self, session)
        plan = self._shard_plan
        if plan is not None:
            source.place_on_shard(plan.shard_of(session.source))
            destination.place_on_shard(plan.shard_of(session.destination))
        self._sources[session.session_id] = source
        self._destinations[session.session_id] = destination

        stages = [source]
        for link in session.transit_links:
            stages.append(self._router_link_for(link))
        stages.append(destination)
        self._wirings[session.session_id] = _SessionWiring(session, stages, session.links)

        def activate():
            self.registry.add(session)
            source.api_join(session.demand)

        self._schedule_api_call(activate, at, "API.Join", shard=source.shard_id)
        return application

    def leave(self, session_id, at=None):
        """``API.Leave``: terminate an active session, optionally at a future time.

        With live persistent parallel workers the call is transparently
        converted into a broadcast :class:`~repro.core.actions.LeaveAction`
        (``at=None`` pins it to the current time) so every worker schedules
        it identically.  Note the one semantic difference from the serial
        engines: there ``at=None`` executes the API call inline (no event),
        whereas the broadcast path necessarily schedules it -- one extra
        entry in ``events_processed`` per converted call.  Workloads that
        need bit-exact cross-engine schedules should pass explicit times.
        """
        source = self._sources[session_id]
        if self._workers_live() and not self._replaying_actions:
            when = self.simulator.now if at is None else at
            self.apply_actions([LeaveAction(session_id, when)])
            return

        def deactivate():
            if session_id in self.registry:
                self.registry.remove(session_id)
            source.api_leave()

        self._schedule_api_call(deactivate, at, "API.Leave", shard=source.shard_id)

    def change(self, session_id, requested_rate, at=None):
        """``API.Change``: request a new maximum rate, optionally at a future time.

        Broadcast as a :class:`~repro.core.actions.ChangeAction` when
        persistent parallel workers are live (see :meth:`leave`).
        """
        source = self._sources[session_id]
        session = self._sessions[session_id]
        if self._workers_live() and not self._replaying_actions:
            when = self.simulator.now if at is None else at
            self.apply_actions([ChangeAction(session_id, requested_rate, when)])
            return

        def apply_change():
            session.demand = requested_rate
            source.api_change(requested_rate)

        self._schedule_api_call(apply_change, at, "API.Change", shard=source.shard_id)

    def change_capacity(self, source, target, capacity, at=None, both_directions=False):
        """Change a router-to-router link's data-plane capacity, mid-flight.

        The change is described as one (or, with ``both_directions``, a pair
        of) broadcast :class:`~repro.core.actions.CapacityChangeAction` and
        applied through :meth:`apply_actions`, so it works identically on the
        sequential, serial-sharded and persistent-parallel engines.  When the
        scheduled time arrives, the network link is mutated and the affected
        RouterLink re-runs its bottleneck computation
        (:meth:`~repro.core.router_link.RouterLinkTask.capacity_changed`);
        once the protocol requiesces, the allocation again matches the
        water-filling oracle on the *updated* capacities.  ``at=None`` pins
        the change to the current time.
        """
        when = self.simulator.now if at is None else at
        actions = [CapacityChangeAction(source, target, capacity, when)]
        if both_directions:
            actions.append(CapacityChangeAction(target, source, capacity, when))
        return self.apply_actions(actions)

    def schedule_capacity_change(self, action):
        """Schedule one replayed :class:`~repro.core.actions.CapacityChangeAction`.

        Called from :func:`repro.core.actions.replay_actions` in every process
        of a parallel run.  The change is scheduled on the lane owning the
        link's transmitting router, so it takes a deterministic
        ``(time, sequence)`` slot relative to the packets in flight around it.
        """
        link = self._check_capacity_action(action)
        key = (action.source, action.target)
        entry = (action.at, action.source, action.target, action.capacity)
        self._pending_capacity_changes.append(entry)

        def apply_change():
            self._discard_pending_capacity_change(entry)
            link.set_capacity(action.capacity)
            task = self._router_links.get(key)
            if task is not None:
                task.capacity_changed(action.capacity)

        shard = 0
        if self._shard_plan is not None:
            shard = self._shard_plan.shard_of(action.source)
        self._schedule_api_call(apply_change, action.at, "CapacityChange", shard=shard)

    def _check_capacity_action(self, action):
        """Resolve a capacity action's link, rejecting host endpoints.

        Raises ``KeyError`` for unknown links and ``ValueError`` for access
        links; returns the :class:`~repro.network.graph.Link`.
        """
        key = (action.source, action.target)
        link = self.network.link(*key)
        for endpoint in key:
            if not self.network.node(endpoint).is_router:
                raise ValueError(
                    "capacity changes apply to router-to-router links; %r -> %r "
                    "touches host %r (access-link bandwidth is a session-demand "
                    "concern: use API.Change)" % (action.source, action.target, endpoint)
                )
        return link

    def _discard_pending_capacity_change(self, entry):
        try:
            self._pending_capacity_changes.remove(entry)
        except ValueError:
            pass

    def _sync_due_capacity_changes(self):
        """Fold worker-applied capacity changes into the driver's mirror.

        Runs at the end-of-run state sync of a persistent-parallel run.  The
        driver never executes events, so every scheduled change whose time has
        passed was applied *worker-side* only; the network mirror (read by the
        validation oracles) and the RouterLink mirror states catch up here.
        Entries are applied in time order (stable on ties, matching the event
        queue) so the last write to a link wins, exactly as in the workers.
        """
        now = self.simulator.now
        due = [entry for entry in self._pending_capacity_changes if entry[0] <= now]
        if not due:
            return
        self._pending_capacity_changes = [
            entry for entry in self._pending_capacity_changes if entry[0] > now
        ]
        due.sort(key=lambda entry: entry[0])
        for _at, source, target, capacity in due:
            self.network.link(source, target).set_capacity(capacity)
            task = self._router_links.get((source, target))
            if task is not None:
                task.state.set_capacity(capacity)

    def open_session(self, source_host, destination_host, demand=math.inf, session_id=None, at=None):
        """Create and immediately join a session; returns ``(session, application)``."""
        session = self.create_session(source_host, destination_host, demand, session_id)
        application = self.join(session, at=at)
        return session, application

    def _schedule_api_call(self, callback, at, tag, shard=0):
        # Calls with no requested time (or a time already in the past) execute
        # immediately.  A call at exactly ``now`` is *enqueued*, not executed
        # synchronously: it must take its (time, sequence) slot in the event
        # queue so it interleaves deterministically with packet deliveries
        # scheduled at the same instant.  Under a shard plan the call lands on
        # the lane owning the session's source actor.
        if at is None or at < self.simulator.now:
            if self._workers_live():
                # The driver of a persistent parallel run must never execute
                # protocol work itself -- the workers own the authoritative
                # state -- so immediate execution would silently diverge.
                raise RuntimeError(
                    "API calls on a driver with live persistent workers need "
                    "an absolute time at or after the current time "
                    "(got at=%r, now=%r)" % (at, self.simulator.now)
                )
            callback()
        elif self._shard_plan is not None:
            self.simulator.schedule_on(shard, at, callback, tag=tag)
        else:
            self.simulator.schedule_at(at, callback, tag=tag)

    def _router_link_for(self, link):
        key = link.endpoints
        if key not in self._router_links:
            task = RouterLinkTask(self.simulator, self, link, self.algebra)
            if self._shard_plan is not None:
                # The RouterLink actor lives where its link transmits from, so
                # a hop is cross-shard exactly when the link is a cut edge.
                task.place_on_shard(self._shard_plan.shard_of(link.source))
            self._router_links[key] = task
        return self._router_links[key]

    # ---------------------------------------------------------------- forwarding

    def forward_downstream(self, link_id, packet):
        """Deliver ``packet`` to the next stage of its session's path."""
        wiring = self._wirings[packet.session_id]
        index = wiring.index_by_key[link_id]
        crossing = wiring.links[index]
        target = wiring.stages[index + 1]
        self._transmit(packet, crossing, target, DOWNSTREAM, index + 1)

    def forward_upstream(self, link_id, packet):
        """Deliver ``packet`` to the previous stage of its session's path."""
        wiring = self._wirings[packet.session_id]
        index = wiring.index_by_key[link_id]
        if index == 0:
            # The source is the first stage; nothing lies upstream of it.
            return
        crossing = self.network.reverse_link(wiring.links[index - 1])
        target = wiring.stages[index - 1]
        self._transmit(packet, crossing, target, UPSTREAM, index - 1)

    # A RouterLink that originates an Update/Bottleneck for *another* session
    # uses the same routing logic: the packet starts at this link's position in
    # that session's path and travels towards that session's source.
    send_upstream_from = forward_upstream

    def forward_upstream_from_destination(self, session_id, packet):
        """Deliver a packet sent upstream by the destination node."""
        wiring = self._wirings[session_id]
        crossing = self.network.reverse_link(wiring.links[-1])
        target = wiring.stages[-2]
        self._transmit(packet, crossing, target, UPSTREAM, len(wiring.stages) - 2)

    def _transmit(self, packet, link, target, direction, stage_index):
        if self._trace_packets:
            self.tracer.record(
                self.simulator.now,
                packet.type_name,
                packet.session_id,
                link=link.endpoints,
                direction=direction,
            )
        self.in_flight_packets += 1
        simulator = self.simulator

        if self._shard_plan is not None:
            shard = target.shard_id
            if shard != simulator.current_shard:
                # Cross-shard hop: ship a picklable descriptor through the
                # engine's mailbox; it is delivered at the next epoch barrier
                # (or pushed directly while the engine is idle).
                simulator.post_remote(
                    shard,
                    link.control_delay(),
                    (packet.session_id, stage_index, packet),
                    tag=packet.type_name,
                )
                return

        def deliver():
            self.in_flight_packets -= 1
            target.receive(packet, None)

        # Packet deliveries are never cancelled: store the bare callback (no
        # Event handle allocation) on the queue's fast path.
        simulator.schedule_callback(link.control_delay(), deliver, tag=packet.type_name)

    # --------------------------------------------------------------- API.Rate

    @property
    def notifications(self):
        """The retained ``API.Rate`` records (sequence-compatible log)."""
        return self.notification_log

    def notify_rate(self, session_id, rate):
        """Record an ``API.Rate`` invocation and deliver it to the application.

        With ``batch_notifications`` (the default) the application callback is
        deferred to the end of the current simulation instant and coalesced:
        only the last rate a session was notified within the instant reaches
        ``deliver_rate``.  Records, ``last_notified_rate`` and the returned
        notification object always reflect every invocation.
        """
        time = self.simulator.now
        notification = self.notification_log.record(time, session_id, rate)
        self._last_rate[session_id] = rate
        if self.batch_notifications:
            pending = self._current_pending_rates()
            if not pending:
                window = self.notification_batch_window
                if window is None:
                    self.simulator.call_at_instant_end(self._flush_pending_rates)
                else:
                    # Flush at the next window boundary strictly after `now`,
                    # through an out-of-band bookkeeping timer: the flush is
                    # pure observation, so it must not occupy an event-queue
                    # slot (it would show in ``events_processed`` and could
                    # stretch a reported quiescence time by up to one window).
                    boundary = (math.floor(time / window) + 1.0) * window
                    self.simulator.schedule_bookkeeping(
                        boundary - time, self._flush_pending_rates_window
                    )
            pending[session_id] = rate
        else:
            application = self._applications.get(session_id)
            if application is not None:
                self.rate_callbacks += 1
                application.deliver_rate(time, rate)
        return notification

    def _current_pending_rates(self):
        """The pending-rate buffer of the executing shard (or the global one).

        Under a shard plan each lane coalesces its own sessions' rates, so the
        serial and parallel sharded modes deliver identical batches (a worker
        process only ever sees its own lane's buffer).
        """
        shards = self._pending_by_shard
        if shards is None:
            return self._pending_rates
        shard = self.simulator.current_shard
        return shards[0 if shard is None else shard]

    def _flush_pending_rates(self):
        """End-of-instant hook: deliver one coalesced ``API.Rate`` per session.

        Dict insertion order makes delivery order deterministic: sessions are
        notified in the order of their *first* rate update within the instant,
        each carrying its *final* rate.
        """
        self._deliver_pending_batch(self.simulator.now)

    def _flush_pending_rates_window(self, due):
        """Windowed-flush bookkeeping timer: deliver at the window boundary.

        Fires between events (see
        :meth:`repro.simulator.simulation.Simulator.schedule_bookkeeping`);
        applications see the boundary timestamp ``due`` regardless of where
        between two events the timer actually ran.
        """
        self._deliver_pending_batch(due)

    def _deliver_pending_batch(self, time):
        """Deliver the executing lane's coalesced rates, stamped ``time``."""
        pending = self._current_pending_rates()
        if not pending:
            return
        batch = list(pending.items())
        pending.clear()
        applications = self._applications
        delivered = 0
        for session_id, rate in batch:
            application = applications.get(session_id)
            if application is not None:
                delivered += 1
                application.deliver_rate(time, rate)
        self.rate_callbacks += delivered

    def last_notified_rate(self, session_id):
        """The last rate notified to a session (``None`` before the first)."""
        return self._last_rate.get(session_id)

    # ----------------------------------------------- parallel-run state gather
    #
    # A parallel sharded run executes in persistent forked worker processes:
    # each worker owns the authoritative state of its shard's actors, while
    # the driver's copy only advances structurally (through action replays)
    # and through the gathers below.  The hooks (installed on the engine by
    # :meth:`use_shard_plan`) snapshot counter baselines, export each worker's
    # per-session outcome and counter *deltas*, and fold everything back into
    # the driver so ``current_allocation``, ``notified_allocation``,
    # validation and packet accounting keep working transparently between
    # runs.  The gather repeats at the end of every run (the engine's
    # EXPORT_STATE sync): workers re-snapshot their baselines right after
    # exporting, so each sync ships only that run's deltas while per-session
    # fields stay absolute (safe to re-import).  Per-link ``LinkState`` and
    # per-destination diagnostic counters are deliberately not gathered
    # (nothing on the driver reads them between runs).

    def _snapshot_fork_baseline(self):
        tracer = self.tracer
        self._fork_baseline = {
            "rate_callbacks": self.rate_callbacks,
            "in_flight": self.in_flight_packets,
            "log_recorded": self.notification_log.recorded,
            "tracer_total": getattr(tracer, "total", 0),
            "tracer_records": len(getattr(tracer, "records", ())),
            "tracer_by_type": dict(getattr(tracer, "by_type", {})),
            "tracer_by_session": dict(getattr(tracer, "by_session", {})),
            "tracer_intervals": {
                bucket: dict(counts)
                for bucket, counts in getattr(tracer, "_interval_counts", {}).items()
            },
        }

    def _export_shard_state(self, shard_index):
        baseline = self._fork_baseline
        sessions = {}
        for session_id, source in self._sources.items():
            if source.shard_id != shard_index:
                continue
            application = self._applications.get(session_id)
            state = source.state
            sessions[session_id] = {
                "active": session_id in self.registry,
                "rate": state.rate_of(session_id),
                "mu": state.state_of(session_id),
                "demand": self._sessions[session_id].demand,
                "source_demand": source.demand,
                "left": source.left,
                "update_received": source.update_received,
                "bottleneck_received": source.bottleneck_received,
                "last_rate": self._last_rate.get(session_id),
                "app_notifications": (
                    [(n.time, n.rate) for n in application.notifications]
                    if application is not None
                    else None
                ),
            }
        # Records produced during the run are the newest `new_count` retained
        # entries (counting from `recorded`, not positions: a ring log may
        # have evicted pre-fork records, so positional slicing would be off).
        log = self.notification_log
        new_count = log.recorded - baseline["log_recorded"]
        retained = list(log)
        log_delta = [
            (record.time, record.session_id, record.rate)
            for record in retained[max(0, len(retained) - new_count):]
        ] if new_count > 0 else []
        tracer = self.tracer
        blob = {
            "sessions": sessions,
            "rate_callbacks": self.rate_callbacks - baseline["rate_callbacks"],
            "in_flight": self.in_flight_packets - baseline["in_flight"],
            "log_recorded": log.recorded - baseline["log_recorded"],
            "log_delta": log_delta,
            "tracer": None,
        }
        if getattr(tracer, "enabled", False):
            by_type = {
                key: count - baseline["tracer_by_type"].get(key, 0)
                for key, count in tracer.by_type.items()
            }
            by_session = {
                key: count - baseline["tracer_by_session"].get(key, 0)
                for key, count in tracer.by_session.items()
            }
            blob["tracer"] = {
                "total": tracer.total - baseline["tracer_total"],
                "by_type": {k: v for k, v in by_type.items() if v},
                "by_session": {k: v for k, v in by_session.items() if v},
                "last_packet_time": tracer.last_packet_time,
                "records": list(tracer.records[baseline["tracer_records"]:]),
                "intervals": (
                    {
                        bucket: {
                            key: count
                            - baseline["tracer_intervals"].get(bucket, {}).get(key, 0)
                            for key, count in counts.items()
                        }
                        for bucket, counts in tracer._interval_counts.items()
                    }
                    if getattr(tracer, "interval", None) is not None
                    else None
                ),
            }
        return blob

    def _import_shard_states(self, blobs):
        for blob in blobs:
            for session_id, info in blob["sessions"].items():
                source = self._sources[session_id]
                session = self._sessions[session_id]
                session.demand = info["demand"]
                source.demand = info["source_demand"]
                source.left = info["left"]
                source.update_received = info["update_received"]
                source.bottleneck_received = info["bottleneck_received"]
                if info["left"]:
                    source.state.forget(session_id)
                else:
                    if info["rate"] is not None:
                        source.state.set_rate(session_id, info["rate"])
                    source.state.set_state(session_id, info["mu"])
                if info["active"]:
                    if session_id not in self.registry:
                        self.registry.add(session)
                elif session_id in self.registry:
                    self.registry.remove(session_id)
                if info["last_rate"] is not None:
                    self._last_rate[session_id] = info["last_rate"]
                application = self._applications.get(session_id)
                if application is not None and info["app_notifications"]:
                    application.notifications = [
                        RateNotification(time, session_id, rate)
                        for time, rate in info["app_notifications"]
                    ]
            self.rate_callbacks += blob["rate_callbacks"]
            self.in_flight_packets += blob["in_flight"]
        # Merge the retained notification records, globally time-ordered
        # (stable sort keeps lane order on ties, matching the serial barrier).
        merged = sorted(
            (entry for blob in blobs for entry in blob["log_delta"]),
            key=lambda entry: entry[0],
        )
        recorded_delta = sum(blob["log_recorded"] for blob in blobs)
        for time, session_id, rate in merged:
            self.notification_log.record(time, session_id, rate)
            recorded_delta -= 1
        if recorded_delta > 0 and hasattr(self.notification_log, "_recorded"):
            # Logs that retain nothing (null) still count invocations.
            self.notification_log._recorded += recorded_delta
        self._merge_tracer_deltas([blob["tracer"] for blob in blobs])
        self._sync_due_capacity_changes()

    def _merge_tracer_deltas(self, deltas):
        tracer = self.tracer
        if not getattr(tracer, "enabled", False):
            return
        records = []
        for delta in deltas:
            if delta is None:
                continue
            tracer.total += delta["total"]
            for key, count in delta["by_type"].items():
                tracer.by_type[key] += count
            for key, count in delta["by_session"].items():
                tracer.by_session[key] += count
            tracer.last_packet_time = max(
                tracer.last_packet_time, delta["last_packet_time"]
            )
            records.extend(delta["records"])
            if delta["intervals"] is not None:
                for bucket, counts in delta["intervals"].items():
                    for key, count in counts.items():
                        if count:
                            tracer._interval_counts[bucket][key] += count
        if records:
            records.sort(key=lambda record: record.time)
            tracer.records.extend(records)

    # -------------------------------------------------------------- inspection

    def source(self, session_id):
        """The SourceNode task of a session."""
        return self._sources[session_id]

    def destination(self, session_id):
        """The DestinationNode task of a session."""
        return self._destinations[session_id]

    def router_link(self, endpoints):
        """The RouterLink task controlling the directed link ``endpoints``."""
        return self._router_links[endpoints]

    def router_link_states(self):
        """The :class:`~repro.core.state.LinkState` of every RouterLink task."""
        return [task.state for task in self._router_links.values()]

    def all_link_states(self):
        """Every link state: RouterLinks plus the access links owned by sources
        of currently active sessions."""
        states = list(self.router_link_states())
        for session in self.registry:
            source = self._sources.get(session.session_id)
            if source is not None:
                states.append(source.state)
        return states

    def application(self, session_id):
        return self._applications[session_id]

    def session(self, session_id):
        return self._sessions[session_id]

    # -------------------------------------------------------------- allocation

    def current_allocation(self):
        """The rate each active session currently believes it may use.

        Before a session's first Response this is 0 (B-Neck is conservative:
        transient rates never exceed the final max-min rates).
        """
        allocation = RateAllocation(algebra=self.algebra)
        for session in self.registry:
            source = self._sources[session.session_id]
            allocation.set_rate(session.session_id, source.current_rate())
        return allocation

    def notified_allocation(self):
        """The last ``API.Rate`` value of every active session (0 if none yet)."""
        allocation = RateAllocation(algebra=self.algebra)
        for session in self.registry:
            rate = self._last_rate.get(session.session_id, 0.0)
            allocation.set_rate(session.session_id, rate)
        return allocation

    def active_sessions(self):
        """The currently active sessions (the paper's set ``S``)."""
        return self.registry.active_sessions()

    # --------------------------------------------------------------- execution

    @property
    def quiescent(self):
        """True when no event (packet delivery or pending API call) remains."""
        return self.simulator.pending_events == 0

    def run_until_quiescent(self):
        """Run until the event queue drains; returns the quiescence time."""
        return self.simulator.run_until_quiescent()

    def run(self, until=None, stop_condition=None):
        """Run up to a time horizon (used when mixing with workload schedules)."""
        return self.simulator.run(until=until, stop_condition=stop_condition)

    def __repr__(self):
        return "BNeckProtocol(network=%r, sessions=%d, now=%r)" % (
            self.network.name,
            len(self.registry),
            self.simulator.now,
        )
