"""The B-Neck protocol orchestrator.

:class:`BNeckProtocol` glues the three task types of Section III-C to a
network and a discrete-event simulator:

* it instantiates one :class:`~repro.core.router_link.RouterLinkTask` per
  directed link crossed by some session, one
  :class:`~repro.core.source_node.SourceNodeTask` and one
  :class:`~repro.core.destination_node.DestinationNodeTask` per session;
* it routes packets hop by hop along session paths (downstream) and reverse
  paths (upstream), applying each link's control-packet delay and accounting
  every transmission in a :class:`~repro.simulator.tracing.PacketTracer`;
* it exposes the session API (``join`` / ``leave`` / ``change``), records every
  ``API.Rate`` notification, and provides quiescence and allocation helpers
  used by the experiments and tests.

Notification batching
---------------------

``API.Rate`` deliveries to :class:`~repro.core.api.SessionApplication`
objects are *batched per simulation instant* by default: however many times a
session's rate is renegotiated within one timestamp, the application receives
a single ``deliver_rate`` callback carrying the final value, executed at the
end of the instant through
:meth:`~repro.simulator.simulation.Simulator.call_at_instant_end`.  Batching
never alters the simulation itself (notifications schedule no events), so
packet counts, event counts and final allocations are bit-identical with
batching on or off; only the application-facing callback stream is coalesced.
Pass ``batch_notifications=False`` for the historical synchronous per-packet
delivery.

With nonzero link delays a session's consecutive renegotiations land on
*distinct* instants (each re-probe costs at least a round trip), so
per-instant coalescing alone rarely drops callbacks.  For churn-heavy
experiments, ``notification_batch_window=w`` widens the batch to logical
windows of ``w`` seconds: pending rates are delivered at the next multiple of
``w``, coalescing the whole convergence transient of a churn burst into one
application update per session per window.  Windowed flushes are scheduled as
ordinary simulation events, so (unlike per-instant batching) they are visible
in ``events_processed``, may extend the reported quiescence time by at most
one window, and count against ``Simulator.max_events`` / ``max_time`` caps --
which is why they are opt-in.

The record of ``API.Rate`` invocations is kept in a pluggable *notification
log* (see :mod:`repro.core.notifications`): the default retains everything
(list-compatible via the ``notifications`` attribute); churn-heavy runs can
pass ``notification_log="ring"`` (bounded memory) or ``"null"`` (keep
nothing) without affecting protocol behaviour.
"""

import math

from repro.core.api import RateNotification, SessionApplication
from repro.core.notifications import make_notification_log
from repro.core.destination_node import DestinationNodeTask
from repro.core.router_link import RouterLinkTask
from repro.core.source_node import SourceNodeTask
from repro.fairness.algebra import default_algebra
from repro.fairness.allocation import RateAllocation
from repro.network.routing import PathComputer, path_links
from repro.network.session import Session, SessionRegistry
from repro.simulator.simulation import Simulator
from repro.simulator.tracing import NullPacketTracer, PacketTracer

DOWNSTREAM = "downstream"
UPSTREAM = "upstream"


class _SessionWiring(object):
    """Per-session forwarding table: ordered protocol stages and path links."""

    __slots__ = ("session", "stages", "links", "index_by_key")

    def __init__(self, session, stages, links):
        self.session = session
        self.stages = stages
        self.links = links
        self.index_by_key = {}
        # Stage 0 (the source) is addressed by the access link it owns; stages
        # 1..k by the link their RouterLink controls; the destination by a
        # dedicated key.
        self.index_by_key[links[0].endpoints] = 0
        for position in range(1, len(links)):
            self.index_by_key[links[position].endpoints] = position
        self.index_by_key[("destination", session.session_id)] = len(links)


class BNeckProtocol(object):
    """B-Neck running over a network on a discrete-event simulator.

    Args:
        network: the :class:`~repro.network.graph.Network` to run over.
        simulator: optional simulator (one is created if omitted).
        algebra: optional rate algebra; defaults to tolerance-based floats.
        tracer: optional :class:`~repro.simulator.tracing.PacketTracer`.
        routing_metric: ``"hops"`` (paper default) or ``"delay"``.
        trace_packets: when false (and no explicit ``tracer`` is given) a
            :class:`~repro.simulator.tracing.NullPacketTracer` is installed
            and the per-packet accounting in :meth:`_transmit` is skipped
            entirely -- use for runs that only report times, not counts.
        notification_log: where ``API.Rate`` records are kept -- ``"full"``
            (default, unbounded), ``"ring"`` / ``"ring:N"``, ``"null"``, or a
            log object (see :func:`repro.core.notifications.make_notification_log`).
        batch_notifications: when true (default) application ``API.Rate``
            callbacks are coalesced per simulation instant (see the module
            docstring); when false each ``notify_rate`` call reaches the
            application synchronously.
        notification_batch_window: optional window width (seconds) for
            coalescing across instants; ``None`` (default) batches per
            instant.  Ignored when ``batch_notifications`` is false.
    """

    def __init__(self, network, simulator=None, algebra=None, tracer=None,
                 routing_metric="hops", trace_packets=True,
                 notification_log=None, batch_notifications=True,
                 notification_batch_window=None):
        self.network = network
        self.simulator = simulator or Simulator()
        self.algebra = algebra or default_algebra()
        if tracer is None:
            tracer = PacketTracer() if trace_packets else NullPacketTracer()
        self.tracer = tracer
        # Hoisted once: _transmit runs per packet and must not pay a dynamic
        # getattr there.  Rebind this flag if you ever swap `tracer` later.
        self._trace_packets = getattr(tracer, "enabled", True)
        self.registry = SessionRegistry()
        self.path_computer = PathComputer(network, metric=routing_metric)
        self._router_links = {}
        self._sources = {}
        self._destinations = {}
        self._applications = {}
        self._wirings = {}
        self._sessions = {}
        self._last_rate = {}
        self.notification_log = make_notification_log(notification_log)
        self.batch_notifications = bool(batch_notifications)
        if notification_batch_window is not None and notification_batch_window <= 0:
            raise ValueError(
                "notification_batch_window must be positive, got %r"
                % (notification_batch_window,)
            )
        self.notification_batch_window = notification_batch_window
        self._pending_rates = {}
        self.rate_callbacks = 0
        self.in_flight_packets = 0
        self._session_counter = 0
        self._shard_plan = None
        self._pending_by_shard = None
        self._fork_baseline = None

    # ------------------------------------------------------------------ sharding

    def use_shard_plan(self, plan):
        """Partition this protocol's actors across the plan's shards.

        Requires ``simulator`` to be a
        :class:`~repro.simulator.sharding.ShardedSimulator` and must be called
        before any session joins.  Every RouterLink task created afterwards is
        placed on the shard of its link's transmitting router; SourceNode and
        DestinationNode tasks follow their host's attached router.  Packet
        sends then resolve local vs. remote: same-shard deliveries take the
        usual bare-callback fast path, cross-shard deliveries travel as
        ``(session_id, stage_index, packet)`` descriptors through the
        engine's epoch-batched mailboxes.
        """
        if self._sources or self._router_links:
            raise RuntimeError("use_shard_plan must be called before sessions join")
        simulator = self.simulator
        if not hasattr(simulator, "post_remote"):
            raise TypeError(
                "use_shard_plan needs a ShardedSimulator, got %r" % (simulator,)
            )
        self._shard_plan = plan
        self._pending_by_shard = [dict() for _ in range(plan.num_shards)]
        simulator.remote_handler = self._deliver_remote
        simulator.before_fork = self._snapshot_fork_baseline
        simulator.export_state = self._export_shard_state
        simulator.import_state = self._import_shard_states

    def _deliver_remote(self, descriptor):
        """Deliver a cross-shard packet descriptor to its target stage."""
        session_id, stage_index, packet = descriptor
        self.in_flight_packets -= 1
        self._wirings[session_id].stages[stage_index].receive(packet, None)

    # ------------------------------------------------------------------ sessions

    def create_session(self, source_host, destination_host, demand=math.inf, session_id=None):
        """Build a :class:`~repro.network.session.Session` along the shortest path.

        This only constructs the object; call :meth:`join` to activate it.
        """
        if session_id is None:
            self._session_counter += 1
            session_id = "session-%d" % self._session_counter
        node_path = self.path_computer.route(source_host, destination_host)
        links = path_links(self.network, node_path)
        session = Session(session_id, source_host, destination_host, node_path, links, demand)
        return session

    def join(self, session, at=None, application=None):
        """``API.Join``: activate a session, optionally at a future time.

        Returns the :class:`~repro.core.api.SessionApplication` that will
        receive the session's ``API.Rate`` notifications.
        """
        if session.session_id in self._sessions:
            raise ValueError("session %r already joined" % session.session_id)
        if application is None:
            application = SessionApplication(session.session_id, session.demand)
        self._sessions[session.session_id] = session
        self._applications[session.session_id] = application

        source = SourceNodeTask(self.simulator, self, session, self.algebra)
        destination = DestinationNodeTask(self.simulator, self, session)
        plan = self._shard_plan
        if plan is not None:
            source.place_on_shard(plan.shard_of(session.source))
            destination.place_on_shard(plan.shard_of(session.destination))
        self._sources[session.session_id] = source
        self._destinations[session.session_id] = destination

        stages = [source]
        for link in session.transit_links:
            stages.append(self._router_link_for(link))
        stages.append(destination)
        self._wirings[session.session_id] = _SessionWiring(session, stages, session.links)

        def activate():
            self.registry.add(session)
            source.api_join(session.demand)

        self._schedule_api_call(activate, at, "API.Join", shard=source.shard_id)
        return application

    def leave(self, session_id, at=None):
        """``API.Leave``: terminate an active session, optionally at a future time."""
        source = self._sources[session_id]

        def deactivate():
            if session_id in self.registry:
                self.registry.remove(session_id)
            source.api_leave()

        self._schedule_api_call(deactivate, at, "API.Leave", shard=source.shard_id)

    def change(self, session_id, requested_rate, at=None):
        """``API.Change``: request a new maximum rate, optionally at a future time."""
        source = self._sources[session_id]
        session = self._sessions[session_id]

        def apply_change():
            session.demand = requested_rate
            source.api_change(requested_rate)

        self._schedule_api_call(apply_change, at, "API.Change", shard=source.shard_id)

    def open_session(self, source_host, destination_host, demand=math.inf, session_id=None, at=None):
        """Create and immediately join a session; returns ``(session, application)``."""
        session = self.create_session(source_host, destination_host, demand, session_id)
        application = self.join(session, at=at)
        return session, application

    def _schedule_api_call(self, callback, at, tag, shard=0):
        # Calls with no requested time (or a time already in the past) execute
        # immediately.  A call at exactly ``now`` is *enqueued*, not executed
        # synchronously: it must take its (time, sequence) slot in the event
        # queue so it interleaves deterministically with packet deliveries
        # scheduled at the same instant.  Under a shard plan the call lands on
        # the lane owning the session's source actor.
        if at is None or at < self.simulator.now:
            callback()
        elif self._shard_plan is not None:
            self.simulator.schedule_on(shard, at, callback, tag=tag)
        else:
            self.simulator.schedule_at(at, callback, tag=tag)

    def _router_link_for(self, link):
        key = link.endpoints
        if key not in self._router_links:
            task = RouterLinkTask(self.simulator, self, link, self.algebra)
            if self._shard_plan is not None:
                # The RouterLink actor lives where its link transmits from, so
                # a hop is cross-shard exactly when the link is a cut edge.
                task.place_on_shard(self._shard_plan.shard_of(link.source))
            self._router_links[key] = task
        return self._router_links[key]

    # ---------------------------------------------------------------- forwarding

    def forward_downstream(self, link_id, packet):
        """Deliver ``packet`` to the next stage of its session's path."""
        wiring = self._wirings[packet.session_id]
        index = wiring.index_by_key[link_id]
        crossing = wiring.links[index]
        target = wiring.stages[index + 1]
        self._transmit(packet, crossing, target, DOWNSTREAM, index + 1)

    def forward_upstream(self, link_id, packet):
        """Deliver ``packet`` to the previous stage of its session's path."""
        wiring = self._wirings[packet.session_id]
        index = wiring.index_by_key[link_id]
        if index == 0:
            # The source is the first stage; nothing lies upstream of it.
            return
        crossing = self.network.reverse_link(wiring.links[index - 1])
        target = wiring.stages[index - 1]
        self._transmit(packet, crossing, target, UPSTREAM, index - 1)

    # A RouterLink that originates an Update/Bottleneck for *another* session
    # uses the same routing logic: the packet starts at this link's position in
    # that session's path and travels towards that session's source.
    send_upstream_from = forward_upstream

    def forward_upstream_from_destination(self, session_id, packet):
        """Deliver a packet sent upstream by the destination node."""
        wiring = self._wirings[session_id]
        crossing = self.network.reverse_link(wiring.links[-1])
        target = wiring.stages[-2]
        self._transmit(packet, crossing, target, UPSTREAM, len(wiring.stages) - 2)

    def _transmit(self, packet, link, target, direction, stage_index):
        if self._trace_packets:
            self.tracer.record(
                self.simulator.now,
                packet.type_name,
                packet.session_id,
                link=link.endpoints,
                direction=direction,
            )
        self.in_flight_packets += 1
        simulator = self.simulator

        if self._shard_plan is not None:
            shard = target.shard_id
            if shard != simulator.current_shard:
                # Cross-shard hop: ship a picklable descriptor through the
                # engine's mailbox; it is delivered at the next epoch barrier
                # (or pushed directly while the engine is idle).
                simulator.post_remote(
                    shard,
                    link.control_delay(),
                    (packet.session_id, stage_index, packet),
                    tag=packet.type_name,
                )
                return

        def deliver():
            self.in_flight_packets -= 1
            target.receive(packet, None)

        # Packet deliveries are never cancelled: store the bare callback (no
        # Event handle allocation) on the queue's fast path.
        simulator.schedule_callback(link.control_delay(), deliver, tag=packet.type_name)

    # --------------------------------------------------------------- API.Rate

    @property
    def notifications(self):
        """The retained ``API.Rate`` records (sequence-compatible log)."""
        return self.notification_log

    def notify_rate(self, session_id, rate):
        """Record an ``API.Rate`` invocation and deliver it to the application.

        With ``batch_notifications`` (the default) the application callback is
        deferred to the end of the current simulation instant and coalesced:
        only the last rate a session was notified within the instant reaches
        ``deliver_rate``.  Records, ``last_notified_rate`` and the returned
        notification object always reflect every invocation.
        """
        time = self.simulator.now
        notification = self.notification_log.record(time, session_id, rate)
        self._last_rate[session_id] = rate
        if self.batch_notifications:
            pending = self._current_pending_rates()
            if not pending:
                window = self.notification_batch_window
                if window is None:
                    self.simulator.call_at_instant_end(self._flush_pending_rates)
                else:
                    # Flush at the next window boundary strictly after `now`.
                    boundary = (math.floor(time / window) + 1.0) * window
                    self.simulator.schedule_callback(
                        boundary - time, self._flush_pending_rates, tag="API.Rate.flush"
                    )
            pending[session_id] = rate
        else:
            application = self._applications.get(session_id)
            if application is not None:
                self.rate_callbacks += 1
                application.deliver_rate(time, rate)
        return notification

    def _current_pending_rates(self):
        """The pending-rate buffer of the executing shard (or the global one).

        Under a shard plan each lane coalesces its own sessions' rates, so the
        serial and parallel sharded modes deliver identical batches (a worker
        process only ever sees its own lane's buffer).
        """
        shards = self._pending_by_shard
        if shards is None:
            return self._pending_rates
        shard = self.simulator.current_shard
        return shards[0 if shard is None else shard]

    def _flush_pending_rates(self):
        """End-of-instant hook: deliver one coalesced ``API.Rate`` per session.

        Dict insertion order makes delivery order deterministic: sessions are
        notified in the order of their *first* rate update within the instant,
        each carrying its *final* rate.
        """
        pending = self._current_pending_rates()
        if not pending:
            return
        batch = list(pending.items())
        pending.clear()
        time = self.simulator.now
        applications = self._applications
        delivered = 0
        for session_id, rate in batch:
            application = applications.get(session_id)
            if application is not None:
                delivered += 1
                application.deliver_rate(time, rate)
        self.rate_callbacks += delivered

    def last_notified_rate(self, session_id):
        """The last rate notified to a session (``None`` before the first)."""
        return self._last_rate.get(session_id)

    # ----------------------------------------------- parallel-run state gather
    #
    # A parallel sharded run executes in forked worker processes: each worker
    # owns the authoritative state of its shard's actors, while the driver's
    # copy stays frozen at fork time.  The three hooks below (installed on the
    # engine by :meth:`use_shard_plan`) snapshot counter baselines before the
    # fork, export each worker's per-session outcome and counter *deltas*, and
    # fold everything back into the driver so ``current_allocation``,
    # ``notified_allocation``, validation and packet accounting keep working
    # transparently after the run.  Per-link ``LinkState`` and per-destination
    # diagnostic counters are deliberately not gathered (nothing downstream of
    # a finished run reads them; parallel runs are one-shot).

    def _snapshot_fork_baseline(self):
        tracer = self.tracer
        self._fork_baseline = {
            "rate_callbacks": self.rate_callbacks,
            "in_flight": self.in_flight_packets,
            "log_recorded": self.notification_log.recorded,
            "tracer_total": getattr(tracer, "total", 0),
            "tracer_records": len(getattr(tracer, "records", ())),
            "tracer_by_type": dict(getattr(tracer, "by_type", {})),
            "tracer_by_session": dict(getattr(tracer, "by_session", {})),
            "tracer_intervals": {
                bucket: dict(counts)
                for bucket, counts in getattr(tracer, "_interval_counts", {}).items()
            },
        }

    def _export_shard_state(self, shard_index):
        baseline = self._fork_baseline
        sessions = {}
        for session_id, source in self._sources.items():
            if source.shard_id != shard_index:
                continue
            application = self._applications.get(session_id)
            state = source.state
            sessions[session_id] = {
                "active": session_id in self.registry,
                "rate": state.rate_of(session_id),
                "mu": state.state_of(session_id),
                "demand": self._sessions[session_id].demand,
                "source_demand": source.demand,
                "left": source.left,
                "update_received": source.update_received,
                "bottleneck_received": source.bottleneck_received,
                "last_rate": self._last_rate.get(session_id),
                "app_notifications": (
                    [(n.time, n.rate) for n in application.notifications]
                    if application is not None
                    else None
                ),
            }
        # Records produced during the run are the newest `new_count` retained
        # entries (counting from `recorded`, not positions: a ring log may
        # have evicted pre-fork records, so positional slicing would be off).
        log = self.notification_log
        new_count = log.recorded - baseline["log_recorded"]
        retained = list(log)
        log_delta = [
            (record.time, record.session_id, record.rate)
            for record in retained[max(0, len(retained) - new_count):]
        ] if new_count > 0 else []
        tracer = self.tracer
        blob = {
            "sessions": sessions,
            "rate_callbacks": self.rate_callbacks - baseline["rate_callbacks"],
            "in_flight": self.in_flight_packets - baseline["in_flight"],
            "log_recorded": log.recorded - baseline["log_recorded"],
            "log_delta": log_delta,
            "tracer": None,
        }
        if getattr(tracer, "enabled", False):
            by_type = {
                key: count - baseline["tracer_by_type"].get(key, 0)
                for key, count in tracer.by_type.items()
            }
            by_session = {
                key: count - baseline["tracer_by_session"].get(key, 0)
                for key, count in tracer.by_session.items()
            }
            blob["tracer"] = {
                "total": tracer.total - baseline["tracer_total"],
                "by_type": {k: v for k, v in by_type.items() if v},
                "by_session": {k: v for k, v in by_session.items() if v},
                "last_packet_time": tracer.last_packet_time,
                "records": list(tracer.records[baseline["tracer_records"]:]),
                "intervals": (
                    {
                        bucket: {
                            key: count
                            - baseline["tracer_intervals"].get(bucket, {}).get(key, 0)
                            for key, count in counts.items()
                        }
                        for bucket, counts in tracer._interval_counts.items()
                    }
                    if getattr(tracer, "interval", None) is not None
                    else None
                ),
            }
        return blob

    def _import_shard_states(self, blobs):
        for blob in blobs:
            for session_id, info in blob["sessions"].items():
                source = self._sources[session_id]
                session = self._sessions[session_id]
                session.demand = info["demand"]
                source.demand = info["source_demand"]
                source.left = info["left"]
                source.update_received = info["update_received"]
                source.bottleneck_received = info["bottleneck_received"]
                if info["left"]:
                    source.state.forget(session_id)
                else:
                    if info["rate"] is not None:
                        source.state.set_rate(session_id, info["rate"])
                    source.state.set_state(session_id, info["mu"])
                if info["active"]:
                    if session_id not in self.registry:
                        self.registry.add(session)
                elif session_id in self.registry:
                    self.registry.remove(session_id)
                if info["last_rate"] is not None:
                    self._last_rate[session_id] = info["last_rate"]
                application = self._applications.get(session_id)
                if application is not None and info["app_notifications"]:
                    application.notifications = [
                        RateNotification(time, session_id, rate)
                        for time, rate in info["app_notifications"]
                    ]
            self.rate_callbacks += blob["rate_callbacks"]
            self.in_flight_packets += blob["in_flight"]
        # Merge the retained notification records, globally time-ordered
        # (stable sort keeps lane order on ties, matching the serial barrier).
        merged = sorted(
            (entry for blob in blobs for entry in blob["log_delta"]),
            key=lambda entry: entry[0],
        )
        recorded_delta = sum(blob["log_recorded"] for blob in blobs)
        for time, session_id, rate in merged:
            self.notification_log.record(time, session_id, rate)
            recorded_delta -= 1
        if recorded_delta > 0 and hasattr(self.notification_log, "_recorded"):
            # Logs that retain nothing (null) still count invocations.
            self.notification_log._recorded += recorded_delta
        self._merge_tracer_deltas([blob["tracer"] for blob in blobs])

    def _merge_tracer_deltas(self, deltas):
        tracer = self.tracer
        if not getattr(tracer, "enabled", False):
            return
        records = []
        for delta in deltas:
            if delta is None:
                continue
            tracer.total += delta["total"]
            for key, count in delta["by_type"].items():
                tracer.by_type[key] += count
            for key, count in delta["by_session"].items():
                tracer.by_session[key] += count
            tracer.last_packet_time = max(
                tracer.last_packet_time, delta["last_packet_time"]
            )
            records.extend(delta["records"])
            if delta["intervals"] is not None:
                for bucket, counts in delta["intervals"].items():
                    for key, count in counts.items():
                        if count:
                            tracer._interval_counts[bucket][key] += count
        if records:
            records.sort(key=lambda record: record.time)
            tracer.records.extend(records)

    # -------------------------------------------------------------- inspection

    def source(self, session_id):
        """The SourceNode task of a session."""
        return self._sources[session_id]

    def destination(self, session_id):
        """The DestinationNode task of a session."""
        return self._destinations[session_id]

    def router_link(self, endpoints):
        """The RouterLink task controlling the directed link ``endpoints``."""
        return self._router_links[endpoints]

    def router_link_states(self):
        """The :class:`~repro.core.state.LinkState` of every RouterLink task."""
        return [task.state for task in self._router_links.values()]

    def all_link_states(self):
        """Every link state: RouterLinks plus the access links owned by sources
        of currently active sessions."""
        states = list(self.router_link_states())
        for session in self.registry:
            source = self._sources.get(session.session_id)
            if source is not None:
                states.append(source.state)
        return states

    def application(self, session_id):
        return self._applications[session_id]

    def session(self, session_id):
        return self._sessions[session_id]

    # -------------------------------------------------------------- allocation

    def current_allocation(self):
        """The rate each active session currently believes it may use.

        Before a session's first Response this is 0 (B-Neck is conservative:
        transient rates never exceed the final max-min rates).
        """
        allocation = RateAllocation(algebra=self.algebra)
        for session in self.registry:
            source = self._sources[session.session_id]
            allocation.set_rate(session.session_id, source.current_rate())
        return allocation

    def notified_allocation(self):
        """The last ``API.Rate`` value of every active session (0 if none yet)."""
        allocation = RateAllocation(algebra=self.algebra)
        for session in self.registry:
            rate = self._last_rate.get(session.session_id, 0.0)
            allocation.set_rate(session.session_id, rate)
        return allocation

    def active_sessions(self):
        """The currently active sessions (the paper's set ``S``)."""
        return self.registry.active_sessions()

    # --------------------------------------------------------------- execution

    @property
    def quiescent(self):
        """True when no event (packet delivery or pending API call) remains."""
        return self.simulator.pending_events == 0

    def run_until_quiescent(self):
        """Run until the event queue drains; returns the quiescence time."""
        return self.simulator.run_until_quiescent()

    def run(self, until=None, stop_condition=None):
        """Run up to a time horizon (used when mixing with workload schedules)."""
        return self.simulator.run(until=until, stop_condition=stop_condition)

    def __repr__(self):
        return "BNeckProtocol(network=%r, sessions=%d, now=%r)" % (
            self.network.name,
            len(self.registry),
            self.simulator.now,
        )
