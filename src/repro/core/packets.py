"""The seven B-Neck control packets (Section III-B of the paper).

Every packet carries the id of the session it belongs to.  ``Join``, ``Probe``
and ``Response`` additionally carry the rate estimate ``lambda`` and the id of
the link ``eta`` that imposed the strongest restriction so far; ``Response``
carries the action indicator ``tau`` (one of ``RESPONSE``, ``UPDATE``,
``BOTTLENECK``); ``SetBottleneck`` carries the boolean ``beta`` used to detect
that no link confirmed itself as a bottleneck for the session.

Wire format
-----------

Cross-shard hops in the parallel sharded engine ship packets between worker
processes at every epoch barrier.  Two mechanisms keep that cheap:

* every packet class implements a tuple-based ``__reduce__``, so a pickled
  packet is one memoized class reference plus a flat argument tuple (no
  per-object ``__getstate__`` dance over ``__slots__``);
* :func:`encode_packet` / :func:`decode_packet` go one step further and turn a
  packet into a plain ``(type_code, field...)`` tuple of primitives -- the
  representation the sharded engine's batch-encoded outboxes use, where an
  entire epoch's mail pickles as one list of flat tuples with no packet
  objects on the wire at all.
"""

# Values of the Response packet's tau field.
RESPONSE = "RESPONSE"
UPDATE = "UPDATE"
BOTTLENECK = "BOTTLENECK"

RESPONSE_TYPES = (RESPONSE, UPDATE, BOTTLENECK)


class _Packet(object):
    """Common base: every packet belongs to one session."""

    type_name = "Packet"
    __slots__ = ("session_id",)

    def __init__(self, session_id):
        self.session_id = session_id

    def __repr__(self):
        fields = ", ".join(
            "%s=%r" % (name, getattr(self, name)) for name in self._fields()
        )
        return "%s(%s)" % (self.type_name, fields)

    def _fields(self):
        return ("session_id",)


class Join(_Packet):
    """Sent downstream when a session arrives (``API.Join``).

    Doubles as a Probe: it registers the session at every link of the path
    (adding it to ``R_e``) while gathering the smallest bottleneck-rate
    estimate ``lambda`` and the link ``eta`` that imposed it.
    """

    type_name = "Join"
    __slots__ = ("rate", "restricting_link")

    def __init__(self, session_id, rate, restricting_link):
        super(Join, self).__init__(session_id)
        self.rate = rate
        self.restricting_link = restricting_link

    def __reduce__(self):
        return (Join, (self.session_id, self.rate, self.restricting_link))

    def _fields(self):
        return ("session_id", "rate", "restricting_link")


class Probe(_Packet):
    """Sent downstream whenever the session's rate must be recomputed."""

    type_name = "Probe"
    __slots__ = ("rate", "restricting_link")

    def __init__(self, session_id, rate, restricting_link):
        super(Probe, self).__init__(session_id)
        self.rate = rate
        self.restricting_link = restricting_link

    def __reduce__(self):
        return (Probe, (self.session_id, self.rate, self.restricting_link))

    def _fields(self):
        return ("session_id", "rate", "restricting_link")


class Response(_Packet):
    """Sent upstream by the destination to close a Probe cycle.

    ``tau`` tells the source what to do next: accept the rate (``RESPONSE``),
    accept it as final (``BOTTLENECK``), or start a new Probe cycle
    (``UPDATE``).
    """

    type_name = "Response"
    __slots__ = ("tau", "rate", "restricting_link")

    def __init__(self, session_id, tau, rate, restricting_link):
        if tau not in RESPONSE_TYPES:
            raise ValueError("unknown Response tau %r" % (tau,))
        super(Response, self).__init__(session_id)
        self.tau = tau
        self.rate = rate
        self.restricting_link = restricting_link

    def __reduce__(self):
        return (Response, (self.session_id, self.tau, self.rate, self.restricting_link))

    def _fields(self):
        return ("session_id", "tau", "rate", "restricting_link")


class Update(_Packet):
    """Sent upstream to ask the source to run a new Probe cycle."""

    type_name = "Update"
    __slots__ = ()

    def __reduce__(self):
        return (Update, (self.session_id,))


class Bottleneck(_Packet):
    """Sent upstream to tell the source its current rate is the max-min rate."""

    type_name = "Bottleneck"
    __slots__ = ()

    def __reduce__(self):
        return (Bottleneck, (self.session_id,))


class SetBottleneck(_Packet):
    """Sent downstream by the source once its rate is known to be stable.

    ``found_bottleneck`` (the paper's ``beta``) records whether some link along
    the way confirmed itself as a bottleneck for the session; if it reaches the
    destination still false, the destination answers with an ``Update``.
    """

    type_name = "SetBottleneck"
    __slots__ = ("found_bottleneck",)

    def __init__(self, session_id, found_bottleneck):
        super(SetBottleneck, self).__init__(session_id)
        self.found_bottleneck = bool(found_bottleneck)

    def __reduce__(self):
        return (SetBottleneck, (self.session_id, self.found_bottleneck))

    def _fields(self):
        return ("session_id", "found_bottleneck")


class Leave(_Packet):
    """Sent downstream when a session terminates (``API.Leave``)."""

    type_name = "Leave"
    __slots__ = ()

    def __reduce__(self):
        return (Leave, (self.session_id,))


PACKET_TYPES = (
    Join.type_name,
    Probe.type_name,
    Response.type_name,
    Update.type_name,
    Bottleneck.type_name,
    SetBottleneck.type_name,
    Leave.type_name,
)

# ------------------------------------------------------------------ wire codec
#
# Flat-tuple encoding used by the sharded engine's batch-encoded outboxes:
# ``encode_packet`` maps a packet to ``(type_code, field...)`` built from
# primitives only, and ``decode_packet`` rebuilds the packet through the
# constructor table below.  Codes are positional in ``PACKET_CLASSES`` and are
# part of the (process-internal) wire format, not a public identifier.

PACKET_CLASSES = (Join, Probe, Response, Update, Bottleneck, SetBottleneck, Leave)

_TYPE_CODES = {cls: code for code, cls in enumerate(PACKET_CLASSES)}


def encode_packet(packet):
    """Encode a packet as a flat ``(type_code, constructor_args...)`` tuple."""
    cls, args = packet.__reduce__()
    return (_TYPE_CODES[cls],) + args


def decode_packet(encoded):
    """Rebuild a packet from :func:`encode_packet` output."""
    return PACKET_CLASSES[encoded[0]](*encoded[1:])
