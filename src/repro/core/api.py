"""The session-facing interface of B-Neck.

The paper formalizes the interaction between applications and the protocol
with four primitives:

* ``API.Join(s, r)`` -- session ``s`` joins and requests a maximum rate ``r``;
* ``API.Leave(s)`` -- session ``s`` terminates;
* ``API.Change(s, r)`` -- session ``s`` requests a new maximum rate ``r``;
* ``API.Rate(s, lambda)`` -- the protocol notifies ``s`` of its max-min rate.

The first three are exposed as methods of
:class:`~repro.core.protocol.BNeckProtocol` (``join`` / ``leave`` / ``change``);
``API.Rate`` materialises as :class:`RateNotification` records delivered to a
:class:`SessionApplication`.
"""


class RateNotification(object):
    """One ``API.Rate`` invocation: at ``time`` session ``session_id`` was told ``rate``."""

    __slots__ = ("time", "session_id", "rate")

    def __init__(self, time, session_id, rate):
        self.time = time
        self.session_id = session_id
        self.rate = rate

    def __repr__(self):
        return "RateNotification(t=%r, session=%r, rate=%r)" % (
            self.time,
            self.session_id,
            self.rate,
        )


class SessionApplication(object):
    """The application behind a session.

    Applications are greedy: they want as much rate as possible up to the
    maximum they requested.  The default implementation simply records every
    rate notification; subclasses may override :meth:`on_rate` to react (the
    examples use this to print or to trigger rate changes).
    """

    def __init__(self, session_id, requested_rate):
        self.session_id = session_id
        self.requested_rate = requested_rate
        self.notifications = []

    @property
    def current_rate(self):
        """The last notified rate, or ``None`` before the first notification."""
        if not self.notifications:
            return None
        return self.notifications[-1].rate

    @property
    def notification_count(self):
        return len(self.notifications)

    def deliver_rate(self, time, rate):
        """Called by the protocol when ``API.Rate`` fires for this session."""
        notification = RateNotification(time, self.session_id, rate)
        self.notifications.append(notification)
        self.on_rate(time, rate)
        return notification

    def on_rate(self, time, rate):
        """Hook for subclasses; the default does nothing."""

    def __repr__(self):
        return "SessionApplication(%r, requested=%r, notified=%d)" % (
            self.session_id,
            self.requested_rate,
            len(self.notifications),
        )
