"""Per-link B-Neck protocol state.

For every link ``e`` the protocol keeps (Section III-C):

* ``R_e`` -- sessions believed to be restricted at this link;
* ``F_e`` -- sessions crossing the link but restricted somewhere else;
* per session ``s``: its state ``mu^e_s`` in {IDLE, WAITING_PROBE,
  WAITING_RESPONSE} and its recorded rate ``lambda^e_s`` (meaningful only when
  ``s`` is in ``F_e``, or in ``R_e`` with ``mu^e_s = IDLE``);
* the bottleneck-rate estimate ``B_e = (C_e - sum of F_e rates) / |R_e|``.

The same container is used by the RouterLink task, by the SourceNode task (for
the session's access link) and by the stability checker of Definition 2.
"""

import math

from repro.fairness.algebra import default_algebra

IDLE = "IDLE"
WAITING_PROBE = "WAITING_PROBE"
WAITING_RESPONSE = "WAITING_RESPONSE"

SESSION_STATES = (IDLE, WAITING_PROBE, WAITING_RESPONSE)


class LinkState(object):
    """The B-Neck bookkeeping of one directed link."""

    def __init__(self, link_id, capacity, algebra=None):
        if capacity <= 0:
            raise ValueError("link capacity must be positive, got %r" % capacity)
        self.link_id = link_id
        self.capacity = capacity
        self.algebra = algebra or default_algebra()
        self.restricted = set()        # R_e
        self.unrestricted = set()      # F_e
        self._mu = {}                  # session id -> mu^e_s
        self._rate = {}                # session id -> lambda^e_s
        # Incrementally maintained sum of the F_e rates, so bottleneck_rate()
        # is O(1).  Every mutation of F_e or of an F_e member's rate must go
        # through the mutation methods below to keep it in sync.  Starts at
        # integer zero so exact (Fraction-valued) algebras stay exact.
        self._unrestricted_load = 0

    # --------------------------------------------------------------- queries

    def knows(self, session_id):
        """True when the link keeps state for the session."""
        return session_id in self.restricted or session_id in self.unrestricted

    def sessions(self):
        """All session ids with state at this link."""
        return self.restricted | self.unrestricted

    def state_of(self, session_id):
        """``mu^e_s`` (defaults to IDLE for unknown sessions)."""
        return self._mu.get(session_id, IDLE)

    def rate_of(self, session_id):
        """``lambda^e_s`` (``None`` when the link has not recorded one yet)."""
        return self._rate.get(session_id)

    def is_idle(self, session_id):
        return self.state_of(session_id) == IDLE

    def bottleneck_rate(self):
        """``B_e``; infinite when ``R_e`` is empty (the link restricts nobody)."""
        if not self.restricted:
            return math.inf
        remaining = self.capacity - self._unrestricted_load
        return self.algebra.divide(remaining, len(self.restricted))

    def unrestricted_load(self):
        """The maintained sum of the ``F_e`` rates (unknown rates count as 0)."""
        return self._unrestricted_load

    def unrestricted_rated(self):
        """``(session_id, lambda^e_s)`` for every ``F_e`` member with a rate."""
        rate_table = self._rate
        return [
            (session_id, rate_table[session_id])
            for session_id in self.unrestricted
            if session_id in rate_table
        ]

    def _recomputed_unrestricted_load(self):
        """The F_e load summed from scratch; used by consistency tests."""
        return sum(self._rate.get(session_id, 0.0) for session_id in self.unrestricted)

    # ------------------------------------------------------------- mutations

    def set_state(self, session_id, state):
        if state not in SESSION_STATES:
            raise ValueError("unknown session state %r" % (state,))
        self._mu[session_id] = state

    def set_capacity(self, capacity):
        """Change ``C_e`` (link-capacity dynamics); ``B_e`` follows on its own
        since :meth:`bottleneck_rate` recomputes from the stored capacity."""
        if capacity <= 0 or not math.isfinite(capacity):
            raise ValueError(
                "link capacity must be positive and finite, got %r" % (capacity,)
            )
        self.capacity = capacity

    def set_rate(self, session_id, rate):
        if session_id in self.unrestricted:
            old = self._rate.get(session_id, 0)
            self._unrestricted_load = self._unrestricted_load - old + rate
        self._rate[session_id] = rate

    def add_restricted(self, session_id):
        """Put the session in ``R_e`` (removing it from ``F_e`` if needed)."""
        if session_id in self.unrestricted:
            self.unrestricted.remove(session_id)
            self._drop_unrestricted_rate(session_id)
        self.restricted.add(session_id)

    def add_unrestricted(self, session_id):
        """Put the session in ``F_e`` (removing it from ``R_e`` if needed)."""
        self.restricted.discard(session_id)
        if session_id not in self.unrestricted:
            self.unrestricted.add(session_id)
            self._unrestricted_load += self._rate.get(session_id, 0)

    def forget(self, session_id):
        """Drop every trace of the session (used on ``Leave``)."""
        self.restricted.discard(session_id)
        if session_id in self.unrestricted:
            self.unrestricted.remove(session_id)
            self._drop_unrestricted_rate(session_id)
        self._mu.pop(session_id, None)
        self._rate.pop(session_id, None)

    def _drop_unrestricted_rate(self, session_id):
        if self.unrestricted:
            self._unrestricted_load -= self._rate.get(session_id, 0)
        else:
            # Re-anchor the running sum whenever F_e empties, so rounding
            # residue from long add/remove histories cannot accumulate.
            self._unrestricted_load = 0

    # ------------------------------------------------------- stability checks

    def all_restricted_settled(self):
        """The bottleneck-detection condition of Figure 2, lines 25 and 46:

        every session in ``R_e`` is IDLE and recorded at exactly ``B_e``.
        """
        if not self.restricted:
            return False
        rate = self.bottleneck_rate()
        for session_id in self.restricted:
            if self.state_of(session_id) != IDLE:
                return False
            recorded = self._rate.get(session_id)
            if recorded is None or not self.algebra.equal(recorded, rate):
                return False
        return True

    def is_stable(self):
        """The per-link stability predicate of Definition 2."""
        for session_id in self.sessions():
            if self.state_of(session_id) != IDLE:
                return False
        rate = self.bottleneck_rate()
        for session_id in self.restricted:
            recorded = self._rate.get(session_id)
            if recorded is None or not self.algebra.equal(recorded, rate):
                return False
        if self.restricted:
            for session_id in self.unrestricted:
                recorded = self._rate.get(session_id)
                if recorded is None or not self.algebra.less(recorded, rate):
                    return False
        return True

    def snapshot(self):
        """A plain-dict view used by tests and debugging output."""
        return {
            "link": self.link_id,
            "capacity": self.capacity,
            "restricted": set(self.restricted),
            "unrestricted": set(self.unrestricted),
            "mu": dict(self._mu),
            "rate": dict(self._rate),
            "bottleneck_rate": self.bottleneck_rate(),
        }

    def __repr__(self):
        return "LinkState(%r, |R|=%d, |F|=%d, B=%.4g)" % (
            self.link_id,
            len(self.restricted),
            len(self.unrestricted),
            self.bottleneck_rate() if self.restricted else float("inf"),
        )
