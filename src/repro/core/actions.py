"""Broadcastable session actions: joins, leaves and rate changes as data.

The persistent-worker parallel engine (:mod:`repro.simulator.sharding`) keeps
one process per shard resident across experiment phases.  Phase N+1's schedule
is computed on the driver (where the workload generator and its random streams
live) *after* phase N's quiescence time is known, and must then be replayed
bit-identically in every worker process.  Pre-bound callbacks cannot travel
across a pipe, so the workload layer describes its schedule with the three
action records below -- plain picklable data resolving every random choice
(endpoints, demands, times) on the driver -- and every process replays them
through the same :func:`replay_actions` code path:

* a :class:`JoinAction` attaches one fresh source and one fresh destination
  host, creates the session along the shortest path, and schedules its
  ``API.Join``;
* a :class:`LeaveAction` / :class:`ChangeAction` schedule ``API.Leave`` /
  ``API.Change`` on an existing session;
* a :class:`CapacityChangeAction` schedules a change of one directed link's
  data-plane capacity, after which the owning RouterLink re-runs its
  bottleneck computation (see
  :meth:`repro.core.router_link.RouterLinkTask.capacity_changed`).

Replay is deterministic: host attachment, session creation and API scheduling
happen in action order, so every process pushes the same events in the same
relative order onto the same lanes.  The actions carry tuple-based
``__reduce__`` implementations, keeping their pickles small and cheap (they
ride the same wire as the batch-encoded packet outboxes).

:meth:`repro.core.protocol.BNeckProtocol.apply_actions` is the
engine-transparent entry point: on a sequential or serial-sharded engine it
replays locally; on a persistent-parallel engine it broadcasts the batch to
every worker first.  The module-level :func:`replay_actions` works with any
protocol exposing the shared session API (the baselines included).
"""

import math


class JoinAction(object):
    """``API.Join`` of a new session, with its host attachments.

    ``source_router`` / ``destination_router`` name the (stub) routers the
    fresh hosts attach to; ``host_capacity`` / ``host_delay`` parameterize the
    access links exactly as :class:`~repro.workloads.generator.WorkloadGenerator`
    would.
    """

    kind = "join"
    __slots__ = (
        "session_id",
        "source_router",
        "destination_router",
        "demand",
        "at",
        "host_capacity",
        "host_delay",
    )

    def __init__(self, session_id, source_router, destination_router, demand,
                 at, host_capacity, host_delay):
        self.session_id = session_id
        self.source_router = source_router
        self.destination_router = destination_router
        self.demand = demand
        self.at = at
        self.host_capacity = host_capacity
        self.host_delay = host_delay

    def __reduce__(self):
        return (
            JoinAction,
            (
                self.session_id,
                self.source_router,
                self.destination_router,
                self.demand,
                self.at,
                self.host_capacity,
                self.host_delay,
            ),
        )

    def __repr__(self):
        return "JoinAction(%r, %r -> %r, demand=%r, at=%r)" % (
            self.session_id,
            self.source_router,
            self.destination_router,
            self.demand,
            self.at,
        )


class LeaveAction(object):
    """``API.Leave`` of an active session at an absolute time."""

    kind = "leave"
    __slots__ = ("session_id", "at")

    def __init__(self, session_id, at):
        self.session_id = session_id
        self.at = at

    def __reduce__(self):
        return (LeaveAction, (self.session_id, self.at))

    def __repr__(self):
        return "LeaveAction(%r, at=%r)" % (self.session_id, self.at)


class ChangeAction(object):
    """``API.Change`` of an active session's maximum rate at an absolute time."""

    kind = "change"
    __slots__ = ("session_id", "demand", "at")

    def __init__(self, session_id, demand, at):
        self.session_id = session_id
        self.demand = demand
        self.at = at

    def __reduce__(self):
        return (ChangeAction, (self.session_id, self.demand, self.at))

    def __repr__(self):
        return "ChangeAction(%r, demand=%r, at=%r)" % (
            self.session_id,
            self.demand,
            self.at,
        )


class CapacityChangeAction(object):
    """A change of one directed link's data-plane capacity at an absolute time.

    ``source`` / ``target`` name the directed router-to-router link whose
    ``Ce`` changes to ``capacity`` at time ``at``.  Replay schedules the
    change on the lane owning the link's transmitting router; when it fires,
    the network link is mutated and the RouterLink task (if any session
    crosses the link) re-runs its bottleneck computation so the protocol
    reconverges to the max-min allocation of the updated network.  The link's
    *control* delay is deliberately left at its construction-time value (see
    :meth:`repro.network.graph.Link.set_capacity`).
    """

    kind = "capacity"
    __slots__ = ("source", "target", "capacity", "at")

    def __init__(self, source, target, capacity, at):
        self.source = source
        self.target = target
        self.capacity = capacity
        self.at = at

    def __reduce__(self):
        return (CapacityChangeAction, (self.source, self.target, self.capacity, self.at))

    def __repr__(self):
        return "CapacityChangeAction(%r -> %r, capacity=%r, at=%r)" % (
            self.source,
            self.target,
            self.capacity,
            self.at,
        )


def join_action_from_spec(spec, host_capacity, host_delay):
    """Turn a :class:`~repro.workloads.generator.SessionSpec` into a JoinAction."""
    return JoinAction(
        session_id=spec.session_id,
        source_router=spec.source_router,
        destination_router=spec.destination_router,
        demand=spec.demand,
        at=spec.join_time,
        host_capacity=host_capacity,
        host_delay=host_delay,
    )


def replay_actions(protocol, actions):
    """Apply a batch of session actions to ``protocol``, in order.

    Works with any protocol exposing the shared session API
    (``network`` / ``create_session`` / ``join`` / ``leave`` / ``change``).
    Returns ``{session_id: session}`` for the sessions the join actions
    created, mirroring :meth:`~repro.workloads.generator.WorkloadGenerator.install`.
    """
    network = protocol.network
    joined = {}
    for action in actions:
        kind = action.kind
        if kind == "join":
            source_host = network.attach_host(
                action.source_router, action.host_capacity, action.host_delay
            )
            destination_host = network.attach_host(
                action.destination_router, action.host_capacity, action.host_delay
            )
            session = protocol.create_session(
                source_host.node_id,
                destination_host.node_id,
                demand=action.demand,
                session_id=action.session_id,
            )
            protocol.join(session, at=action.at)
            joined[action.session_id] = session
        elif kind == "leave":
            protocol.leave(action.session_id, at=action.at)
        elif kind == "change":
            protocol.change(action.session_id, action.demand, at=action.at)
        elif kind == "capacity":
            schedule = getattr(protocol, "schedule_capacity_change", None)
            if schedule is None:
                raise ValueError(
                    "protocol %r does not support capacity-change actions "
                    "(only BNeckProtocol re-runs the bottleneck computation "
                    "on a capacity change)" % (protocol,)
                )
            schedule(action)
        else:
            raise ValueError("unknown session action kind %r" % (kind,))
    return joined


def schedule_actions(protocol, actions):
    """Apply an action batch through the protocol's engine-transparent entry.

    Protocols exposing ``apply_actions`` (B-Neck) broadcast the batch to any
    live persistent workers; the baselines -- which share the session API but
    not the sharded machinery -- are replayed directly.
    """
    apply_actions = getattr(protocol, "apply_actions", None)
    if apply_actions is not None:
        return apply_actions(actions)
    return replay_actions(protocol, actions)


def validate_actions(actions):
    """Sanity-check a batch before broadcasting it to worker processes.

    Every action must carry a concrete absolute time: ``at=None`` (meaning
    "right now") is resolved on the driver *before* an action is built,
    because "now" differs between the driver and a worker replaying the
    batch.
    """
    for action in actions:
        if action.kind not in ("join", "leave", "change", "capacity"):
            raise ValueError("unknown session action kind %r" % (action.kind,))
        at = action.at
        if not isinstance(at, (int, float)) or math.isnan(at) or math.isinf(at):
            # An infinite time would livelock the epoch loop: t_min = inf
            # makes every epoch end at inf without ever consuming the event.
            raise ValueError(
                "action %r needs a finite absolute time, got %r" % (action, at)
            )
        if action.kind == "capacity" and not (
            action.capacity > 0 and math.isfinite(action.capacity)
        ):
            raise ValueError(
                "action %r needs a positive finite capacity, got %r"
                % (action, action.capacity)
            )
    return actions
