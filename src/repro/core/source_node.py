"""The SourceNode task (Figure 3 of the paper).

The source node of a session owns the session's *access link* (the dedicated
host-to-router link ``e``): it keeps the same ``R_e``/``F_e``/``mu``/``lambda``
state a RouterLink keeps, but only for its own session, plus

* ``D_s = min(r, C_e)`` -- the effective demand used to start Probe cycles;
* ``update_received`` (the paper's ``upd_rcv``) -- an Update arrived while a
  Probe cycle was in flight, so another cycle must follow;
* ``bottleneck_received`` (the paper's ``bneck_rcv``) -- the session has been
  notified of a (believed) max-min fair rate.

It is the only task that invokes ``API.Rate`` on the application.
"""

from repro.core.packets import (
    BOTTLENECK,
    Bottleneck,
    Join,
    Leave,
    Probe,
    Response,
    SetBottleneck,
    UPDATE,
    Update,
)
from repro.core.state import IDLE, LinkState, WAITING_RESPONSE
from repro.simulator.process import Process


class SourceNodeTask(Process):
    """Runs the B-Neck source algorithm for one session."""

    def __init__(self, simulator, protocol, session, algebra):
        super(SourceNodeTask, self).__init__(simulator, "SN(%s)" % session.session_id)
        self.protocol = protocol
        self.session = session
        self.session_id = session.session_id
        self.access_link = session.access_link
        self.link_id = self.access_link.endpoints
        self.state = LinkState(self.link_id, self.access_link.capacity, algebra)
        self.algebra = algebra
        self.demand = None                # D_s
        self.update_received = False      # upd_rcv_s
        self.bottleneck_received = False  # bneck_rcv_s
        self.left = False

    # ------------------------------------------------------------- properties

    def current_rate(self):
        """The rate the source currently believes it may use (0 before any
        Response has been received).  B-Neck's transient rates are
        conservative, so this is what Experiment 3 samples."""
        rate = self.state.rate_of(self.session_id)
        return 0.0 if rate is None else rate

    def notified_rate(self):
        """The last rate delivered through ``API.Rate`` (None if none yet)."""
        return self.protocol.last_notified_rate(self.session_id)

    def is_quiescent_for_session(self):
        """True when the source is idle and has been told its final rate."""
        return self.state.is_idle(self.session_id) and self.bottleneck_received

    # ------------------------------------------------------------- forwarding

    def _send_downstream(self, packet):
        self.protocol.forward_downstream(self.link_id, packet)

    # ----------------------------------------------------------- API handlers

    def api_join(self, requested_rate):
        """Figure 3, lines 3-6 (``API.Join``)."""
        self.state.add_restricted(self.session_id)
        self.demand = min(requested_rate, self.access_link.capacity)
        # In the paper's "modified system" the effective bandwidth of the
        # access link is D_s = min(r, C_e); the source's link state uses it so
        # that Definition 2 (stability) holds for demand-limited sessions.
        self.state.capacity = self.demand
        self.state.set_state(self.session_id, WAITING_RESPONSE)
        self.update_received = False
        self.bottleneck_received = False
        self._send_downstream(Join(self.session_id, self.demand, self.link_id))

    def api_leave(self):
        """Figure 3, lines 8-9 (``API.Leave``)."""
        self.state.forget(self.session_id)
        self.left = True
        self._send_downstream(Leave(self.session_id))

    def api_change(self, requested_rate):
        """Figure 3, lines 11-18 (``API.Change``)."""
        self.demand = min(requested_rate, self.access_link.capacity)
        self.state.capacity = self.demand
        if self.state.state_of(self.session_id) == IDLE:
            if self.session_id in self.state.unrestricted:
                self.state.add_restricted(self.session_id)
            self.update_received = False
            self.bottleneck_received = False
            self.state.set_state(self.session_id, WAITING_RESPONSE)
            self._send_downstream(Probe(self.session_id, self.demand, self.link_id))
        else:
            self.update_received = True

    # -------------------------------------------------------- packet handlers

    # Packet-type -> unbound handler, built once at class definition time (see
    # the assignment below the handler definitions).
    _DISPATCH = None

    def receive(self, message, sender):
        if self.left:
            # Packets may still be in flight after API.Leave; they concern a
            # session that no longer exists and are dropped.
            return
        handler = self._DISPATCH.get(message.__class__)
        if handler is None:
            raise TypeError("%s cannot handle %r" % (self.name, message))
        handler(self, message)

    def on_update(self, packet):
        """Figure 3, lines 20-25."""
        if self.state.state_of(self.session_id) == IDLE:
            if self.session_id in self.state.unrestricted:
                self.state.add_restricted(self.session_id)
            self.bottleneck_received = False
            self.state.set_state(self.session_id, WAITING_RESPONSE)
            self._send_downstream(Probe(self.session_id, self.demand, self.link_id))
        else:
            self.update_received = True

    def on_bottleneck(self, packet):
        """Figure 3, lines 27-31."""
        if self.state.state_of(self.session_id) == IDLE and not self.bottleneck_received:
            rate = self.state.rate_of(self.session_id)
            self.bottleneck_received = True
            self.protocol.notify_rate(self.session_id, rate)
            demand_is_rate = self.algebra.equal(self.demand, rate)
            if self.algebra.greater(self.demand, rate):
                self.state.add_unrestricted(self.session_id)
            self._send_downstream(SetBottleneck(self.session_id, demand_is_rate))

    def on_response(self, packet):
        """Figure 3, lines 33-47."""
        if packet.tau == UPDATE or self.update_received:
            self.update_received = False
            self.bottleneck_received = False
            self.state.set_state(self.session_id, WAITING_RESPONSE)
            self._send_downstream(Probe(self.session_id, self.demand, self.link_id))
        elif packet.tau == BOTTLENECK:
            self.state.set_rate(self.session_id, packet.rate)
            self.state.set_state(self.session_id, IDLE)
            self.bottleneck_received = True
            self.protocol.notify_rate(self.session_id, packet.rate)
            demand_is_rate = self.algebra.equal(self.demand, packet.rate)
            if self.algebra.greater(self.demand, packet.rate):
                self.state.add_unrestricted(self.session_id)
            self._send_downstream(SetBottleneck(self.session_id, demand_is_rate))
        else:  # tau == RESPONSE
            self.state.set_rate(self.session_id, packet.rate)
            self.state.set_state(self.session_id, IDLE)
            if self.algebra.equal(self.demand, packet.rate):
                self.bottleneck_received = True
                self.protocol.notify_rate(self.session_id, packet.rate)
                self._send_downstream(SetBottleneck(self.session_id, True))


SourceNodeTask._DISPATCH = {
    Update: SourceNodeTask.on_update,
    Bottleneck: SourceNodeTask.on_bottleneck,
    Response: SourceNodeTask.on_response,
}
