"""The RouterLink task (Figure 2 of the paper).

One RouterLink instance controls one directed link and keeps per-session state
for every session whose path crosses the link.  Its handlers are a line-by-line
transcription of Figure 2, with two presentational differences:

* rate comparisons go through the configured
  :class:`~repro.fairness.algebra.RateAlgebra` instead of raw ``==``/``<``;
* packet forwarding is delegated to the protocol orchestrator
  (:class:`~repro.core.protocol.BNeckProtocol`), which knows each session's
  path and the per-hop link delays.
"""

from repro.core.packets import (
    BOTTLENECK,
    Bottleneck,
    Join,
    Leave,
    Probe,
    Response,
    SetBottleneck,
    UPDATE,
    Update,
)
from repro.core.state import IDLE, LinkState, WAITING_PROBE, WAITING_RESPONSE
from repro.simulator.process import Process


class RouterLinkTask(Process):
    """Runs the B-Neck link algorithm for one directed link."""

    def __init__(self, simulator, protocol, link, algebra):
        super(RouterLinkTask, self).__init__(simulator, "RL(%s->%s)" % link.endpoints)
        self.protocol = protocol
        self.link = link
        self.link_id = link.endpoints
        self.state = LinkState(self.link_id, link.capacity, algebra)
        self.algebra = algebra

    # ----------------------------------------------------------- dispatching

    # Packet-type -> unbound handler, built once at class definition time (see
    # the assignment below the handler definitions) so ``receive`` does a
    # single dict lookup per packet instead of rebuilding the table.
    _DISPATCH = None

    def receive(self, message, sender):
        handler = self._DISPATCH.get(message.__class__)
        if handler is None:
            raise TypeError("%s cannot handle %r" % (self.name, message))
        handler(self, message)

    # ----------------------------------------------------- downstream helpers

    def _send_downstream(self, packet):
        self.protocol.forward_downstream(self.link_id, packet)

    def _send_upstream(self, packet):
        self.protocol.forward_upstream(self.link_id, packet)

    def _send_upstream_update(self, session_id):
        """Send an Update for *another* session towards its own source."""
        self.protocol.send_upstream_from(self.link_id, Update(session_id))

    def _send_upstream_bottleneck(self, session_id):
        """Send a Bottleneck for *another* session towards its own source."""
        self.protocol.send_upstream_from(self.link_id, Bottleneck(session_id))

    # -------------------------------------------------- ProcessNewRestricted

    def process_new_restricted(self):
        """Figure 2, lines 4-10.

        Move back into ``R_e`` every session recorded in ``F_e`` whose rate is
        not actually below the current bottleneck rate (highest rates first,
        recomputing ``B_e`` after each move), then ask every settled session in
        ``R_e`` whose recorded rate exceeds ``B_e`` to run a new Probe cycle.
        """
        state = self.state
        algebra = self.algebra
        while True:
            rate = state.bottleneck_rate()
            rated = state.unrestricted_rated()
            offender_rates = [
                recorded
                for _session_id, recorded in rated
                if algebra.greater_equal(recorded, rate)
            ]
            if not offender_rates:
                break
            largest = max(offender_rates)
            # Sorted so the incremental F_e load sum is updated in a
            # reproducible order (set iteration order is hash-randomized).
            moved = sorted(
                session_id
                for session_id, recorded in rated
                if algebra.equal(recorded, largest)
            )
            for session_id in moved:
                state.add_restricted(session_id)

        rate = state.bottleneck_rate()
        for session_id in sorted(state.restricted):
            recorded = state.rate_of(session_id)
            if (
                recorded is not None
                and state.state_of(session_id) == IDLE
                and algebra.greater(recorded, rate)
            ):
                state.set_state(session_id, WAITING_PROBE)
                self._send_upstream_update(session_id)

    # ---------------------------------------------------------------- handlers

    def on_join(self, packet):
        """Figure 2, lines 12-16."""
        state = self.state
        state.add_restricted(packet.session_id)
        state.set_state(packet.session_id, WAITING_RESPONSE)
        self.process_new_restricted()
        rate = state.bottleneck_rate()
        forwarded_rate = packet.rate
        forwarded_eta = packet.restricting_link
        if self.algebra.greater(forwarded_rate, rate):
            forwarded_rate = rate
            forwarded_eta = self.link_id
        self._send_downstream(Join(packet.session_id, forwarded_rate, forwarded_eta))

    def on_probe(self, packet):
        """Figure 2, lines 30-36."""
        state = self.state
        state.set_state(packet.session_id, WAITING_RESPONSE)
        if packet.session_id in state.unrestricted:
            state.add_restricted(packet.session_id)
        self.process_new_restricted()
        rate = state.bottleneck_rate()
        forwarded_rate = packet.rate
        forwarded_eta = packet.restricting_link
        if self.algebra.greater(forwarded_rate, rate):
            forwarded_rate = rate
            forwarded_eta = self.link_id
        self._send_downstream(Probe(packet.session_id, forwarded_rate, forwarded_eta))

    def on_response(self, packet):
        """Figure 2, lines 18-28."""
        state = self.state
        session_id = packet.session_id
        tau = packet.tau
        rate = packet.rate
        eta = packet.restricting_link

        if tau == UPDATE:
            state.set_state(session_id, WAITING_PROBE)
        else:
            local_rate = state.bottleneck_rate()
            restricted_here = eta == self.link_id
            accepted = (
                restricted_here and self.algebra.equal(rate, local_rate)
            ) or (not restricted_here and self.algebra.less_equal(rate, local_rate))
            if accepted:
                state.set_state(session_id, IDLE)
                state.set_rate(session_id, rate)
            else:
                # Either this link believed it was the restriction but its
                # bottleneck rate changed meanwhile, or the rate now exceeds
                # the local bottleneck rate: ask for a new Probe cycle.
                tau = UPDATE
                state.set_state(session_id, WAITING_PROBE)
            if state.all_restricted_settled():
                tau = BOTTLENECK
                eta = self.link_id
                for other_id in sorted(state.restricted):
                    if other_id != session_id:
                        self._send_upstream_bottleneck(other_id)
        self._send_upstream(Response(session_id, tau, rate, eta))

    def on_update(self, packet):
        """Figure 2, lines 38-40."""
        state = self.state
        if state.state_of(packet.session_id) == IDLE:
            state.set_state(packet.session_id, WAITING_PROBE)
            self._send_upstream(Update(packet.session_id))

    def on_bottleneck(self, packet):
        """Figure 2, lines 42-43."""
        state = self.state
        if (
            state.state_of(packet.session_id) == IDLE
            and packet.session_id in state.restricted
        ):
            self._send_upstream(Bottleneck(packet.session_id))

    def on_set_bottleneck(self, packet):
        """Figure 2, lines 45-55."""
        state = self.state
        session_id = packet.session_id
        rate = state.bottleneck_rate()
        recorded = state.rate_of(session_id)

        if state.all_restricted_settled():
            # This link is itself a bottleneck, so a bottleneck exists for the
            # session: forward with beta = TRUE.
            self._send_downstream(SetBottleneck(session_id, True))
            return
        if (
            state.state_of(session_id) == IDLE
            and recorded is not None
            and self.algebra.less(recorded, rate)
        ):
            # The session is not restricted here: move it to F_e and wake the
            # sessions that were settled at the old bottleneck rate, since the
            # recomputed B_e can only grow.
            settled = [
                other_id
                for other_id in sorted(state.restricted)
                if state.state_of(other_id) == IDLE
                and state.rate_of(other_id) is not None
                and self.algebra.equal(state.rate_of(other_id), rate)
            ]
            for other_id in settled:
                state.set_state(other_id, WAITING_PROBE)
                self._send_upstream_update(other_id)
            state.add_unrestricted(session_id)
            self._send_downstream(SetBottleneck(session_id, packet.found_bottleneck))
            return
        if (
            state.state_of(session_id) == IDLE
            and recorded is not None
            and self.algebra.equal(recorded, rate)
        ):
            self._send_downstream(SetBottleneck(session_id, packet.found_bottleneck))
            return
        # Otherwise a new Probe cycle for the session is already under way at
        # this link; the stale SetBottleneck is dropped.

    # --------------------------------------------------- capacity dynamics

    def capacity_changed(self, new_capacity):
        """Re-run the bottleneck computation after ``C_e`` changed mid-flight.

        Not part of Figure 2 -- link-capacity dynamics are an extension -- but
        built entirely from the paper's own repair machinery, so the protocol
        converges back to the max-min allocation of the *updated* network:

        * a capacity drop can pull previously unrestricted sessions back under
          this link's bottleneck rate; :meth:`process_new_restricted` moves
          them from ``F_e`` into ``R_e`` exactly as a new restriction would;
        * every settled session in ``R_e`` then holds a rate computed for the
          old capacity (too high after a drop, too low after a raise), so each
          is asked to run a fresh Probe cycle via an upstream Update -- the
          same wake-up a Leave sends to its co-bottlenecked sessions.

        Sessions already mid-cycle (``WAITING_*``) need no wake-up: their
        in-flight Response is checked against the *new* ``B_e`` when it
        arrives (``on_response`` re-probes on any mismatch).
        """
        state = self.state
        state.set_capacity(new_capacity)
        if not state.restricted and not state.unrestricted:
            return
        if not state.restricted and self.algebra.greater(
            state.unrestricted_load(), new_capacity
        ):
            # With R_e empty, B_e is infinite and process_new_restricted is
            # inert -- yet a deep capacity drop can leave the F_e load alone
            # exceeding C_e.  Seed the recomputation by pulling the
            # largest-rated F_e session back under this link's control
            # (smallest id on ties, for determinism); B_e turns finite and
            # the standard offender cascade below takes over.
            rated = state.unrestricted_rated()
            if rated:
                largest = max(rate for _session_id, rate in rated)
                victim = min(
                    session_id
                    for session_id, rate in rated
                    if self.algebra.equal(rate, largest)
                )
                state.add_restricted(victim)
        self.process_new_restricted()
        rate = state.bottleneck_rate()
        for session_id in sorted(state.restricted):
            if (
                state.state_of(session_id) == IDLE
                and not self.algebra.equal(
                    state.rate_of(session_id) or 0.0, rate
                )
            ):
                state.set_state(session_id, WAITING_PROBE)
                self._send_upstream_update(session_id)

    def on_leave(self, packet):
        """Figure 2, lines 57-62."""
        state = self.state
        session_id = packet.session_id
        rate = state.bottleneck_rate()
        to_update = [
            other_id
            for other_id in sorted(state.restricted)
            if other_id != session_id
            and state.state_of(other_id) == IDLE
            and state.rate_of(other_id) is not None
            and self.algebra.equal(state.rate_of(other_id), rate)
        ]
        state.forget(session_id)
        for other_id in to_update:
            state.set_state(other_id, WAITING_PROBE)
            self._send_upstream_update(other_id)
        self._send_downstream(Leave(session_id))


RouterLinkTask._DISPATCH = {
    Join: RouterLinkTask.on_join,
    Probe: RouterLinkTask.on_probe,
    Response: RouterLinkTask.on_response,
    Update: RouterLinkTask.on_update,
    Bottleneck: RouterLinkTask.on_bottleneck,
    SetBottleneck: RouterLinkTask.on_set_bottleneck,
    Leave: RouterLinkTask.on_leave,
}
