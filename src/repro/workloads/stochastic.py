"""Open-loop stochastic scenarios: sustained churn, flash crowds, capacity dynamics.

Experiment 2 of the paper only exercises compressed five-phase churn bursts.
This module opens the scenario-diversity axis with *open-loop* stochastic
processes -- the workload does not react to protocol state, so an entire
segment of it can be resolved on the driver up front and emitted as plain
:mod:`repro.core.actions` batches:

* :class:`PoissonChurnWorkload` -- Poisson session arrivals with
  exponentially distributed holding times (an M/M/∞-style session process);
* :class:`FlashCrowdWorkload` -- a burst of correlated joins whose
  destinations all land in one stub-domain subtree;
* :class:`HeavyTailedDemandWorkload` -- storms of ``API.Change`` requests
  with Pareto-distributed (heavy-tailed) new demands;
* :class:`CapacityDynamicsWorkload` -- link-capacity degradations and
  recoveries (:class:`~repro.core.actions.CapacityChangeAction`), validated
  against the water-filling oracle at every quiescence point.

The action-broadcast contract
-----------------------------

A workload yields *rounds*: ``(label, actions)`` batches in which every
random choice (endpoints, demands, times, links, factors) has already been
resolved against the driver's seeded random streams, and every action carries
an absolute time at or after the yield-time clock.  Because the batch is
plain data applied through the protocol's engine-transparent
``apply_actions`` entry point, the same scenario replays bit-identically on
the sequential, serial-sharded and persistent-worker parallel engines (the
cross-engine goldens in ``tests/data/cross_engine_goldens.json`` enforce
this).  Rounds are generated lazily: each one anchors at the simulator clock
*after* the previous round reached quiescence, so sustained processes of any
length stay legal for live worker pools (which reject past-dated actions).

:meth:`repro.experiments.runner.ExperimentRunner.run_scenario` drives a
workload end to end -- broadcast a round, run to quiescence, validate against
the centralized/water-filling oracles, repeat -- and
``ScenarioSpec(workload=...)`` names one declaratively (see
``docs/workloads.md`` for the authoring guide).
"""

from repro.core.actions import (
    CapacityChangeAction,
    ChangeAction,
    JoinAction,
    LeaveAction,
    join_action_from_spec,
)
from repro.network.transit_stub import STUB_TIER
from repro.workloads.generator import uniform_demand

#: Registry of named workloads (name -> class), fed by ``@register_workload``.
WORKLOADS = {}


def register_workload(cls):
    """Class decorator: make a workload constructible by its ``name``."""
    if not cls.name:
        raise ValueError("workload %r needs a non-empty `name`" % (cls,))
    WORKLOADS[cls.name] = cls
    return cls


def make_workload(ref, **parameters):
    """Resolve a workload reference into an instance.

    ``ref`` may be an instance (returned as-is; parameters disallowed), a
    workload class, or a registered name like ``"poisson-churn"``.
    """
    if isinstance(ref, StochasticWorkload):
        if parameters:
            raise ValueError(
                "workload %r is already constructed; parameters %r cannot be "
                "applied (pass the name or class instead)"
                % (ref.name, sorted(parameters))
            )
        return ref
    if isinstance(ref, type) and issubclass(ref, StochasticWorkload):
        return ref(**parameters)
    if isinstance(ref, str):
        try:
            cls = WORKLOADS[ref]
        except KeyError:
            raise ValueError(
                "unknown workload %r (registered: %s)" % (ref, sorted(WORKLOADS))
            ) from None
        return cls(**parameters)
    raise TypeError(
        "workload must be a StochasticWorkload, a workload class or a "
        "registered name, got %r" % (ref,)
    )


def destination_subtrees(network):
    """Group the stub routers into their stub-domain 'subtrees'.

    Returns ``{domain_prefix: [router ids]}`` using the transit-stub naming
    scheme (``s<domain>.<sponsor>.<stub>.<node>``).  Teaching topologies
    without a stub tier degrade to one group holding every router.
    """
    domains = {}
    for node in network.routers():
        if node.tier == STUB_TIER:
            domains.setdefault(node.node_id.rsplit(".", 1)[0], []).append(node.node_id)
    if not domains:
        domains["all"] = [node.node_id for node in network.routers()]
    return domains


def crossed_router_links(protocol):
    """The directed router-to-router links crossed by active sessions, sorted.

    This is the interesting candidate set for capacity dynamics: changing an
    uncrossed link's capacity perturbs nothing.  Computed from driver-side
    session paths only, so it is identical on every engine at any quiescence
    point (session membership is part of the bit-identity contract).
    """
    network = protocol.network
    crossed = set()
    for session in protocol.active_sessions():
        for link in session.transit_links:
            source, target = link.endpoints
            if network.node(source).is_router and network.node(target).is_router:
                crossed.add((source, target))
    return sorted(crossed)


class StochasticWorkload(object):
    """Base class: a named generator of broadcastable action rounds.

    Subclasses implement :meth:`rounds`, a *lazy* generator of
    ``(label, actions)`` batches.  Between two yields the caller broadcasts
    the batch and runs the protocol to quiescence, so each round must read
    ``runner.protocol.simulator.now`` afresh and date its actions strictly
    inside the future.  All randomness must come from the runner's generator
    streams (``runner.generator.random_source`` et al.) so a seed pins the
    entire scenario.
    """

    name = None

    def rounds(self, runner):
        raise NotImplementedError

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


@register_workload
class PoissonChurnWorkload(StochasticWorkload):
    """Open-loop Poisson arrivals with exponential holding times.

    Sessions arrive as a Poisson process of rate ``arrival_rate`` (per
    second) over a segment of length ``horizon``; each holds for an
    ``Exp(1/mean_holding)`` duration and leaves.  ``segments`` consecutive
    segments are emitted, each anchored after the previous segment's
    quiescence; a session whose departure falls beyond its segment carries
    its *residual* holding time into the following segments (the
    inter-segment quiescence gap is frozen time for the session process), so
    the population converges toward the M/M/inf steady state
    ``arrival_rate * mean_holding``.  Sessions still holding after the last
    segment remain in service at the measurement point.
    """

    name = "poisson-churn"

    def __init__(
        self,
        arrival_rate=3000.0,
        mean_holding=5e-3,
        horizon=10e-3,
        segments=2,
        demand_low=1e6,
        demand_high=80e6,
        start_offset=1e-4,
    ):
        if arrival_rate <= 0 or mean_holding <= 0 or horizon <= 0:
            raise ValueError("arrival_rate, mean_holding and horizon must be positive")
        if segments < 1:
            raise ValueError("need at least one segment")
        self.arrival_rate = arrival_rate
        self.mean_holding = mean_holding
        self.horizon = horizon
        self.segments = segments
        self.demand_low = demand_low
        self.demand_high = demand_high
        self.start_offset = start_offset

    def rounds(self, runner):
        generator = runner.generator
        rng = generator.random_source
        sampler = uniform_demand(self.demand_low, self.demand_high)
        carried = []  # (session_id, residual holding beyond the previous segment)
        for segment in range(1, self.segments + 1):
            start = runner.protocol.simulator.now + self.start_offset
            end = start + self.horizon
            actions = []
            next_carried = []
            for session_id, residual in carried:
                departure = start + residual
                if departure < end:
                    actions.append(LeaveAction(session_id, departure))
                else:
                    next_carried.append((session_id, departure - end))
            arrivals = 0
            t = start
            while True:
                t += rng.expovariate(self.arrival_rate)
                if t >= end:
                    break
                arrivals += 1
                spec = generator.generate(
                    1,
                    join_window=(t, t),
                    demand_sampler=sampler,
                    prefix="%s%d-" % (self.name, segment),
                )[0]
                actions.append(
                    join_action_from_spec(
                        spec, generator.host_capacity, generator.host_delay
                    )
                )
                departure = t + rng.expovariate(1.0 / self.mean_holding)
                if departure < end:
                    actions.append(LeaveAction(spec.session_id, departure))
                else:
                    next_carried.append((spec.session_id, departure - end))
            carried = next_carried
            yield ("%s segment %d (%d arrivals)" % (self.name, segment, arrivals), actions)


@register_workload
class FlashCrowdWorkload(StochasticWorkload):
    """A flash crowd: many correlated joins onto one destination subtree.

    A base population joins first; then ``crowd_size`` sessions arrive within
    a ``crowd_window`` burst, every destination attached inside a single
    randomly chosen stub domain (the 'subtree' under one sponsoring transit
    router) while sources stay uniform -- the hot-spot pattern that
    concentrates load on the domain's gateway links.  With ``depart`` the
    crowd drains away in a final round, returning the network to its base
    allocation.
    """

    name = "flash-crowd"

    def __init__(
        self,
        base_sessions=20,
        crowd_size=40,
        crowd_window=2e-4,
        base_window=1e-3,
        demand_low=1e6,
        demand_high=80e6,
        depart=True,
        start_offset=1e-4,
    ):
        if base_sessions < 0 or crowd_size < 1:
            raise ValueError("need a non-negative base and at least one crowd session")
        self.base_sessions = base_sessions
        self.crowd_size = crowd_size
        self.crowd_window = crowd_window
        self.base_window = base_window
        self.demand_low = demand_low
        self.demand_high = demand_high
        self.depart = depart
        self.start_offset = start_offset

    def rounds(self, runner):
        generator = runner.generator
        rng = generator.random_source
        sampler = uniform_demand(self.demand_low, self.demand_high)

        if self.base_sessions:
            start = runner.protocol.simulator.now + self.start_offset
            specs = generator.generate(
                self.base_sessions,
                join_window=(start, start + self.base_window),
                demand_sampler=sampler,
                prefix="%s-base-" % self.name,
            )
            actions = [
                join_action_from_spec(spec, generator.host_capacity, generator.host_delay)
                for spec in specs
            ]
            yield ("%s base population (%d)" % (self.name, self.base_sessions), actions)

        subtrees = destination_subtrees(runner.network)
        subtree = rng.choice(sorted(subtrees))
        targets = subtrees[subtree]
        start = runner.protocol.simulator.now + self.start_offset
        crowd_ids = []
        actions = []
        for index in range(1, self.crowd_size + 1):
            destination = rng.choice(targets)
            sources = [
                router
                for router in generator.attachment_routers
                if router != destination
            ]
            session_id = "%s-crowd-%d" % (self.name, index)
            crowd_ids.append(session_id)
            actions.append(
                JoinAction(
                    session_id=session_id,
                    source_router=rng.choice(sources),
                    destination_router=destination,
                    demand=sampler(rng),
                    at=rng.uniform(start, start + self.crowd_window),
                    host_capacity=generator.host_capacity,
                    host_delay=generator.host_delay,
                )
            )
        yield (
            "%s crowd of %d onto subtree %s" % (self.name, self.crowd_size, subtree),
            actions,
        )

        if self.depart:
            start = runner.protocol.simulator.now + self.start_offset
            times = generator.random_times(
                len(crowd_ids), (start, start + self.base_window)
            )
            actions = [
                LeaveAction(session_id, when)
                for session_id, when in zip(crowd_ids, times)
            ]
            yield ("%s crowd departs" % self.name, actions)


@register_workload
class HeavyTailedDemandWorkload(StochasticWorkload):
    """Storms of rate changes with Pareto (heavy-tailed) new demands.

    A fixed population joins with uniform demands; then each of ``bursts``
    rounds re-negotiates ``changes_per_burst`` distinct sessions to demands
    drawn from ``scale * Pareto(alpha)`` (clamped to the host access
    capacity).  With ``alpha <= 2`` the demand distribution has infinite
    variance: most changes are small, a few are enormous -- the elephant/mice
    mix that shifts bottlenecks between bursts.
    """

    name = "heavy-tailed-demand"

    def __init__(
        self,
        sessions=30,
        bursts=2,
        changes_per_burst=20,
        alpha=1.5,
        scale=2e6,
        window=1e-3,
        demand_low=1e6,
        demand_high=40e6,
        start_offset=1e-4,
    ):
        if changes_per_burst > sessions:
            raise ValueError(
                "changes_per_burst (%d) cannot exceed the population (%d): "
                "changes pick distinct sessions" % (changes_per_burst, sessions)
            )
        if alpha <= 0 or scale <= 0:
            raise ValueError("alpha and scale must be positive")
        self.sessions = sessions
        self.bursts = bursts
        self.changes_per_burst = changes_per_burst
        self.alpha = alpha
        self.scale = scale
        self.window = window
        self.demand_low = demand_low
        self.demand_high = demand_high
        self.start_offset = start_offset

    def rounds(self, runner):
        generator = runner.generator
        rng = generator.random_source
        sampler = uniform_demand(self.demand_low, self.demand_high)

        start = runner.protocol.simulator.now + self.start_offset
        specs = generator.generate(
            self.sessions,
            join_window=(start, start + self.window),
            demand_sampler=sampler,
            prefix="%s-" % self.name,
        )
        population = [spec.session_id for spec in specs]
        actions = [
            join_action_from_spec(spec, generator.host_capacity, generator.host_delay)
            for spec in specs
        ]
        yield ("%s population (%d)" % (self.name, self.sessions), actions)

        for burst in range(1, self.bursts + 1):
            start = runner.protocol.simulator.now + self.start_offset
            victims = generator.pick_sessions(population, self.changes_per_burst)
            times = generator.random_times(
                len(victims), (start, start + self.window)
            )
            actions = []
            for session_id, when in zip(victims, times):
                demand = min(
                    self.scale * rng.paretovariate(self.alpha),
                    generator.host_capacity,
                )
                actions.append(ChangeAction(session_id, demand, when))
            yield ("%s burst %d (%d changes)" % (self.name, burst, len(actions)), actions)


@register_workload
class CapacityDynamicsWorkload(StochasticWorkload):
    """Link-capacity degradations and recovery under a live population.

    After a population joins, each of ``events`` rounds picks one directed
    router-to-router link currently crossed by active sessions and rescales
    its capacity (both directions) by a factor drawn from
    ``[factor_low, factor_high]`` of the link's *original* bandwidth --
    modelling partial degradation (factors < 1) or upgrades (factors > 1).
    Every event is followed by a quiescence point where the allocation is
    validated against the water-filling oracle on the *updated* capacities;
    a final round (``restore``) returns every touched link to its original
    bandwidth and validates once more.
    """

    name = "capacity-dynamics"

    def __init__(
        self,
        sessions=30,
        events=3,
        factor_low=0.08,
        factor_high=0.5,
        restore=True,
        window=1e-3,
        demand_low=1e6,
        demand_high=80e6,
        start_offset=1e-4,
    ):
        if events < 1:
            raise ValueError("need at least one capacity event")
        if factor_low <= 0 or factor_high < factor_low:
            raise ValueError("need 0 < factor_low <= factor_high")
        self.sessions = sessions
        self.events = events
        self.factor_low = factor_low
        self.factor_high = factor_high
        self.restore = restore
        self.window = window
        self.demand_low = demand_low
        self.demand_high = demand_high
        self.start_offset = start_offset

    def rounds(self, runner):
        generator = runner.generator
        rng = generator.random_source
        sampler = uniform_demand(self.demand_low, self.demand_high)

        start = runner.protocol.simulator.now + self.start_offset
        specs = generator.generate(
            self.sessions,
            join_window=(start, start + self.window),
            demand_sampler=sampler,
            prefix="%s-" % self.name,
        )
        actions = [
            join_action_from_spec(spec, generator.host_capacity, generator.host_delay)
            for spec in specs
        ]
        yield ("%s population (%d)" % (self.name, self.sessions), actions)

        # Original bandwidth per *directed* link, recorded for both directions
        # the first time an event touches their pair: every cut scales each
        # direction from its own first-seen capacity (so reverse-direction
        # picks in later events never compound on an already-cut value, and
        # asymmetric per-direction bandwidths are preserved), and the restore
        # round undoes exactly these recordings.
        originals = {}
        network = runner.network
        for event in range(1, self.events + 1):
            candidates = crossed_router_links(runner.protocol)
            if not candidates:
                break
            source, target = rng.choice(candidates)
            for endpoints in ((source, target), (target, source)):
                if endpoints not in originals:
                    originals[endpoints] = network.link(*endpoints).capacity
            factor = rng.uniform(self.factor_low, self.factor_high)
            at = runner.protocol.simulator.now + self.start_offset
            actions = [
                CapacityChangeAction(
                    source, target, originals[(source, target)] * factor, at
                ),
                CapacityChangeAction(
                    target, source, originals[(target, source)] * factor, at
                ),
            ]
            yield (
                "%s event %d: %s->%s x%.2f" % (self.name, event, source, target, factor),
                actions,
            )

        if self.restore and originals:
            at = runner.protocol.simulator.now + self.start_offset
            actions = [
                CapacityChangeAction(source, target, capacity, at)
                for (source, target), capacity in sorted(originals.items())
            ]
            yield (
                "%s restore (%d links)" % (self.name, len(originals) // 2),
                actions,
            )
