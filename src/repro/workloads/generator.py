"""Random session populations.

Sessions in the evaluation are "created by choosing a source and a destination
node, uniformly at random among all the network hosts", each host sources at
most one session, and hosts hang off stub routers.  The generator reproduces
this by attaching one fresh source host and one fresh destination host (both on
uniformly chosen stub routers) per session.

Demands are drawn from a *demand sampler*: a callable taking the random source
and returning a maximum requested rate (possibly infinite).
"""

import math

from repro.core.actions import join_action_from_spec, schedule_actions
from repro.network.transit_stub import HOST_LINK_CAPACITY, HOST_LINK_DELAY, stub_routers
from repro.simulator.random_source import RandomSource


def infinite_demand():
    """Demand sampler: every session requests an unbounded rate."""

    def sample(random_source):
        return math.inf

    return sample


def uniform_demand(low, high):
    """Demand sampler: demands drawn uniformly from ``[low, high]`` (bits/s)."""
    if low <= 0 or high < low:
        raise ValueError("need 0 < low <= high")

    def sample(random_source):
        return random_source.uniform(low, high)

    return sample


def mixed_demand(infinite_fraction, low, high):
    """Demand sampler: a fraction of sessions is unbounded, the rest uniform."""
    if not 0.0 <= infinite_fraction <= 1.0:
        raise ValueError("infinite_fraction must be in [0, 1]")
    bounded = uniform_demand(low, high)

    def sample(random_source):
        if random_source.random() < infinite_fraction:
            return math.inf
        return bounded(random_source)

    return sample


class SessionSpec(object):
    """A session to be created: endpoints (routers), demand and join time."""

    __slots__ = ("session_id", "source_router", "destination_router", "demand", "join_time")

    def __init__(self, session_id, source_router, destination_router, demand, join_time):
        self.session_id = session_id
        self.source_router = source_router
        self.destination_router = destination_router
        self.demand = demand
        self.join_time = join_time

    def __repr__(self):
        return "SessionSpec(%r, %r -> %r, demand=%r, t=%r)" % (
            self.session_id,
            self.source_router,
            self.destination_router,
            self.demand,
            self.join_time,
        )


class WorkloadGenerator(object):
    """Generates and installs random session populations on a protocol.

    The same generator drives :class:`~repro.core.protocol.BNeckProtocol` and
    the baselines, since they share the ``create_session`` / ``join`` /
    ``leave`` / ``change`` API.
    """

    def __init__(
        self,
        network,
        seed=0,
        host_capacity=HOST_LINK_CAPACITY,
        host_delay=HOST_LINK_DELAY,
        attachment_routers=None,
    ):
        self.network = network
        self.random_source = RandomSource(seed).fork("workload")
        self.host_capacity = host_capacity
        self.host_delay = host_delay
        if attachment_routers is None:
            attachment_routers = stub_routers(network)
            if not attachment_routers:
                attachment_routers = [node.node_id for node in network.routers()]
        if len(attachment_routers) < 2:
            raise ValueError("need at least two routers to attach hosts to")
        self.attachment_routers = list(attachment_routers)
        self._spec_counter = 0

    # ------------------------------------------------------------ generation

    def generate(self, count, join_window=(0.0, 1e-3), demand_sampler=None, prefix="s"):
        """Generate ``count`` session specs joining inside ``join_window``."""
        if demand_sampler is None:
            demand_sampler = infinite_demand()
        start, end = join_window
        if end < start:
            raise ValueError("join_window end must not precede its start")
        specs = []
        for _ in range(count):
            self._spec_counter += 1
            source_router, destination_router = self.random_source.pair(self.attachment_routers)
            specs.append(
                SessionSpec(
                    session_id="%s%d" % (prefix, self._spec_counter),
                    source_router=source_router,
                    destination_router=destination_router,
                    demand=demand_sampler(self.random_source),
                    join_time=self.random_source.uniform(start, end),
                )
            )
        return specs

    # ---------------------------------------------------------- installation

    def install(self, protocol, specs):
        """Attach hosts, create the sessions and schedule their joins.

        Specs are converted into :class:`~repro.core.actions.JoinAction`
        records and applied through the protocol's engine-transparent entry
        point (one code path with the persistent-parallel broadcast
        machinery, so schedules stay bit-identical however a session is
        installed).  Returns ``{session_id: session}`` for the installed
        specs.
        """
        actions = [
            join_action_from_spec(spec, self.host_capacity, self.host_delay)
            for spec in specs
        ]
        return schedule_actions(protocol, actions)

    def populate(self, protocol, count, join_window=(0.0, 1e-3), demand_sampler=None, prefix="s"):
        """``generate`` + ``install`` in one call; returns ``{session_id: session}``."""
        specs = self.generate(count, join_window, demand_sampler, prefix)
        return self.install(protocol, specs)

    # -------------------------------------------------------------- dynamics

    def pick_sessions(self, session_ids, count, clamp=False):
        """Choose ``count`` distinct sessions to act on (leave / change).

        Asking for more sessions than the population holds is an error by
        default -- silently shrinking the sample used to under-report churn.
        Pass ``clamp=True`` for best-effort sampling (the phase machinery does,
        and records the shortfall in
        :attr:`~repro.workloads.dynamics.PhaseOutcome.shortfalls`).
        """
        session_ids = list(session_ids)
        if count > len(session_ids):
            if not clamp:
                raise ValueError(
                    "cannot pick %d sessions from a population of %d; shrink "
                    "the request or pass clamp=True to sample best-effort"
                    % (count, len(session_ids))
                )
            count = len(session_ids)
        return self.random_source.sample(session_ids, count)

    def random_times(self, count, window):
        """``count`` action times drawn uniformly from ``window``."""
        start, end = window
        if end < start:
            # An inverted window used to emit times *outside* the phase,
            # which schedule_actions then scheduled in the past.
            raise ValueError(
                "random_times window start %r exceeds its end %r; pass the "
                "window as (start, end) with start <= end" % (start, end)
            )
        return [self.random_source.uniform(start, end) for _ in range(count)]

    def random_demand(self, demand_sampler=None):
        if demand_sampler is None:
            demand_sampler = infinite_demand()
        return demand_sampler(self.random_source)
