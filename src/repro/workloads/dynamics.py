"""Session dynamics: phases of joins, leaves and rate changes.

Experiment 2 of the paper subjects a quiescent B-Neck to five consecutive
phases of churn (mass join, mass leave, mass rate change, another mass join,
and a mixed phase), each phase compressed into a one-millisecond window, and
measures how long the protocol takes to become quiescent again.  A
:class:`DynamicPhase` describes one such phase; :func:`apply_phase` schedules
its actions on a protocol and reports a :class:`PhaseOutcome`.

A phase's schedule is emitted as *broadcastable actions*
(:mod:`repro.core.actions`), not pre-bound callbacks: :func:`phase_actions`
resolves every random choice (who leaves, who changes, new demands, action
times, join endpoints) against the generator's random streams on the driver,
producing plain data records.  :func:`apply_phase` then hands the batch to the
protocol's engine-transparent ``apply_actions`` entry point -- on the
persistent-worker parallel engine the batch is replayed identically in every
worker process, which is what lets multi-phase churn (phase N+1 scheduled
after phase N's observed quiescence time) run on all cores.
"""

import math

from repro.core.actions import (
    ChangeAction,
    LeaveAction,
    join_action_from_spec,
    schedule_actions,
)


class DynamicPhase(object):
    """One phase of session churn.

    Attributes:
        name: label used in reports ("join", "leave", "change", "mixed", ...).
        joins: number of sessions that join during the phase window.
        leaves: number of active sessions that leave.
        changes: number of active sessions that change their maximum rate.
        window: length (seconds) of the burst at the beginning of the phase.
    """

    def __init__(self, name, joins=0, leaves=0, changes=0, window=1e-3):
        if min(joins, leaves, changes) < 0:
            raise ValueError("phase action counts must be non-negative")
        if window <= 0:
            raise ValueError("phase window must be positive")
        self.name = name
        self.joins = joins
        self.leaves = leaves
        self.changes = changes
        self.window = window

    def total_actions(self):
        return self.joins + self.leaves + self.changes

    def __repr__(self):
        return "DynamicPhase(%r, joins=%d, leaves=%d, changes=%d, window=%r)" % (
            self.name,
            self.joins,
            self.leaves,
            self.changes,
            self.window,
        )


class PhaseOutcome(object):
    """What happened during one phase: membership changes and quiescence timing."""

    def __init__(
        self,
        phase,
        start_time,
        quiescence_time,
        joined_ids,
        left_ids,
        changed_ids,
        packets_before,
        packets_after,
        active_after,
        rate_callbacks=0,
        shortfalls=None,
    ):
        self.phase = phase
        self.start_time = start_time
        self.quiescence_time = quiescence_time
        self.joined_ids = joined_ids
        self.left_ids = left_ids
        self.changed_ids = changed_ids
        self.packets_before = packets_before
        self.packets_after = packets_after
        self.active_after = active_after
        self.rate_callbacks = rate_callbacks
        # {"leaves"|"changes": (requested, applied)} for phases that asked for
        # more victims than the live population could supply (empty otherwise).
        self.shortfalls = {} if shortfalls is None else shortfalls

    @property
    def duration(self):
        """Time from the start of the phase until quiescence."""
        return self.quiescence_time - self.start_time

    @property
    def packets(self):
        """Control packets transmitted during the phase."""
        return self.packets_after - self.packets_before

    def __repr__(self):
        return "PhaseOutcome(%r, duration=%.4g s, packets=%d, active=%d)" % (
            self.phase.name,
            self.duration,
            self.packets,
            self.active_after,
        )


def phase_actions(
    generator,
    phase,
    active_ids,
    start_time,
    demand_sampler=None,
    change_demand_sampler=None,
):
    """Resolve one churn phase into a broadcastable action batch.

    Consumes the generator's random streams exactly as the historical
    callback-scheduling implementation did (victim picks, then leave times,
    then change times, then per-change demands, then join specs), so
    fixed-seed schedules are bit-identical to earlier releases.

    Returns ``(actions, joined_ids, left_ids, changed_ids, remaining_ids,
    shortfalls)`` where ``actions`` is ordered leaves, changes, joins -- the
    order they must be applied in -- ``remaining_ids`` are the previously
    active sessions that did not leave, and ``shortfalls`` records any
    phase request the live population could not supply
    (``{"leaves"|"changes": (requested, applied)}``; empty when every request
    was met).  Shortfalls are *surfaced*, not fatal: the sample is clamped to
    the population, but the caller can see exactly how much churn was lost.
    """
    if change_demand_sampler is None:
        change_demand_sampler = demand_sampler
    active_ids = list(active_ids)
    window = (start_time, start_time + phase.window)

    left_ids = (
        generator.pick_sessions(active_ids, phase.leaves, clamp=True)
        if phase.leaves
        else []
    )
    left = set(left_ids)
    remaining = [session_id for session_id in active_ids if session_id not in left]
    changed_ids = (
        generator.pick_sessions(remaining, phase.changes, clamp=True)
        if phase.changes
        else []
    )
    shortfalls = {}
    if len(left_ids) < phase.leaves:
        shortfalls["leaves"] = (phase.leaves, len(left_ids))
    if len(changed_ids) < phase.changes:
        shortfalls["changes"] = (phase.changes, len(changed_ids))

    actions = []
    for session_id, when in zip(left_ids, generator.random_times(len(left_ids), window)):
        actions.append(LeaveAction(session_id, when))
    for session_id, when in zip(changed_ids, generator.random_times(len(changed_ids), window)):
        new_demand = generator.random_demand(change_demand_sampler)
        if math.isinf(new_demand):
            new_demand = generator.host_capacity
        actions.append(ChangeAction(session_id, new_demand, when))

    joined_ids = []
    if phase.joins:
        specs = generator.generate(
            phase.joins,
            join_window=window,
            demand_sampler=demand_sampler,
            prefix="%s-" % phase.name,
        )
        for spec in specs:
            actions.append(
                join_action_from_spec(spec, generator.host_capacity, generator.host_delay)
            )
        joined_ids = [spec.session_id for spec in specs]

    return actions, joined_ids, left_ids, changed_ids, remaining, shortfalls


def apply_phase(
    protocol,
    generator,
    phase,
    active_ids,
    start_time=None,
    demand_sampler=None,
    change_demand_sampler=None,
    run_to_quiescence=True,
):
    """Schedule one phase of churn on ``protocol`` and (optionally) run it out.

    The phase is resolved into broadcastable actions by :func:`phase_actions`
    and applied through the protocol's engine-transparent ``apply_actions``
    entry point, so the same call works on the sequential, serial-sharded and
    persistent-worker parallel engines.

    Args:
        protocol: a :class:`~repro.core.protocol.BNeckProtocol` (or a baseline
            with the same API, in which case ``run_to_quiescence`` must be
            False since baselines never drain their event queue).
        generator: the :class:`~repro.workloads.generator.WorkloadGenerator`
            that created the existing population (reused for endpoints,
            demands and random choices).
        phase: the :class:`DynamicPhase` to apply.
        active_ids: iterable of currently active session ids.
        start_time: phase start (defaults to the protocol's current time).
        demand_sampler: demands of newly joining sessions.
        change_demand_sampler: new demands for rate-change actions (defaults to
            ``demand_sampler``).
        run_to_quiescence: run the simulator until it drains after scheduling.

    Returns:
        A :class:`PhaseOutcome`; ``outcome.active_after`` is the updated count
        of active sessions, and the joined/left/changed id lists let callers
        maintain their own membership.
    """
    if start_time is None:
        start_time = protocol.simulator.now
    packets_before = protocol.tracer.total
    # B-Neck counts delivered application callbacks; baselines have no such
    # counter and report 0.
    callbacks_before = getattr(protocol, "rate_callbacks", 0)

    actions, joined_ids, left_ids, changed_ids, remaining, shortfalls = phase_actions(
        generator,
        phase,
        active_ids,
        start_time,
        demand_sampler=demand_sampler,
        change_demand_sampler=change_demand_sampler,
    )
    schedule_actions(protocol, actions)

    quiescence_time = start_time
    if run_to_quiescence:
        quiescence_time = protocol.run_until_quiescent()

    active_after = len(remaining) + len(joined_ids)
    return PhaseOutcome(
        phase=phase,
        start_time=start_time,
        quiescence_time=quiescence_time,
        joined_ids=joined_ids,
        left_ids=left_ids,
        changed_ids=changed_ids,
        packets_before=packets_before,
        packets_after=protocol.tracer.total,
        active_after=active_after,
        rate_callbacks=getattr(protocol, "rate_callbacks", 0) - callbacks_before,
        shortfalls=shortfalls,
    )
