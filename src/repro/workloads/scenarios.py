"""Named evaluation scenarios: network size x delay model.

The paper evaluates B-Neck on three transit-stub topologies (Small, Medium,
Big) in two delay flavours (LAN: 1 microsecond everywhere; WAN: 1-10 ms between
routers).  A :class:`NetworkScenario` bundles those choices with a seed so the
experiment harnesses can enumerate them declaratively.
"""

from repro.network.transit_stub import (
    BIG_PARAMETERS,
    LAN,
    MEDIUM_PARAMETERS,
    PAPER_BIG_PARAMETERS,
    PAPER_MEDIUM_PARAMETERS,
    SMALL_PARAMETERS,
    WAN,
    generate_transit_stub,
)

NETWORK_SIZES = {
    "small": SMALL_PARAMETERS,
    "medium": MEDIUM_PARAMETERS,
    "big": BIG_PARAMETERS,
    # The paper's full-scale Medium/Big parameter sets, for users willing to
    # wait (see DESIGN.md on scaling).
    "paper-medium": PAPER_MEDIUM_PARAMETERS,
    "paper-big": PAPER_BIG_PARAMETERS,
}

DELAY_SCENARIOS = (LAN, WAN)


class NetworkScenario(object):
    """A named evaluation setting: topology size, delay model and seed."""

    def __init__(self, size="small", delay_model=LAN, seed=0):
        if size not in NETWORK_SIZES:
            raise ValueError(
                "unknown network size %r (expected one of %s)" % (size, sorted(NETWORK_SIZES))
            )
        if delay_model not in DELAY_SCENARIOS:
            raise ValueError("unknown delay model %r" % (delay_model,))
        self.size = size
        self.delay_model = delay_model
        self.seed = seed

    @property
    def label(self):
        return "%s-%s" % (self.size, self.delay_model)

    def parameters(self):
        return NETWORK_SIZES[self.size]

    def build(self):
        """Generate the transit-stub network of this scenario."""
        return generate_transit_stub(
            self.parameters(),
            scenario=self.delay_model,
            seed=self.seed,
            name=self.label,
        )

    def __repr__(self):
        return "NetworkScenario(size=%r, delay_model=%r, seed=%d)" % (
            self.size,
            self.delay_model,
            self.seed,
        )


def build_network(size="small", delay_model=LAN, seed=0):
    """Shorthand for ``NetworkScenario(size, delay_model, seed).build()``."""
    return NetworkScenario(size, delay_model, seed).build()
