"""Workload generation: networks, session populations and dynamics.

The evaluation of the paper is driven by three ingredients, which this package
provides as reusable building blocks:

* :mod:`~repro.workloads.scenarios` -- the Small/Medium/Big transit-stub
  networks in their LAN and WAN flavours;
* :mod:`~repro.workloads.generator` -- populations of sessions with random
  endpoints (uniform over stub routers), random demands and random join times
  inside a window;
* :mod:`~repro.workloads.dynamics` -- phases of joins, leaves and rate changes
  (the churn patterns of Experiments 2 and 3);
* :mod:`~repro.workloads.stochastic` -- open-loop stochastic scenarios
  (Poisson churn, flash crowds, heavy-tailed demand storms, link-capacity
  dynamics), emitted as broadcastable action batches that replay identically
  on every execution engine.
"""

from repro.workloads.dynamics import DynamicPhase, PhaseOutcome, apply_phase
from repro.workloads.generator import (
    SessionSpec,
    WorkloadGenerator,
    infinite_demand,
    mixed_demand,
    uniform_demand,
)
from repro.network.transit_stub import HOST_LINK_CAPACITY, HOST_LINK_DELAY
from repro.workloads.scenarios import (
    NETWORK_SIZES,
    NetworkScenario,
    build_network,
)
from repro.workloads.stochastic import (
    WORKLOADS,
    CapacityDynamicsWorkload,
    FlashCrowdWorkload,
    HeavyTailedDemandWorkload,
    PoissonChurnWorkload,
    StochasticWorkload,
    make_workload,
    register_workload,
)

__all__ = [
    "CapacityDynamicsWorkload",
    "DynamicPhase",
    "FlashCrowdWorkload",
    "HeavyTailedDemandWorkload",
    "HOST_LINK_CAPACITY",
    "HOST_LINK_DELAY",
    "NETWORK_SIZES",
    "NetworkScenario",
    "PhaseOutcome",
    "PoissonChurnWorkload",
    "SessionSpec",
    "StochasticWorkload",
    "WORKLOADS",
    "WorkloadGenerator",
    "apply_phase",
    "build_network",
    "infinite_demand",
    "make_workload",
    "mixed_demand",
    "register_workload",
    "uniform_demand",
]
