"""Non-quiescent baseline protocols used in the paper's Experiment 3.

The paper compares B-Neck against three representatives of the non-quiescent
max-min fair protocol families:

* **BFYZ** (Bartal, Farach-Colton, Yooseph, Zhang) -- explicit-rate protocols
  that keep *per-session state* at every router
  (:class:`~repro.baselines.bfyz.BFYZProtocol`);
* **CG** (Cobb, Gouda) -- stabilizing protocols that keep only *constant state*
  at every router (:class:`~repro.baselines.cg.CGProtocol`);
* **RCP** (Dukkipati et al.) -- router-assisted congestion controllers that
  compute a single per-link rate from aggregate measurements
  (:class:`~repro.baselines.rcp.RCPProtocol`).

All three share the same structure (:mod:`~repro.baselines.base`): every
session's source periodically performs a probe cycle along its path, every link
answers with an advertised rate, and the source adopts the smallest advertised
rate -- forever, because none of these protocols can detect convergence.  That
continuous control traffic is exactly the behaviour the B-Neck paper contrasts
against (Figures 7 and 8).
"""

from repro.baselines.base import BaselineProtocol, LinkController, ProbeCycleResult
from repro.baselines.bfyz import BFYZProtocol
from repro.baselines.cg import CGProtocol
from repro.baselines.rcp import RCPProtocol

__all__ = [
    "BFYZProtocol",
    "BaselineProtocol",
    "CGProtocol",
    "LinkController",
    "ProbeCycleResult",
    "RCPProtocol",
]
