"""CG-style baseline: stabilizing max-min allocation with constant router state.

Cobb and Gouda (*Stabilization of max-min fair networks without per-flow
state*) compute max-min fair rates keeping only a constant amount of state per
router.  This module implements a protocol in that spirit:

* each link keeps only an advertised fair share, a session counter and an
  aggregate of the rates of sessions it believes are restricted elsewhere --
  all constant-size state, refreshed from the probes of the last control
  interval;
* at every control interval the advertised share moves a *fraction* of the way
  towards the share implied by the last interval's aggregate observations
  (the damping is what makes the scheme stabilizing rather than oscillating).

The damped updates make convergence slow when many sessions interact, which
reproduces the paper's observation that CG "did not converge to the solution in
the time allocated when more than 500 sessions were considered".
"""

from repro.baselines.base import BaselineProtocol, LinkController


class ConstantStateController(LinkController):
    """Constant-state link controller with damped share updates."""

    def __init__(self, link, algebra, gain=0.25):
        super(ConstantStateController, self).__init__(link, algebra)
        self.gain = gain
        self.advertised = link.capacity
        # Aggregates observed during the current control interval (reset at
        # every periodic update): number of probing sessions, and the count and
        # rate-sum of those that appear restricted below the advertised share.
        self._probe_count = 0
        self._restricted_count = 0
        self._restricted_sum = 0.0

    def on_probe(self, session_id, demand, current_rate):
        self._probe_count += 1
        bound = min(demand, current_rate) if current_rate > 0.0 else demand
        if bound < self.advertised * (1.0 - 1e-6):
            self._restricted_count += 1
            self._restricted_sum += min(bound, self.link.capacity)
        return self.advertised

    def periodic_update(self, crossing_rates, interval):
        observed = max(self._probe_count, len(crossing_rates))
        if observed == 0:
            target = self.link.capacity
        else:
            unrestricted = observed - self._restricted_count
            if unrestricted <= 0:
                target = self.link.capacity / observed
            else:
                target = (self.link.capacity - self._restricted_sum) / unrestricted
        target = min(max(target, 0.0), self.link.capacity)
        self.advertised += self.gain * (target - self.advertised)
        self._probe_count = 0
        self._restricted_count = 0
        self._restricted_sum = 0.0


class CGProtocol(BaselineProtocol):
    """The CG-family baseline (constant state, non-quiescent, slow to converge)."""

    name = "cg"
    uses_per_session_state = False
    needs_periodic_updates = True

    def __init__(self, network, gain=0.25, **kwargs):
        super(CGProtocol, self).__init__(network, **kwargs)
        self.gain = gain

    def _make_controller(self, link):
        return ConstantStateController(link, self.algebra, gain=self.gain)
