"""BFYZ-style baseline: explicit-rate allocation with per-session router state.

The paper uses BFYZ (Bartal, Farach-Colton, Yooseph, Zhang, *Fast, fair and
frugal bandwidth allocation in ATM networks*) as the representative of the
family of ATM/ABR explicit-rate protocols that keep per-session information at
every router (Charny et al., Hou et al., ...).  This module implements the
family's common core, a *consistent marking* link computation:

* every link records, for each session crossing it, the rate the session last
  reported;
* the link's advertised rate ``A`` is the water-filling share of its capacity
  among the recorded sessions, i.e. the fixed point of
  ``A = (C - sum of recorded rates below A) / |{recorded rates >= A}|``;
* a probing session is granted ``min`` of the advertised rates on its path and
  adopts that rate at the end of the probe cycle.

The protocol converges to the max-min fair rates but

* it keeps probing forever (it cannot detect convergence), and
* during transients it *over*-estimates: a session keeps transmitting at the
  rate granted by an earlier, less loaded configuration until its next probe
  cycle, so links can be temporarily overloaded -- exactly the behaviour
  Figure 7 of the paper contrasts with B-Neck's conservative transients.
"""

from repro.baselines.base import BaselineProtocol, LinkController


class ConsistentMarkingController(LinkController):
    """Per-session-state link controller computing the water-filling share."""

    def __init__(self, link, algebra):
        super(ConsistentMarkingController, self).__init__(link, algebra)
        self.recorded = {}

    def advertised_rate(self):
        """The consistent-marking fair share of this link.

        Sessions whose recorded rate is below the share are treated as
        restricted elsewhere and their rate is subtracted from the capacity;
        the remainder is split evenly among the others.
        """
        if not self.recorded:
            return self.link.capacity
        rates = sorted(self.recorded.values())
        capacity = self.link.capacity
        total = len(rates)
        marked_sum = 0.0
        marked_count = 0
        share = capacity / total
        for rate in rates:
            if rate < share:
                # This session cannot use its even share; release the surplus
                # to the remaining sessions and move the threshold up.
                marked_sum += rate
                marked_count += 1
                remaining = total - marked_count
                if remaining == 0:
                    return capacity - marked_sum + rate
                share = (capacity - marked_sum) / remaining
            else:
                break
        return share

    def on_probe(self, session_id, demand, current_rate):
        # The probe reports the rate the session is currently using (its
        # demand on the very first cycle); recording that value -- and not the
        # rate granted here -- is what lets the link discover that the session
        # is restricted at another link and release the surplus.
        reported = current_rate if current_rate > 0.0 else demand
        self.recorded[session_id] = min(reported, self.link.capacity)
        return self.advertised_rate()

    def on_leave(self, session_id):
        self.recorded.pop(session_id, None)


class BFYZProtocol(BaselineProtocol):
    """The BFYZ-family baseline (per-session state, non-quiescent)."""

    name = "bfyz"
    uses_per_session_state = True

    def _make_controller(self, link):
        return ConsistentMarkingController(link, self.algebra)
