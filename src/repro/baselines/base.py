"""Common scaffolding of the non-quiescent baseline protocols.

All three baselines (BFYZ, CG, RCP) follow the same loop:

1. every ``probe_interval`` seconds each session's source emits a control
   packet that travels to the destination and back;
2. every link on the forward path processes the packet through its
   :class:`LinkController` and may lower the packet's explicit rate;
3. when the packet returns, the source adopts the explicit rate (capped by its
   own demand) and schedules the next probe.

Because none of these protocols can detect that the allocation has converged,
the probing never stops: the control-packet rate is constant over time, which
is the defining contrast with B-Neck (Figure 8 of the paper).

Two simulation simplifications keep large sweeps tractable (documented in
DESIGN.md): a whole probe cycle's link updates are applied in one atomic event
at the emission time (per-hop timestamps are still used for packet accounting),
and the source's rate update fires one path round-trip-time later.  Both are
negligible at the LAN delays used by Experiment 3.
"""

import math

from repro.fairness.algebra import default_algebra
from repro.fairness.allocation import RateAllocation
from repro.network.routing import PathComputer, path_links
from repro.network.session import Session, SessionRegistry
from repro.simulator.simulation import Simulator
from repro.simulator.tracing import NullPacketTracer, PacketTracer

PROBE_PACKET = "Probe"
RESPONSE_PACKET = "Response"


class LinkController(object):
    """Per-link state and rate computation of one baseline protocol."""

    def __init__(self, link, algebra):
        self.link = link
        self.algebra = algebra

    def on_probe(self, session_id, demand, current_rate):
        """Process a forward probe; return the rate this link advertises to the session."""
        raise NotImplementedError

    def on_leave(self, session_id):
        """Forget any per-session state (constant-state controllers ignore this)."""

    def periodic_update(self, crossing_rates, interval):
        """Periodic (per control interval) recomputation from aggregate load.

        ``crossing_rates`` is the list of current rates of the sessions
        crossing this link; controllers that only react to probes ignore it.
        """


class ProbeCycleResult(object):
    """Outcome of one probe cycle: the granted rate and the cycle's RTT."""

    __slots__ = ("session_id", "granted_rate", "round_trip_time")

    def __init__(self, session_id, granted_rate, round_trip_time):
        self.session_id = session_id
        self.granted_rate = granted_rate
        self.round_trip_time = round_trip_time

    def __repr__(self):
        return "ProbeCycleResult(%r, rate=%.4g, rtt=%.3g)" % (
            self.session_id,
            self.granted_rate,
            self.round_trip_time,
        )


class BaselineProtocol(object):
    """A periodically probing, non-quiescent rate allocation protocol.

    Subclasses provide :meth:`_make_controller` returning the protocol-specific
    :class:`LinkController`.  The public session API mirrors
    :class:`~repro.core.protocol.BNeckProtocol` (``create_session`` / ``join`` /
    ``leave`` / ``change`` / ``current_allocation``), so the experiment
    harnesses and the workload generator drive both interchangeably.
    """

    name = "baseline"
    uses_per_session_state = False
    # Controllers that recompute their advertised rate from aggregate load
    # (RCP, CG) need a periodic per-link control loop in addition to probes.
    needs_periodic_updates = False

    def __init__(
        self,
        network,
        simulator=None,
        algebra=None,
        tracer=None,
        probe_interval=1e-3,
        routing_metric="hops",
        trace_packets=True,
    ):
        self.network = network
        self.simulator = simulator or Simulator()
        self.algebra = algebra or default_algebra()
        if tracer is None:
            # Same opt-out contract as BNeckProtocol: time-only runs skip the
            # per-packet accounting entirely.
            tracer = PacketTracer() if trace_packets else NullPacketTracer()
        self.tracer = tracer
        self._trace_packets = getattr(tracer, "enabled", True)
        self.probe_interval = probe_interval
        self.registry = SessionRegistry()
        self.path_computer = PathComputer(network, metric=routing_metric)
        self._controllers = {}
        self._sessions = {}
        self._rates = {}
        self._demands = {}
        self._active = set()
        self._session_counter = 0
        self.probe_cycles = 0
        self._ticking = False

    # ----------------------------------------------------------- controllers

    def _make_controller(self, link):
        raise NotImplementedError

    def _controller_for(self, link):
        key = link.endpoints
        if key not in self._controllers:
            self._controllers[key] = self._make_controller(link)
        return self._controllers[key]

    # --------------------------------------------------------------- sessions

    def create_session(self, source_host, destination_host, demand=math.inf, session_id=None):
        """Build a session along the shortest path (same contract as B-Neck)."""
        if session_id is None:
            self._session_counter += 1
            session_id = "%s-session-%d" % (self.name, self._session_counter)
        node_path = self.path_computer.route(source_host, destination_host)
        links = path_links(self.network, node_path)
        return Session(session_id, source_host, destination_host, node_path, links, demand)

    def join(self, session, at=None, application=None):
        """Activate a session and start its periodic probe loop."""
        if session.session_id in self._sessions:
            raise ValueError("session %r already joined" % session.session_id)
        self._sessions[session.session_id] = session

        def activate():
            self.registry.add(session)
            self._active.add(session.session_id)
            self._demands[session.session_id] = session.effective_demand()
            self._rates[session.session_id] = 0.0
            self._ensure_periodic_updates()
            self._probe(session.session_id)

        self._schedule_api_call(activate, at)
        return application

    def leave(self, session_id, at=None):
        """Deactivate a session; its pending probes stop rescheduling."""

        def deactivate():
            if session_id in self.registry:
                self.registry.remove(session_id)
            self._active.discard(session_id)
            self._rates.pop(session_id, None)
            session = self._sessions[session_id]
            for link in session.links:
                controller = self._controllers.get(link.endpoints)
                if controller is not None:
                    controller.on_leave(session_id)

        self._schedule_api_call(deactivate, at)

    def change(self, session_id, requested_rate, at=None):
        """Change a session's maximum requested rate."""

        def apply_change():
            session = self._sessions[session_id]
            session.demand = requested_rate
            self._demands[session_id] = session.effective_demand()

        self._schedule_api_call(apply_change, at)

    def open_session(self, source_host, destination_host, demand=math.inf, session_id=None, at=None):
        """Create and immediately join a session; returns ``(session, None)``."""
        session = self.create_session(source_host, destination_host, demand, session_id)
        self.join(session, at=at)
        return session, None

    def _schedule_api_call(self, callback, at):
        # Same discipline as BNeckProtocol: a call at exactly ``now`` is
        # enqueued so it takes a deterministic (time, sequence) slot instead
        # of running synchronously ahead of same-instant events.
        if at is None or at < self.simulator.now:
            callback()
        else:
            self.simulator.schedule_at(at, callback, tag="%s.api" % self.name)

    # ------------------------------------------------------------ probe cycle

    def _probe(self, session_id):
        if session_id not in self._active:
            return
        session = self._sessions[session_id]
        demand = self._demands[session_id]
        current = self._rates.get(session_id, 0.0)
        now = self.simulator.now
        self.probe_cycles += 1

        tracer = self.tracer
        trace = self._trace_packets
        granted = demand
        elapsed = 0.0
        for link in session.links:
            elapsed += link.control_delay()
            if trace:
                tracer.record(
                    now + elapsed, PROBE_PACKET, session_id, link=link.endpoints, direction="downstream"
                )
            controller = self._controller_for(link)
            advertised = controller.on_probe(session_id, demand, current)
            if advertised < granted:
                granted = advertised
        for link in reversed(session.links):
            reverse = self.network.reverse_link(link)
            elapsed += reverse.control_delay()
            if trace:
                tracer.record(
                    now + elapsed, RESPONSE_PACKET, session_id, link=reverse.endpoints, direction="upstream"
                )
        round_trip = elapsed
        result = ProbeCycleResult(session_id, max(granted, 0.0), round_trip)

        def complete():
            self._complete_probe(result)

        self.simulator.schedule(round_trip, complete, tag="%s.response" % self.name)

    def _complete_probe(self, result):
        session_id = result.session_id
        if session_id not in self._active:
            return
        self._rates[session_id] = min(result.granted_rate, self._demands[session_id])
        remaining = max(self.probe_interval - result.round_trip_time, 0.0)
        self.simulator.schedule(
            remaining, lambda: self._probe(session_id), tag="%s.probe" % self.name
        )

    # ------------------------------------------------------ periodic updates

    def _ensure_periodic_updates(self):
        """Start the per-link control loop (RCP and CG controllers) once."""
        if not self.needs_periodic_updates or self._ticking:
            return
        self._ticking = True
        interval = self.probe_interval
        self.simulator.schedule(
            interval, lambda: self._periodic_tick(interval), tag="%s.tick" % self.name
        )

    def _periodic_tick(self, interval):
        if not self._active:
            # The loop stops when every session has left; it restarts on the
            # next join.
            self._ticking = False
            return
        rates_by_link = {}
        for session in self.registry:
            rate = self._rates.get(session.session_id, 0.0)
            for link in session.links:
                rates_by_link.setdefault(link.endpoints, []).append(rate)
        for key, controller in self._controllers.items():
            controller.periodic_update(rates_by_link.get(key, []), interval)
        self.simulator.schedule(
            interval, lambda: self._periodic_tick(interval), tag="%s.tick" % self.name
        )

    # ---------------------------------------------------------------- results

    def current_allocation(self):
        """The rate each active session is currently using."""
        allocation = RateAllocation(algebra=self.algebra)
        for session in self.registry:
            allocation.set_rate(session.session_id, self._rates.get(session.session_id, 0.0))
        return allocation

    def active_sessions(self):
        return self.registry.active_sessions()

    def run(self, until=None, stop_condition=None):
        """Run to a horizon.  Baselines never become quiescent on their own."""
        return self.simulator.run(until=until, stop_condition=stop_condition)

    def __repr__(self):
        return "%s(network=%r, sessions=%d, now=%r)" % (
            type(self).__name__,
            self.network.name,
            len(self.registry),
            self.simulator.now,
        )
