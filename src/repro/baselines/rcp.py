"""RCP-style baseline: router-assisted processor-sharing rate control.

RCP (Dukkipati et al., *Processor sharing flows in the Internet*) is the
paper's representative of modern explicit congestion controllers that keep no
per-session state: every router link maintains a single advertised rate
``R(t)`` updated from aggregate measurements,

    R(t) = R(t - T) * (1 + (T / d) * alpha * (C - y(t)) / C)

where ``y(t)`` is the aggregate arrival rate at the link over the last control
interval ``T`` and ``d`` the average round-trip time.  Sessions periodically
learn ``min R`` over their path and transmit at that rate.  (The queue-draining
term of the full RCP law is dropped: this is a control-plane simulation without
packet queues.)

Like BFYZ and CG, RCP never stops sending control traffic, and with many
interacting sessions its multiplicative updates converge slowly -- the paper
observed no convergence in the allotted time beyond 500 sessions.
"""

from repro.baselines.base import BaselineProtocol, LinkController


class RCPLinkController(LinkController):
    """Single-rate link controller implementing the (queue-less) RCP law."""

    def __init__(self, link, algebra, alpha=0.4, average_rtt=1e-3, minimum_fraction=1e-4):
        super(RCPLinkController, self).__init__(link, algebra)
        self.alpha = alpha
        self.average_rtt = average_rtt
        self.minimum_rate = minimum_fraction * link.capacity
        self.advertised = link.capacity

    def on_probe(self, session_id, demand, current_rate):
        return self.advertised

    def periodic_update(self, crossing_rates, interval):
        capacity = self.link.capacity
        aggregate = sum(crossing_rates)
        spare_fraction = (capacity - aggregate) / capacity
        factor = 1.0 + (interval / self.average_rtt) * self.alpha * spare_fraction
        # Keep the advertised rate within sane bounds: multiplicative updates
        # must neither collapse to zero nor explode past the capacity.
        factor = max(factor, 0.1)
        self.advertised = min(max(self.advertised * factor, self.minimum_rate), capacity)


class RCPProtocol(BaselineProtocol):
    """The RCP baseline (no per-session state, non-quiescent)."""

    name = "rcp"
    uses_per_session_state = False
    needs_periodic_updates = True

    def __init__(self, network, alpha=0.4, **kwargs):
        super(RCPProtocol, self).__init__(network, **kwargs)
        self.alpha = alpha

    def _make_controller(self, link):
        return RCPLinkController(
            link, self.algebra, alpha=self.alpha, average_rtt=self.probe_interval
        )
