"""Directed network graph: nodes (routers and hosts) and links.

The model follows Section II of the paper:

* the network is a simple directed graph ``G = (V, E)``;
* connected nodes have links in both directions;
* every link has its own bandwidth and propagation delay;
* hosts hang off routers through dedicated access links, and each host is the
  source of at most one session.
"""

import math

ROUTER = "router"
HOST = "host"

# Transmission delay of one control packet.  The paper assumes control traffic
# does not consume data bandwidth but models transmission and propagation
# times; a B-Neck control packet carries a session id, a rate and a link id,
# which we size at 64 bytes.
DEFAULT_CONTROL_PACKET_BITS = 512.0


class Node(object):
    """A vertex of the network graph: a router or a host."""

    __slots__ = ("node_id", "kind", "tier", "attached_router")

    def __init__(self, node_id, kind, tier=None, attached_router=None):
        if kind not in (ROUTER, HOST):
            raise ValueError("unknown node kind %r" % kind)
        self.node_id = node_id
        self.kind = kind
        self.tier = tier
        self.attached_router = attached_router

    @property
    def is_router(self):
        return self.kind == ROUTER

    @property
    def is_host(self):
        return self.kind == HOST

    def __repr__(self):
        return "Node(%r, %s)" % (self.node_id, self.kind)

    def __hash__(self):
        return hash(self.node_id)

    def __eq__(self, other):
        return isinstance(other, Node) and self.node_id == other.node_id


class Link(object):
    """A directed link with a bandwidth and a propagation delay.

    Attributes:
        source: node id of the transmitting end.
        target: node id of the receiving end.
        capacity: bandwidth available to data traffic, in bits per second
            (``Ce`` in the paper).
        propagation_delay: one-way propagation delay in seconds.
        control_packet_bits: size used to compute the transmission delay of a
            control packet.
    """

    __slots__ = (
        "source",
        "target",
        "capacity",
        "propagation_delay",
        "control_packet_bits",
        "_control_delay",
    )

    def __init__(
        self,
        source,
        target,
        capacity,
        propagation_delay,
        control_packet_bits=DEFAULT_CONTROL_PACKET_BITS,
    ):
        if capacity <= 0:
            raise ValueError("link capacity must be positive, got %r" % capacity)
        if propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        self.source = source
        self.target = target
        self.capacity = capacity
        self.propagation_delay = propagation_delay
        self.control_packet_bits = control_packet_bits
        # The per-packet control delay is computed once instead of on every
        # transmission.  It is *pinned* at the construction-time capacity even
        # when `set_capacity` later changes the data-plane bandwidth: the
        # paper's control traffic does not consume data bandwidth, and a fixed
        # control delay keeps the sharded engines' lookahead bound (min
        # cut-link control delay, computed at partition time) valid under
        # capacity dynamics.
        self._control_delay = propagation_delay + control_packet_bits / capacity

    @property
    def endpoints(self):
        return (self.source, self.target)

    def control_delay(self):
        """One-way delay experienced by a control packet on this link."""
        return self._control_delay

    def set_capacity(self, capacity):
        """Change the data-plane bandwidth ``Ce`` of this link.

        Only the capacity used by the fairness computation changes; the
        control-packet delay keeps its construction-time value (see the
        comment in ``__init__``).  Callers driving a live protocol should go
        through :meth:`repro.core.protocol.BNeckProtocol.change_capacity`
        (or a broadcast :class:`~repro.core.actions.CapacityChangeAction`),
        which also re-runs the bottleneck computation at the affected
        RouterLink.
        """
        if capacity <= 0 or not math.isfinite(capacity):
            raise ValueError(
                "link capacity must be positive and finite, got %r" % (capacity,)
            )
        self.capacity = capacity

    def __repr__(self):
        return "Link(%r -> %r, capacity=%.3g, prop=%.3g)" % (
            self.source,
            self.target,
            self.capacity,
            self.propagation_delay,
        )

    def __hash__(self):
        return hash((self.source, self.target))

    def __eq__(self, other):
        return (
            isinstance(other, Link)
            and self.source == other.source
            and self.target == other.target
        )


class Network(object):
    """A simple directed graph of routers, hosts and links."""

    def __init__(self, name="network"):
        self.name = name
        self._nodes = {}
        self._links = {}
        self._adjacency = {}
        self._host_counter = 0

    # ------------------------------------------------------------------ nodes

    def add_router(self, node_id, tier=None):
        """Add a router node and return it."""
        return self._add_node(Node(node_id, ROUTER, tier=tier))

    def add_host(self, node_id, attached_router=None):
        """Add a host node and return it."""
        return self._add_node(Node(node_id, HOST, attached_router=attached_router))

    def _add_node(self, node):
        if node.node_id in self._nodes:
            raise ValueError("duplicate node id %r" % (node.node_id,))
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = []
        return node

    def node(self, node_id):
        """Return the node with the given id (raises ``KeyError`` if absent)."""
        return self._nodes[node_id]

    def has_node(self, node_id):
        return node_id in self._nodes

    def nodes(self):
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    def routers(self):
        """All router nodes."""
        return [node for node in self._nodes.values() if node.is_router]

    def hosts(self):
        """All host nodes."""
        return [node for node in self._nodes.values() if node.is_host]

    # ------------------------------------------------------------------ links

    def add_link(
        self,
        source,
        target,
        capacity,
        propagation_delay,
        bidirectional=True,
        control_packet_bits=DEFAULT_CONTROL_PACKET_BITS,
    ):
        """Add a link (and, by default, its reverse) and return the forward link.

        Section II: "Connected nodes have links in both directions", so
        ``bidirectional=True`` is the default.
        """
        forward = self._add_directed_link(
            source, target, capacity, propagation_delay, control_packet_bits
        )
        if bidirectional and (target, source) not in self._links:
            self._add_directed_link(
                target, source, capacity, propagation_delay, control_packet_bits
            )
        return forward

    def _add_directed_link(self, source, target, capacity, propagation_delay, control_bits):
        if source not in self._nodes or target not in self._nodes:
            raise KeyError("both endpoints must exist before adding a link")
        if source == target:
            raise ValueError("self-loops are not allowed (node %r)" % (source,))
        key = (source, target)
        if key in self._links:
            raise ValueError("duplicate link %r -> %r" % (source, target))
        link = Link(source, target, capacity, propagation_delay, control_bits)
        self._links[key] = link
        self._adjacency[source].append(target)
        return link

    def link(self, source, target):
        """Return the directed link ``source -> target``."""
        return self._links[(source, target)]

    def has_link(self, source, target):
        return (source, target) in self._links

    def reverse_link(self, link):
        """Return the link in the opposite direction of ``link``."""
        return self._links[(link.target, link.source)]

    def links(self):
        """All directed links, in insertion order."""
        return list(self._links.values())

    def neighbors(self, node_id):
        """Node ids reachable through one outgoing link."""
        return list(self._adjacency[node_id])

    def out_links(self, node_id):
        """Outgoing links of a node."""
        return [self._links[(node_id, target)] for target in self._adjacency[node_id]]

    # ------------------------------------------------------------ host helpers

    def attach_host(
        self,
        router_id,
        capacity,
        propagation_delay,
        host_id=None,
    ):
        """Create a host, connect it to ``router_id`` both ways, and return it.

        This is how the workload generator materialises the paper's
        one-host-per-session sources and destinations.
        """
        if host_id is None:
            self._host_counter += 1
            host_id = "host-%d" % self._host_counter
        host = self.add_host(host_id, attached_router=router_id)
        self.add_link(host_id, router_id, capacity, propagation_delay, bidirectional=True)
        return host

    # ------------------------------------------------------------------ stats

    def number_of_nodes(self):
        return len(self._nodes)

    def number_of_links(self):
        return len(self._links)

    def total_capacity(self):
        """Sum of the capacities of all directed links."""
        return sum(link.capacity for link in self._links.values())

    def is_connected(self):
        """True when every node is reachable from the first node (undirected sense).

        Because links are added in both directions by default, a BFS over
        outgoing links is sufficient.
        """
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    def __repr__(self):
        return "Network(%r, nodes=%d, links=%d)" % (
            self.name,
            len(self._nodes),
            len(self._links),
        )
