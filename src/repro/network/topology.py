"""Small synthetic topologies.

These builders produce the classic textbook configurations used by the unit
tests, the examples and the ablation benchmarks: a single shared link, the
parking-lot / line topology whose max-min allocation is the canonical
water-filling example, stars, dumbbells, trees and random connected meshes.

Every builder returns a :class:`~repro.network.graph.Network` containing only
routers; hosts are attached per session by the workload generator (or manually
through :meth:`Network.attach_host`).
"""

from repro.network.graph import Network
from repro.network.units import MBPS
from repro.simulator.clock import microseconds
from repro.simulator.random_source import RandomSource

DEFAULT_CAPACITY = 100 * MBPS
DEFAULT_DELAY = microseconds(1)


def single_link_topology(capacity=DEFAULT_CAPACITY, delay=DEFAULT_DELAY):
    """Two routers joined by one (bidirectional) link."""
    network = Network("single-link")
    network.add_router("r0")
    network.add_router("r1")
    network.add_link("r0", "r1", capacity, delay)
    return network


def line_topology(router_count, capacity=DEFAULT_CAPACITY, delay=DEFAULT_DELAY):
    """A chain of routers ``r0 - r1 - ... - r{n-1}``."""
    if router_count < 2:
        raise ValueError("a line needs at least two routers")
    network = Network("line-%d" % router_count)
    for index in range(router_count):
        network.add_router("r%d" % index)
    for index in range(router_count - 1):
        network.add_link("r%d" % index, "r%d" % (index + 1), capacity, delay)
    return network


def parking_lot_topology(hop_count, capacity=DEFAULT_CAPACITY, delay=DEFAULT_DELAY):
    """The parking-lot topology: ``hop_count`` links in a row.

    With one long session crossing every link and one short session per link,
    the max-min fair allocation is the standard example used to validate
    water-filling implementations.
    """
    return line_topology(hop_count + 1, capacity=capacity, delay=delay)


def star_topology(leaf_count, capacity=DEFAULT_CAPACITY, delay=DEFAULT_DELAY):
    """A hub router connected to ``leaf_count`` leaf routers."""
    if leaf_count < 1:
        raise ValueError("a star needs at least one leaf")
    network = Network("star-%d" % leaf_count)
    network.add_router("hub")
    for index in range(leaf_count):
        leaf = "leaf%d" % index
        network.add_router(leaf)
        network.add_link("hub", leaf, capacity, delay)
    return network


def dumbbell_topology(
    side_count,
    bottleneck_capacity=DEFAULT_CAPACITY,
    edge_capacity=None,
    delay=DEFAULT_DELAY,
):
    """The dumbbell: ``side_count`` edge routers on each side of one bottleneck.

    The two central routers ``left`` and ``right`` are joined by the bottleneck
    link; every edge router connects to its central router with a (faster)
    edge link.
    """
    if side_count < 1:
        raise ValueError("a dumbbell needs at least one edge router per side")
    if edge_capacity is None:
        edge_capacity = 10 * bottleneck_capacity
    network = Network("dumbbell-%d" % side_count)
    network.add_router("left")
    network.add_router("right")
    network.add_link("left", "right", bottleneck_capacity, delay)
    for index in range(side_count):
        west = "west%d" % index
        east = "east%d" % index
        network.add_router(west)
        network.add_router(east)
        network.add_link(west, "left", edge_capacity, delay)
        network.add_link("right", east, edge_capacity, delay)
    return network


def tree_topology(depth, fanout, capacity=DEFAULT_CAPACITY, delay=DEFAULT_DELAY):
    """A complete ``fanout``-ary tree of routers with the given ``depth``.

    Depth 0 is a single root router.
    """
    if depth < 0 or fanout < 1:
        raise ValueError("depth must be >= 0 and fanout >= 1")
    network = Network("tree-d%d-f%d" % (depth, fanout))
    root = "t-root"
    network.add_router(root)
    current_level = [root]
    for level in range(1, depth + 1):
        next_level = []
        for parent_index, parent in enumerate(current_level):
            for child_index in range(fanout):
                child = "t-%d-%d-%d" % (level, parent_index, child_index)
                network.add_router(child)
                network.add_link(parent, child, capacity, delay)
                next_level.append(child)
        current_level = next_level
    return network


def random_mesh_topology(
    router_count,
    extra_edge_probability=0.1,
    capacity=DEFAULT_CAPACITY,
    delay=DEFAULT_DELAY,
    random_source=None,
):
    """A connected random graph: a random spanning tree plus random extra edges."""
    if router_count < 2:
        raise ValueError("a mesh needs at least two routers")
    if random_source is None:
        random_source = RandomSource(0)
    network = Network("mesh-%d" % router_count)
    names = ["m%d" % index for index in range(router_count)]
    for name in names:
        network.add_router(name)
    # Random spanning tree: each new router connects to a previously added one.
    for index in range(1, router_count):
        parent = names[random_source.randint(0, index - 1)]
        network.add_link(parent, names[index], capacity, delay)
    # Extra edges.
    for first_index in range(router_count):
        for second_index in range(first_index + 1, router_count):
            first, second = names[first_index], names[second_index]
            if network.has_link(first, second):
                continue
            if random_source.random() < extra_edge_probability:
                network.add_link(first, second, capacity, delay)
    return network
