"""Network model substrate.

This package models the system of Section II of the paper: a directed graph of
routers and hosts connected by links with individual bandwidths and propagation
delays, single-path sessions between a source host and a destination host, and
the topology generators used by the evaluation (a gt-itm-style transit-stub
generator plus a collection of small synthetic topologies used by the tests and
examples).
"""

from repro.network.graph import Link, Network, Node
from repro.network.partition import ShardPlan, partition_network
from repro.network.routing import PathComputer, shortest_path
from repro.network.session import Session, SessionRegistry
from repro.network.topology import (
    dumbbell_topology,
    line_topology,
    parking_lot_topology,
    random_mesh_topology,
    single_link_topology,
    star_topology,
    tree_topology,
)
from repro.network.transit_stub import (
    TransitStubParameters,
    big_network,
    generate_transit_stub,
    medium_network,
    small_network,
)
from repro.network.units import GBPS, KBPS, MBPS

__all__ = [
    "GBPS",
    "KBPS",
    "Link",
    "MBPS",
    "Network",
    "Node",
    "PathComputer",
    "Session",
    "SessionRegistry",
    "ShardPlan",
    "TransitStubParameters",
    "big_network",
    "dumbbell_topology",
    "generate_transit_stub",
    "line_topology",
    "medium_network",
    "parking_lot_topology",
    "partition_network",
    "random_mesh_topology",
    "shortest_path",
    "single_link_topology",
    "small_network",
    "star_topology",
    "tree_topology",
]
