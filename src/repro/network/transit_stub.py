"""A gt-itm style transit-stub topology generator.

The paper's evaluation runs on three transit-stub topologies generated with
gt-itm ("a typical Internet transit-stub model"): 110 routers (Small), 1,100
routers (Medium) and 11,000 routers (Big), with

* 100 Mbps links between hosts and stub routers,
* 200 Mbps links between stub routers,
* 500 Mbps links between transit routers (and between transit and stub),

and two delay scenarios:

* **LAN** -- every link has a 1 microsecond propagation delay;
* **WAN** -- every router-to-router link gets a delay drawn uniformly from
  1 to 10 milliseconds, host links keep 1 microsecond.

This module reimplements that structure: a configurable number of transit
domains of interconnected transit routers, each transit router sponsoring a
number of stub domains, each stub domain being a small connected mesh of stub
routers.  The default Small/Medium/Big parameter sets are scaled down (about
110 / 330 / 1,100 routers) so that the Python benchmark harness completes in a
reasonable time; the generator accepts arbitrary sizes for users who want the
paper's full scale.
"""

from repro.network.graph import Network
from repro.network.units import MBPS
from repro.simulator.clock import microseconds, milliseconds
from repro.simulator.random_source import RandomSource

LAN = "lan"
WAN = "wan"

TRANSIT_TIER = "transit"
STUB_TIER = "stub"

HOST_LINK_CAPACITY = 100 * MBPS
STUB_LINK_CAPACITY = 200 * MBPS
TRANSIT_LINK_CAPACITY = 500 * MBPS

HOST_LINK_DELAY = microseconds(1)
LAN_LINK_DELAY = microseconds(1)
WAN_MIN_DELAY = milliseconds(1)
WAN_MAX_DELAY = milliseconds(10)


class TransitStubParameters(object):
    """Size parameters of a transit-stub topology.

    Attributes:
        transit_domains: number of transit domains.
        transit_routers_per_domain: routers inside each transit domain.
        stub_domains_per_transit_router: stub domains sponsored by each
            transit router.
        stub_routers_per_domain: routers inside each stub domain.
        extra_edge_probability: probability of adding a redundant intra-domain
            edge beyond the connecting ring.
    """

    def __init__(
        self,
        transit_domains,
        transit_routers_per_domain,
        stub_domains_per_transit_router,
        stub_routers_per_domain,
        extra_edge_probability=0.15,
    ):
        if min(
            transit_domains,
            transit_routers_per_domain,
            stub_domains_per_transit_router,
            stub_routers_per_domain,
        ) < 1:
            raise ValueError("all transit-stub size parameters must be >= 1")
        self.transit_domains = transit_domains
        self.transit_routers_per_domain = transit_routers_per_domain
        self.stub_domains_per_transit_router = stub_domains_per_transit_router
        self.stub_routers_per_domain = stub_routers_per_domain
        self.extra_edge_probability = extra_edge_probability

    def total_routers(self):
        """Total number of routers the generator will create."""
        transit = self.transit_domains * self.transit_routers_per_domain
        stub = (
            transit
            * self.stub_domains_per_transit_router
            * self.stub_routers_per_domain
        )
        return transit + stub

    def __repr__(self):
        return (
            "TransitStubParameters(T=%d, Nt=%d, S=%d, Ns=%d, routers=%d)"
            % (
                self.transit_domains,
                self.transit_routers_per_domain,
                self.stub_domains_per_transit_router,
                self.stub_routers_per_domain,
                self.total_routers(),
            )
        )


# Default parameter sets.  The paper's Small network has 110 routers; Medium
# and Big are scaled down from 1,100 and 11,000 routers to keep pure-Python
# simulations tractable (see DESIGN.md, substitutions table).
SMALL_PARAMETERS = TransitStubParameters(1, 10, 2, 5)          # 110 routers
MEDIUM_PARAMETERS = TransitStubParameters(1, 11, 3, 9)         # 308 routers
BIG_PARAMETERS = TransitStubParameters(2, 11, 5, 9)            # 1,012 routers
PAPER_MEDIUM_PARAMETERS = TransitStubParameters(2, 10, 6, 9)   # 1,100 routers
PAPER_BIG_PARAMETERS = TransitStubParameters(4, 25, 12, 9)     # 10,900 routers


def _router_link_delay(scenario, delay_source):
    if scenario == LAN:
        return LAN_LINK_DELAY
    if scenario == WAN:
        return delay_source.uniform(WAN_MIN_DELAY, WAN_MAX_DELAY)
    raise ValueError("unknown scenario %r (expected %r or %r)" % (scenario, LAN, WAN))


def _connect_domain(network, members, capacity, scenario, structure_source, delay_source,
                    extra_probability):
    """Connect ``members`` into a ring plus random chords (a connected mesh).

    Structural choices (which chords exist) and delay choices draw from two
    independent random streams, so the LAN and WAN flavours of a topology share
    the exact same link structure for a given seed -- only the delays differ,
    as in the paper's evaluation setup.
    """
    if len(members) == 1:
        return
    for index in range(len(members)):
        first = members[index]
        second = members[(index + 1) % len(members)]
        if len(members) == 2 and index == 1:
            break
        if not network.has_link(first, second):
            network.add_link(
                first, second, capacity, _router_link_delay(scenario, delay_source)
            )
    for first_index in range(len(members)):
        for second_index in range(first_index + 2, len(members)):
            first, second = members[first_index], members[second_index]
            if network.has_link(first, second):
                continue
            if structure_source.random() < extra_probability:
                network.add_link(
                    first, second, capacity, _router_link_delay(scenario, delay_source)
                )


def generate_transit_stub(parameters, scenario=LAN, seed=0, name=None):
    """Generate a transit-stub network.

    Args:
        parameters: a :class:`TransitStubParameters` instance.
        scenario: ``"lan"`` or ``"wan"`` (delay model).
        seed: seed for the topology's random choices.
        name: optional network name.

    Returns:
        A connected :class:`~repro.network.graph.Network` whose routers carry a
        ``tier`` of either ``"transit"`` or ``"stub"``.
    """
    structure_source = RandomSource(seed).fork("transit-stub")
    delay_source = RandomSource(seed).fork("transit-stub-delays")
    if name is None:
        name = "transit-stub-%d-%s" % (parameters.total_routers(), scenario)
    network = Network(name)

    transit_by_domain = []
    for domain_index in range(parameters.transit_domains):
        members = []
        for router_index in range(parameters.transit_routers_per_domain):
            router_id = "t%d.%d" % (domain_index, router_index)
            network.add_router(router_id, tier=TRANSIT_TIER)
            members.append(router_id)
        _connect_domain(
            network,
            members,
            TRANSIT_LINK_CAPACITY,
            scenario,
            structure_source,
            delay_source,
            parameters.extra_edge_probability,
        )
        transit_by_domain.append(members)

    # Interconnect transit domains: each domain links to the next one through a
    # randomly chosen pair of border routers (ring of domains).
    if parameters.transit_domains > 1:
        for domain_index in range(parameters.transit_domains):
            next_index = (domain_index + 1) % parameters.transit_domains
            if parameters.transit_domains == 2 and domain_index == 1:
                break
            first = structure_source.choice(transit_by_domain[domain_index])
            second = structure_source.choice(transit_by_domain[next_index])
            if not network.has_link(first, second):
                network.add_link(
                    first,
                    second,
                    TRANSIT_LINK_CAPACITY,
                    _router_link_delay(scenario, delay_source),
                )

    # Stub domains.
    for domain_index, members in enumerate(transit_by_domain):
        for router_index, transit_router in enumerate(members):
            for stub_index in range(parameters.stub_domains_per_transit_router):
                stub_members = []
                for node_index in range(parameters.stub_routers_per_domain):
                    router_id = "s%d.%d.%d.%d" % (
                        domain_index,
                        router_index,
                        stub_index,
                        node_index,
                    )
                    network.add_router(router_id, tier=STUB_TIER)
                    stub_members.append(router_id)
                _connect_domain(
                    network,
                    stub_members,
                    STUB_LINK_CAPACITY,
                    scenario,
                    structure_source,
                    delay_source,
                    parameters.extra_edge_probability,
                )
                gateway = structure_source.choice(stub_members)
                network.add_link(
                    transit_router,
                    gateway,
                    TRANSIT_LINK_CAPACITY,
                    _router_link_delay(scenario, delay_source),
                )
    return network


def small_network(scenario=LAN, seed=0):
    """The Small topology (about 110 routers), LAN or WAN scenario."""
    return generate_transit_stub(SMALL_PARAMETERS, scenario=scenario, seed=seed, name="small-%s" % scenario)


def medium_network(scenario=LAN, seed=0):
    """The Medium topology (scaled down to about 310 routers)."""
    return generate_transit_stub(MEDIUM_PARAMETERS, scenario=scenario, seed=seed, name="medium-%s" % scenario)


def big_network(scenario=LAN, seed=0):
    """The Big topology (scaled down to about 1,000 routers)."""
    return generate_transit_stub(BIG_PARAMETERS, scenario=scenario, seed=seed, name="big-%s" % scenario)


def stub_routers(network):
    """Return the ids of the stub routers (where hosts attach)."""
    return [node.node_id for node in network.routers() if node.tier == STUB_TIER]


def transit_routers(network):
    """Return the ids of the transit routers."""
    return [node.node_id for node in network.routers() if node.tier == TRANSIT_TIER]
