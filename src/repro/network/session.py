"""Sessions: single-path source/destination pairs with a maximum rate request.

A session (Section II) connects a source host to a destination host along a
static path, and is *greedy*: it wants as much rate as possible up to the
maximum rate it requested (``r_s``, possibly infinite).  The effective demand
seen by the allocation algorithms is ``D_s = min(r_s, C_e0)`` where ``e0`` is
the session's access link.
"""

import math

INFINITE_RATE = math.inf


class Session(object):
    """A single-path session.

    Attributes:
        session_id: unique identifier.
        source: node id of the source host.
        destination: node id of the destination host.
        node_path: list of node ids from source to destination.
        links: list of directed :class:`~repro.network.graph.Link` objects of
            the path (``π(s)`` in the paper), from the access link to the last
            hop into the destination host.
        demand: maximum rate requested by the session (``r_s``), in bits per
            second; ``math.inf`` means "no explicit limit".
    """

    __slots__ = (
        "session_id",
        "source",
        "destination",
        "node_path",
        "links",
        "demand",
        "_link_keys",
    )

    def __init__(self, session_id, source, destination, node_path, links, demand=INFINITE_RATE):
        if len(node_path) < 2:
            raise ValueError("a session path needs at least two nodes")
        if len(links) != len(node_path) - 1:
            raise ValueError("links must match the node path")
        if demand <= 0:
            raise ValueError("session demand must be positive, got %r" % demand)
        self.session_id = session_id
        self.source = source
        self.destination = destination
        self.node_path = list(node_path)
        self.links = list(links)
        self.demand = demand
        # The path is immutable, so membership tests ("does the session cross
        # this link?") are precomputed into an O(1) endpoint-key lookup.
        self._link_keys = frozenset(link.endpoints for link in self.links)

    @property
    def access_link(self):
        """The first link of the path (owned by the SourceNode task)."""
        return self.links[0]

    @property
    def transit_links(self):
        """Every link after the access link (owned by RouterLink tasks)."""
        return self.links[1:]

    @property
    def path_length(self):
        """Number of links in the path."""
        return len(self.links)

    def effective_demand(self):
        """``D_s = min(r_s, C_e0)`` -- the demand after the access-link clamp."""
        return min(self.demand, self.access_link.capacity)

    def crosses(self, link):
        """True when ``link`` is on this session's path."""
        return link.endpoints in self._link_keys

    def __repr__(self):
        return "Session(%r, %r -> %r, hops=%d, demand=%r)" % (
            self.session_id,
            self.source,
            self.destination,
            len(self.links),
            self.demand,
        )

    def __hash__(self):
        return hash(self.session_id)

    def __eq__(self, other):
        return isinstance(other, Session) and self.session_id == other.session_id


class SessionRegistry(object):
    """The set of active sessions, indexed by id and by link.

    This mirrors the paper's ``S`` (active sessions) and ``S_e`` (sessions
    crossing link ``e``); the per-link index is what both the centralized
    oracle and the metrics module iterate over.
    """

    def __init__(self):
        self._sessions = {}
        self._by_link = {}

    def add(self, session):
        """Register an active session."""
        if session.session_id in self._sessions:
            raise ValueError("duplicate session id %r" % (session.session_id,))
        self._sessions[session.session_id] = session
        for link in session.links:
            self._by_link.setdefault(link.endpoints, set()).add(session)
        return session

    def remove(self, session_id):
        """Remove a session (e.g. on ``API.Leave``) and return it."""
        session = self._sessions.pop(session_id)
        for link in session.links:
            members = self._by_link.get(link.endpoints)
            if members is not None:
                members.discard(session)
                if not members:
                    del self._by_link[link.endpoints]
        return session

    def get(self, session_id):
        return self._sessions[session_id]

    def __contains__(self, session_id):
        return session_id in self._sessions

    def __len__(self):
        return len(self._sessions)

    def __iter__(self):
        return iter(self._sessions.values())

    def active_sessions(self):
        """All active sessions, in insertion order."""
        return list(self._sessions.values())

    def sessions_on_link(self, link):
        """The set ``S_e`` of active sessions crossing ``link``."""
        return set(self._by_link.get(link.endpoints, set()))

    def loaded_links(self):
        """Every link crossed by at least one active session."""
        links = []
        seen = set()
        for session in self._sessions.values():
            for link in session.links:
                if link.endpoints not in seen:
                    seen.add(link.endpoints)
                    links.append(link)
        return links

    def update_demand(self, session_id, demand):
        """Change the maximum requested rate of a session (``API.Change``)."""
        if demand <= 0:
            raise ValueError("session demand must be positive, got %r" % demand)
        self._sessions[session_id].demand = demand

    def clear(self):
        self._sessions = {}
        self._by_link = {}
