"""Single-path routing.

Sessions in the paper follow "a shortest path from its source to its
destination node".  Two metrics are supported:

* ``"hops"`` -- breadth-first shortest path by hop count (the default, and the
  one used in the evaluation);
* ``"delay"`` -- Dijkstra over link propagation delays, useful for WAN-flavored
  examples.

:class:`PathComputer` caches router-to-router paths, which matters when a
workload creates tens of thousands of sessions over the same backbone.
"""

import collections
import heapq


def shortest_path(network, source, target, metric="hops"):
    """Return the list of node ids of a shortest path from ``source`` to ``target``.

    Raises ``ValueError`` when no path exists or the metric is unknown.
    """
    if metric == "hops":
        path = _bfs_path(network, source, target)
    elif metric == "delay":
        path = _dijkstra_path(network, source, target)
    else:
        raise ValueError("unknown routing metric %r" % metric)
    if path is None:
        raise ValueError("no path from %r to %r" % (source, target))
    return path


def path_links(network, node_path):
    """Convert a node path to the list of directed links it traverses."""
    return [
        network.link(node_path[index], node_path[index + 1])
        for index in range(len(node_path) - 1)
    ]


def _bfs_path(network, source, target):
    if source == target:
        return [source]
    predecessor = {source: None}
    frontier = collections.deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbor in network.neighbors(current):
            if neighbor in predecessor:
                continue
            predecessor[neighbor] = current
            if neighbor == target:
                return _reconstruct(predecessor, target)
            frontier.append(neighbor)
    return None


def _dijkstra_path(network, source, target):
    if source == target:
        return [source]
    distances = {source: 0.0}
    predecessor = {source: None}
    heap = [(0.0, source)]
    visited = set()
    while heap:
        distance, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        if current == target:
            return _reconstruct(predecessor, target)
        for link in network.out_links(current):
            neighbor = link.target
            candidate = distance + link.propagation_delay
            if neighbor not in distances or candidate < distances[neighbor]:
                distances[neighbor] = candidate
                predecessor[neighbor] = current
                heapq.heappush(heap, (candidate, neighbor))
    return None


def _reconstruct(predecessor, target):
    path = [target]
    while predecessor[path[-1]] is not None:
        path.append(predecessor[path[-1]])
    path.reverse()
    return path


class PathComputer(object):
    """Shortest-path oracle with a router-to-router path cache.

    Host access links are always single-hop, so a host-to-host path is the
    concatenation ``[source_host] + router_path + [destination_host]``; only
    the router-to-router segment is cached.
    """

    def __init__(self, network, metric="hops"):
        self.network = network
        self.metric = metric
        self._cache = {}

    def route(self, source_host, destination_host):
        """Return the node path from ``source_host`` to ``destination_host``."""
        source_node = self.network.node(source_host)
        destination_node = self.network.node(destination_host)
        if source_node.is_host and destination_node.is_host:
            ingress = source_node.attached_router
            egress = destination_node.attached_router
            if ingress is None or egress is None:
                return shortest_path(self.network, source_host, destination_host, self.metric)
            router_path = self.router_route(ingress, egress)
            return [source_host] + router_path + [destination_host]
        return shortest_path(self.network, source_host, destination_host, self.metric)

    def router_route(self, ingress, egress):
        """Return (and cache) the router-level path between two routers."""
        key = (ingress, egress)
        if key not in self._cache:
            self._cache[key] = shortest_path(self.network, ingress, egress, self.metric)
        return list(self._cache[key])

    def route_links(self, source_host, destination_host):
        """Return the directed links of the path between two hosts."""
        return path_links(self.network, self.route(source_host, destination_host))

    def cache_size(self):
        return len(self._cache)
