"""Topology-aware partitioning of a network into shards.

The sharded execution engine (:mod:`repro.simulator.sharding`) assigns every
protocol actor -- RouterLink, SourceNode, DestinationNode -- to one of ``K``
shards and only synchronizes the shards at epoch boundaries.  Its epoch width
(the *lookahead*) is the smallest control delay of any link whose endpoints
live on different shards, so a good partition is one whose cut edges are few
and slow.

Transit-stub topologies (the paper's evaluation networks) have exactly the
structure we want: every stub domain hangs off a single sponsoring transit
router, and only transit-to-transit links connect the sponsors.  The
partitioner therefore builds one *cluster* per transit router -- the router
plus every stub domain it sponsors -- and distributes whole clusters over the
shards (largest first, onto the currently lightest shard).  Cut edges are then
transit-to-transit links only.  Networks without a transit tier (the teaching
topologies) degrade gracefully: every router becomes its own cluster.

Hosts are attached to stub routers *after* the partition is computed (the
workload generator creates one source and one destination host per session),
so :meth:`ShardPlan.shard_of` resolves host ids lazily through the host's
``attached_router`` and caches the answer.  Host access links can therefore
never be cut edges, and attaching hosts never changes the lookahead.
"""

import math

TRANSIT_TIER = "transit"


class ShardPlan(object):
    """The result of partitioning: node -> shard, cut links, and lookahead.

    Attributes:
        network: the partitioned :class:`~repro.network.graph.Network`.
        num_shards: number of shards the plan distributes routers over.
        cut_links: directed links whose endpoints live on different shards.
        lookahead: the smallest :meth:`~repro.network.graph.Link.control_delay`
            among the cut links (``math.inf`` when nothing is cut, e.g. with a
            single shard) -- the safe epoch width of the sharded engine.
    """

    def __init__(self, network, shard_of_router, num_shards):
        self.network = network
        self.num_shards = num_shards
        self._shard_of = dict(shard_of_router)
        self.cut_links = [
            link
            for link in network.links()
            if self._shard_of.get(link.source) is not None
            and self._shard_of.get(link.target) is not None
            and self._shard_of[link.source] != self._shard_of[link.target]
        ]
        self.lookahead = min(
            (link.control_delay() for link in self.cut_links), default=math.inf
        )

    def shard_of(self, node_id):
        """The shard of a node; hosts inherit their attached router's shard."""
        shard = self._shard_of.get(node_id)
        if shard is None:
            node = self.network.node(node_id)
            attached = node.attached_router
            if attached is None:
                raise KeyError(
                    "node %r is not covered by the shard plan and has no "
                    "attached router" % (node_id,)
                )
            shard = self.shard_of(attached)
            self._shard_of[node_id] = shard
        return shard

    def shard_sizes(self):
        """Routers per shard, as a list indexed by shard."""
        sizes = [0] * self.num_shards
        for node_id, shard in self._shard_of.items():
            if self.network.node(node_id).is_router:
                sizes[shard] += 1
        return sizes

    def __repr__(self):
        return "ShardPlan(shards=%d, sizes=%r, cut_links=%d, lookahead=%.3g)" % (
            self.num_shards,
            self.shard_sizes(),
            len(self.cut_links),
            self.lookahead,
        )


def _router_clusters(network):
    """Group routers into clusters that should never be split across shards.

    Transit-stub networks produce one cluster per transit router (the router
    plus the stub domains it sponsors); other networks produce one cluster per
    router.  Clusters are returned in deterministic (insertion) order.
    """
    routers = network.routers()
    transit_ids = [node.node_id for node in routers if node.tier == TRANSIT_TIER]
    if not transit_ids:
        return [[node.node_id] for node in routers]
    transit_set = set(transit_ids)

    # Connected components of the graph restricted to non-transit routers:
    # each one is a stub domain (the generator connects a domain internally
    # and links its gateway to exactly one transit router).
    stub_ids = [node.node_id for node in routers if node.node_id not in transit_set]
    component_of = {}
    components = []
    for stub_id in stub_ids:
        if stub_id in component_of:
            continue
        members = []
        frontier = [stub_id]
        component_of[stub_id] = len(components)
        while frontier:
            current = frontier.pop()
            members.append(current)
            for neighbor in network.neighbors(current):
                if (
                    neighbor in component_of
                    or neighbor in transit_set
                    or not network.node(neighbor).is_router
                ):
                    continue
                component_of[neighbor] = len(components)
                frontier.append(neighbor)
        components.append(members)

    # Anchor each stub component at its sponsoring transit router (the
    # smallest-id transit neighbor, should a topology ever have several).
    clusters = {transit_id: [transit_id] for transit_id in transit_ids}
    orphans = []
    for members in components:
        sponsors = sorted(
            neighbor
            for member in members
            for neighbor in network.neighbors(member)
            if neighbor in transit_set
        )
        if sponsors:
            clusters[sponsors[0]].extend(members)
        else:
            orphans.append(members)
    ordered = [clusters[transit_id] for transit_id in transit_ids]
    ordered.extend(orphans)
    return ordered


def partition_network(network, num_shards):
    """Partition a network's routers into ``num_shards`` shards.

    Whole clusters (transit router + sponsored stub domains, see module
    docstring) are placed largest-first onto the currently lightest shard, so
    shard sizes stay balanced without ever cutting a stub domain in half.
    The assignment is fully deterministic for a given network.

    Returns:
        A :class:`ShardPlan`.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1, got %r" % (num_shards,))
    clusters = _router_clusters(network)
    shard_of_router = {}
    if num_shards == 1:
        for members in clusters:
            for node_id in members:
                shard_of_router[node_id] = 0
        return ShardPlan(network, shard_of_router, 1)

    order = sorted(range(len(clusters)), key=lambda i: (-len(clusters[i]), i))
    loads = [0] * num_shards
    for index in order:
        shard = loads.index(min(loads))
        for node_id in clusters[index]:
            shard_of_router[node_id] = shard
        loads[shard] += len(clusters[index])
    return ShardPlan(network, shard_of_router, num_shards)
