"""Bandwidth units.

All link capacities and session rates in the library are expressed in bits per
second.  The paper configures 100 Mbps host/stub links, 200 Mbps stub-to-stub
links and 500 Mbps transit links.
"""

BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def mbps(value):
    """Return ``value`` megabits per second in bits per second."""
    return float(value) * MBPS


def to_mbps(rate):
    """Convert a rate in bits per second to megabits per second."""
    return float(rate) / MBPS
