"""Experiment 1 (Figure 5): mass arrivals on networks of different sizes.

A number of sessions (swept over a range) join the network uniformly at random
during the first millisecond of the simulation; the experiment measures

* the time B-Neck needs to become quiescent (Figure 5, left), and
* the total number of control packets transmitted (Figure 5, right),

for the Small / Medium / Big topologies in both the LAN and the WAN delay
scenarios.  Every run is validated against the centralized oracle, exactly as
in the paper.

The default sweep is scaled down from the paper's 10..300,000 sessions to
10..1,000 so a pure-Python run completes in minutes; the shapes of the curves
(near-flat for small counts, roughly linear growth once sessions interact,
WAN times dominated by propagation, LAN producing more packets than WAN) are
preserved.  Pass larger ``session_counts`` to push further.
"""

from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.network.transit_stub import LAN, WAN
from repro.simulator.sharding import parse_engine
from repro.workloads.generator import infinite_demand
from repro.workloads.scenarios import NetworkScenario

DEFAULT_SESSION_COUNTS = (10, 30, 100, 300, 1000)
DEFAULT_SIZES = ("small", "medium", "big")
DEFAULT_DELAY_MODELS = (LAN, WAN)


class Experiment1Config(object):
    """Knobs of the Experiment 1 sweep."""

    def __init__(
        self,
        session_counts=DEFAULT_SESSION_COUNTS,
        sizes=DEFAULT_SIZES,
        delay_models=DEFAULT_DELAY_MODELS,
        join_window=1e-3,
        demand_sampler=None,
        seed=0,
        validate=True,
        engine=None,
    ):
        self.session_counts = tuple(session_counts)
        self.sizes = tuple(sizes)
        self.delay_models = tuple(delay_models)
        self.join_window = join_window
        self.demand_sampler = demand_sampler or infinite_demand()
        self.seed = seed
        self.validate = validate
        # "sequential" (default) | "sharded[:K]" | "sharded:K/parallel";
        # validated eagerly so a bad knob fails before any run starts.
        parse_engine(engine)
        self.engine = engine

    def scenarios(self):
        return [
            NetworkScenario(size, delay_model, seed=self.seed)
            for size in self.sizes
            for delay_model in self.delay_models
        ]

    def __repr__(self):
        return "Experiment1Config(counts=%r, sizes=%r, delay_models=%r)" % (
            self.session_counts,
            self.sizes,
            self.delay_models,
        )


class Experiment1Row(object):
    """One point of Figure 5: a (scenario, session count) measurement."""

    def __init__(
        self,
        scenario_label,
        session_count,
        time_to_quiescence,
        total_packets,
        packets_per_session,
        events_processed,
        validated,
    ):
        self.scenario_label = scenario_label
        self.session_count = session_count
        self.time_to_quiescence = time_to_quiescence
        self.total_packets = total_packets
        self.packets_per_session = packets_per_session
        self.events_processed = events_processed
        self.validated = validated

    def as_dict(self):
        return {
            "scenario": self.scenario_label,
            "sessions": self.session_count,
            "time_to_quiescence_ms": self.time_to_quiescence * 1e3,
            "packets": self.total_packets,
            "packets_per_session": self.packets_per_session,
            "events": self.events_processed,
            "validated": self.validated,
        }

    def __repr__(self):
        return (
            "Experiment1Row(%s, sessions=%d, quiescence=%.4g ms, packets=%d, valid=%r)"
            % (
                self.scenario_label,
                self.session_count,
                self.time_to_quiescence * 1e3,
                self.total_packets,
                self.validated,
            )
        )


def run_experiment1_case(scenario, session_count, config=None):
    """Run one (scenario, session count) cell and return its :class:`Experiment1Row`."""
    config = config or Experiment1Config()
    with ExperimentRunner(
        ScenarioSpec.from_network_scenario(
            scenario, validate=config.validate, engine=config.engine
        ),
        generator_seed=config.seed + session_count,
    ) as runner:
        runner.populate(
            session_count,
            join_window=(0.0, config.join_window),
            demand_sampler=config.demand_sampler,
        )
        measurement = runner.checkpoint("mass join of %d sessions" % session_count)
    return Experiment1Row(
        scenario_label=scenario.label,
        session_count=session_count,
        time_to_quiescence=measurement.quiescence_time,
        total_packets=measurement.total_packets,
        packets_per_session=measurement.total_packets / float(session_count),
        events_processed=measurement.events_processed,
        validated=measurement.validated,
    )


def run_experiment1(config=None, progress=None):
    """Run the full Experiment 1 sweep; returns a list of :class:`Experiment1Row`.

    Args:
        config: an :class:`Experiment1Config` (defaults are scaled-down).
        progress: optional callable invoked with each finished row.
    """
    config = config or Experiment1Config()
    rows = []
    for scenario in config.scenarios():
        for session_count in config.session_counts:
            row = run_experiment1_case(scenario, session_count, config)
            rows.append(row)
            if progress is not None:
                progress(row)
    return rows
