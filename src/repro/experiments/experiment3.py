"""Experiment 3 (Figures 7 and 8): B-Neck vs. non-quiescent protocols.

A Medium/LAN network receives a mass join while a tenth of the sessions leave
again, all during the first five milliseconds.  Every ``sample_interval`` the
experiment records, for each protocol under test,

* the distribution of the per-session relative error between the currently
  assigned rate and the max-min fair rate of the final configuration
  (Figure 7, left: "error at sources");
* the distribution of the per-bottleneck-link relative error of the aggregate
  assigned rate (Figure 7, right: "error in network links");
* the number of control packets transmitted in the interval (Figure 8).

The paper compares B-Neck against BFYZ (and reports that CG and RCP failed to
converge in the allotted time beyond 500 sessions); this harness runs any
subset of {B-Neck, BFYZ, CG, RCP} on the *same* workload.
"""

from repro.baselines.bfyz import BFYZProtocol
from repro.baselines.cg import CGProtocol
from repro.baselines.rcp import RCPProtocol
from repro.core.centralized import centralized_bneck
from repro.core.protocol import BNeckProtocol
from repro.experiments.metrics import (
    bottleneck_link_errors,
    convergence_time,
    error_summary,
    relative_errors,
)
from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.network.transit_stub import LAN
from repro.workloads.generator import infinite_demand
from repro.workloads.scenarios import NetworkScenario

BNECK = "bneck"
BFYZ = "bfyz"
CG = "cg"
RCP = "rcp"

PROTOCOL_NAMES = (BNECK, BFYZ, CG, RCP)


class Experiment3Config(object):
    """Knobs of the Experiment 3 comparison."""

    def __init__(
        self,
        size="medium",
        delay_model=LAN,
        initial_sessions=300,
        leave_count=30,
        churn_window=5e-3,
        sample_interval=3e-3,
        horizon=120e-3,
        protocols=(BNECK, BFYZ),
        probe_interval=1e-3,
        demand_sampler=None,
        tolerance_percent=1.0,
        seed=0,
    ):
        unknown = set(protocols) - set(PROTOCOL_NAMES)
        if unknown:
            raise ValueError("unknown protocols %r" % sorted(unknown))
        self.size = size
        self.delay_model = delay_model
        self.initial_sessions = initial_sessions
        self.leave_count = leave_count
        self.churn_window = churn_window
        self.sample_interval = sample_interval
        self.horizon = horizon
        self.protocols = tuple(protocols)
        self.probe_interval = probe_interval
        self.demand_sampler = demand_sampler or infinite_demand()
        self.tolerance_percent = tolerance_percent
        self.seed = seed

    def scenario(self):
        return NetworkScenario(self.size, self.delay_model, seed=self.seed)

    def sample_times(self):
        times = []
        current = self.sample_interval
        while current <= self.horizon + 1e-12:
            times.append(current)
            current += self.sample_interval
        return times

    def __repr__(self):
        return "Experiment3Config(size=%r, sessions=%d, protocols=%r)" % (
            self.size,
            self.initial_sessions,
            self.protocols,
        )


class ProtocolTimeSeries(object):
    """Everything Experiment 3 records about one protocol."""

    def __init__(self, name):
        self.name = name
        self.source_error_series = []   # [(time, SummaryStatistics)]
        self.link_error_series = []     # [(time, SummaryStatistics)]
        self.packets_series = []        # [(interval_start, packets)]
        self.total_packets = 0
        self.convergence_time = None
        self.quiescent = False

    def converged(self):
        return self.convergence_time is not None

    def final_source_error(self):
        if not self.source_error_series:
            return None
        return self.source_error_series[-1][1]

    def __repr__(self):
        return (
            "ProtocolTimeSeries(%r, samples=%d, packets=%d, converged=%r, quiescent=%r)"
            % (
                self.name,
                len(self.source_error_series),
                self.total_packets,
                self.converged(),
                self.quiescent,
            )
        )


class Experiment3Result(object):
    """Per-protocol time series, over an identical workload."""

    def __init__(self, config, series_by_protocol, oracle):
        self.config = config
        self.series_by_protocol = series_by_protocol
        self.oracle = oracle

    def series(self, name):
        return self.series_by_protocol[name]

    def protocol_names(self):
        return list(self.series_by_protocol)

    def __repr__(self):
        return "Experiment3Result(protocols=%r)" % (self.protocol_names(),)


def _build_protocol(name, network, tracer, config):
    if name == BNECK:
        return BNeckProtocol(network, tracer=tracer)
    if name == BFYZ:
        return BFYZProtocol(network, tracer=tracer, probe_interval=config.probe_interval)
    if name == CG:
        return CGProtocol(network, tracer=tracer, probe_interval=config.probe_interval)
    if name == RCP:
        return RCPProtocol(network, tracer=tracer, probe_interval=config.probe_interval)
    raise ValueError("unknown protocol %r" % (name,))


def _run_one_protocol(name, config):
    """Run one protocol over the (re-generated, identical) workload."""
    spec = ScenarioSpec(
        size=config.size,
        delay_model=config.delay_model,
        seed=config.seed,
        name=name,
        tracer_interval=config.sample_interval,
        protocol_factory=lambda network, tracer: _build_protocol(
            name, network, tracer, config
        ),
    )
    with ExperimentRunner(spec, generator_seed=config.seed) as runner:
        return _drive_protocol(name, runner, config)


def _drive_protocol(name, runner, config):
    protocol, generator = runner.protocol, runner.generator

    specs = generator.generate(
        config.initial_sessions,
        join_window=(0.0, config.churn_window),
        demand_sampler=config.demand_sampler,
    )
    installed = runner.install(specs)
    join_time_of = {spec.session_id: spec.join_time for spec in specs}
    leavers = generator.pick_sessions(list(installed), config.leave_count)
    for session_id in leavers:
        # A session can only leave after it has joined; its departure still
        # falls inside the churn window, as in the paper.
        earliest = join_time_of[session_id]
        when = generator.random_times(1, (earliest, config.churn_window))[0]
        protocol.leave(session_id, at=max(when, earliest))

    surviving = [
        session for session_id, session in installed.items() if session_id not in set(leavers)
    ]
    oracle = centralized_bneck(surviving)

    series = ProtocolTimeSeries(name)
    for sample_time in config.sample_times():
        runner.run_until(sample_time)
        assigned = protocol.current_allocation()
        source_errors = relative_errors(assigned, oracle)
        link_errors = bottleneck_link_errors(surviving, assigned, oracle)
        if source_errors:
            series.source_error_series.append((sample_time, error_summary(source_errors)))
        if link_errors:
            series.link_error_series.append((sample_time, error_summary(link_errors)))
    series.packets_series = runner.tracer.totals_per_interval()
    series.total_packets = runner.tracer.total
    series.convergence_time = convergence_time(
        series.source_error_series, config.tolerance_percent
    )
    series.quiescent = protocol.simulator.pending_events == 0
    return series, oracle


def run_experiment3(config=None, progress=None):
    """Run Experiment 3 for every configured protocol on the same workload."""
    config = config or Experiment3Config()
    series_by_protocol = {}
    oracle = None
    for name in config.protocols:
        series, oracle = _run_one_protocol(name, config)
        series_by_protocol[name] = series
        if progress is not None:
            progress(series)
    return Experiment3Result(config, series_by_protocol, oracle)
