"""Experiment 2 (Figure 6): stability of B-Neck under a highly dynamic workload.

A Medium/LAN network goes through five consecutive phases of churn, each
compressed into the first millisecond of its phase:

1. a mass **join** establishes the population;
2. a mass **leave** removes 20% of the sessions;
3. a mass **rate change** alters the demand of 20% of the sessions;
4. another mass **join** adds 20% more sessions;
5. a **mixed** phase joins, leaves and changes 20% each, simultaneously.

The paper reports (a) the time each phase needs to reach quiescence again and
(b) the number of control packets of each type transmitted per 5 ms interval
(Figure 6).  Counts are scaled down from the paper's 100,000-session population
by default (see DESIGN.md); the ratios between phases are preserved.
"""

from repro.experiments.runner import ExperimentRunner, ScenarioSpec
from repro.network.transit_stub import LAN
from repro.workloads.dynamics import DynamicPhase
from repro.workloads.generator import uniform_demand
from repro.workloads.scenarios import NetworkScenario


def DEFAULT_PHASES(initial_sessions, churn_fraction=0.2, window=1e-3):
    """The paper's five phases, scaled to ``initial_sessions``."""
    churn = max(1, int(round(initial_sessions * churn_fraction)))
    return [
        DynamicPhase("join", joins=initial_sessions, window=window),
        DynamicPhase("leave", leaves=churn, window=window),
        DynamicPhase("change", changes=churn, window=window),
        DynamicPhase("join2", joins=churn, window=window),
        DynamicPhase("mixed", joins=churn, leaves=churn, changes=churn, window=window),
    ]


class Experiment2Config(object):
    """Knobs of the Experiment 2 run."""

    def __init__(
        self,
        size="medium",
        delay_model=LAN,
        initial_sessions=500,
        churn_fraction=0.2,
        window=1e-3,
        interval=5e-3,
        inter_phase_gap=1e-3,
        demand_low=1e6,
        demand_high=80e6,
        seed=0,
        validate=True,
        notification_log=None,
        batch_notifications=True,
        notification_batch_window=None,
    ):
        self.size = size
        self.delay_model = delay_model
        self.initial_sessions = initial_sessions
        self.churn_fraction = churn_fraction
        self.window = window
        self.interval = interval
        self.inter_phase_gap = inter_phase_gap
        self.demand_low = demand_low
        self.demand_high = demand_high
        self.seed = seed
        self.validate = validate
        self.notification_log = notification_log
        self.batch_notifications = batch_notifications
        self.notification_batch_window = notification_batch_window

    def phases(self):
        return DEFAULT_PHASES(self.initial_sessions, self.churn_fraction, self.window)

    def scenario(self):
        return NetworkScenario(self.size, self.delay_model, seed=self.seed)

    def spec(self):
        """The :class:`~repro.experiments.runner.ScenarioSpec` of this config."""
        return ScenarioSpec(
            size=self.size,
            delay_model=self.delay_model,
            seed=self.seed,
            tracer_interval=self.interval,
            notification_log=self.notification_log,
            batch_notifications=self.batch_notifications,
            notification_batch_window=self.notification_batch_window,
            validate=self.validate,
        )

    def __repr__(self):
        return "Experiment2Config(size=%r, sessions=%d, churn=%.0f%%)" % (
            self.size,
            self.initial_sessions,
            self.churn_fraction * 100,
        )


class Experiment2Result(object):
    """Per-phase quiescence timings plus the per-interval packet-type series."""

    def __init__(self, config, outcomes, interval_series, validated, rate_callbacks=0,
                 final_allocation=None):
        self.config = config
        self.outcomes = outcomes
        self.interval_series = interval_series
        self.validated = validated
        self.rate_callbacks = rate_callbacks
        self.final_allocation = final_allocation or {}

    def phase_durations(self):
        """``{phase name: seconds until quiescence}``."""
        return {outcome.phase.name: outcome.duration for outcome in self.outcomes}

    def phase_packets(self):
        """``{phase name: control packets transmitted during the phase}``."""
        return {outcome.phase.name: outcome.packets for outcome in self.outcomes}

    def total_packets(self):
        return sum(outcome.packets for outcome in self.outcomes)

    def __repr__(self):
        return "Experiment2Result(phases=%d, total_packets=%d, validated=%r)" % (
            len(self.outcomes),
            self.total_packets(),
            self.validated,
        )


def run_experiment2(config=None, progress=None):
    """Run Experiment 2 and return an :class:`Experiment2Result`."""
    config = config or Experiment2Config()
    demand_sampler = uniform_demand(config.demand_low, config.demand_high)
    with ExperimentRunner(
        config.spec(), generator_seed=config.seed, progress=progress
    ) as runner:
        outcomes = runner.run_phases(
            config.phases(),
            demand_sampler=demand_sampler,
            inter_phase_gap=config.inter_phase_gap,
        )

        validated = True
        if config.validate:
            validated = runner.validate()

        return Experiment2Result(
            config=config,
            outcomes=outcomes,
            interval_series=runner.tracer.interval_series(),
            validated=validated,
            rate_callbacks=runner.protocol.rate_callbacks,
            final_allocation=runner.protocol.notified_allocation().as_dict(),
        )
