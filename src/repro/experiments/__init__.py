"""The paper's evaluation (Section IV): Experiments 1, 2 and 3.

Each experiment module exposes a ``*Config`` class with the workload knobs and
a ``run_experiment*`` function returning a result object that carries exactly
the series plotted in the corresponding paper figure:

* :mod:`~repro.experiments.experiment1` -- Figure 5: time to quiescence and
  total control packets vs. number of simultaneously arriving sessions, over
  the Small/Medium/Big networks in LAN and WAN flavours;
* :mod:`~repro.experiments.experiment2` -- Figure 6: packets of each type per
  interval across five phases of churn, plus per-phase quiescence times;
* :mod:`~repro.experiments.experiment3` -- Figures 7 and 8: relative rate error
  at sources and at bottleneck links over time, and packets per interval, for
  B-Neck vs. the non-quiescent baselines.

:mod:`~repro.experiments.metrics` holds the error definitions and
:mod:`~repro.experiments.reporting` renders result objects as plain-text tables
(the benchmark harness prints these).

:mod:`~repro.experiments.runner` is the shared scaffolding underneath all
three harnesses: :class:`~repro.experiments.runner.ScenarioSpec` declares a
protocol-under-workload run and
:class:`~repro.experiments.runner.ExperimentRunner` builds, drives, validates
and measures it.  The examples and the opt-in paper-scale benchmarks use the
same entry point.
"""

from repro.experiments.experiment1 import (
    Experiment1Config,
    Experiment1Row,
    run_experiment1,
    run_experiment1_case,
)
from repro.experiments.experiment2 import (
    DEFAULT_PHASES,
    Experiment2Config,
    Experiment2Result,
    run_experiment2,
)
from repro.experiments.experiment3 import (
    Experiment3Config,
    Experiment3Result,
    ProtocolTimeSeries,
    run_experiment3,
)
from repro.experiments.metrics import (
    bottleneck_link_errors,
    error_summary,
    relative_errors,
)
from repro.experiments.reporting import (
    format_experiment1_table,
    format_experiment2_table,
    format_experiment3_table,
    format_table,
)
from repro.experiments.runner import (
    ExperimentRunner,
    RunMeasurement,
    ScenarioSpec,
)

__all__ = [
    "DEFAULT_PHASES",
    "Experiment1Config",
    "Experiment1Row",
    "Experiment2Config",
    "Experiment2Result",
    "Experiment3Config",
    "Experiment3Result",
    "ExperimentRunner",
    "ProtocolTimeSeries",
    "RunMeasurement",
    "ScenarioSpec",
    "bottleneck_link_errors",
    "error_summary",
    "format_experiment1_table",
    "format_experiment2_table",
    "format_experiment3_table",
    "format_table",
    "relative_errors",
    "run_experiment1",
    "run_experiment1_case",
    "run_experiment2",
    "run_experiment3",
]
