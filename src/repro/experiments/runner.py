"""Shared run-measure-validate-report scaffolding of the experiments.

Every experiment (and example, and benchmark) repeats the same skeleton: build
a network from a named scenario, put a protocol with a packet tracer on it,
generate a random workload, run to quiescence (or a horizon), validate the
final allocation against the centralized oracle, and report packet/event
counts.  :class:`ScenarioSpec` captures the *what* declaratively;
:class:`ExperimentRunner` owns the *how* and hands back
:class:`RunMeasurement` snapshots.

Typical use::

    spec = ScenarioSpec(size="medium", delay_model=LAN, seed=3,
                        notification_log="ring")
    runner = ExperimentRunner(spec, generator_seed=3)
    runner.populate(400, join_window=(0.0, 1e-3))
    measurement = runner.checkpoint("mass join")
    assert measurement.validated

Custom topologies plug in through ``network_builder`` (the examples use this
with the hand-built teaching topologies), and the baseline protocols through
``protocol_factory`` (Experiment 3 runs B-Neck and BFYZ/CG/RCP over identical
workloads this way).
"""

from repro.core.actions import schedule_actions
from repro.core.protocol import BNeckProtocol
from repro.core.validation import validate_against_oracle
from repro.network.partition import partition_network
from repro.network.transit_stub import LAN
from repro.simulator.sharding import SEQUENTIAL, ShardedSimulator, parse_engine
from repro.simulator.tracing import NullPacketTracer, PacketTracer
from repro.workloads.dynamics import apply_phase
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import NetworkScenario
from repro.workloads.stochastic import make_workload


class ScenarioSpec(object):
    """Declarative description of a protocol-under-workload run.

    Exactly one network source applies, checked in this order: an explicit
    ``network`` object, a zero-argument ``network_builder`` callable, or a
    named transit-stub scenario (``size`` + ``delay_model`` + ``seed``).

    Args:
        size: named topology size (``"small"`` ... ``"paper-big"``).
        delay_model: ``"lan"`` or ``"wan"``.
        seed: topology-generation seed (also the default generator seed).
        name: label override used in reports.
        network: a prebuilt :class:`~repro.network.graph.Network`.
        network_builder: zero-argument callable returning a network.
        protocol_factory: ``(network, tracer) -> protocol`` override; defaults
            to :class:`~repro.core.protocol.BNeckProtocol` with this spec's
            notification knobs.
        tracer_interval: bucket width for per-interval packet accounting
            (``None`` keeps a plain total-counting tracer).
        trace_packets: disable to install a
            :class:`~repro.simulator.tracing.NullPacketTracer` (fastest).
        notification_log: ``"full"`` / ``"ring[:N]"`` / ``"null"`` or a log
            object, forwarded to the protocol.
        batch_notifications: per-instant ``API.Rate`` coalescing (default on).
        notification_batch_window: optional coalescing window in seconds
            (see :class:`~repro.core.protocol.BNeckProtocol`).
        routing_metric: ``"hops"`` (paper default) or ``"delay"``.
        validate: whether :meth:`ExperimentRunner.checkpoint` validates
            against the centralized oracle.
        workload: optional stochastic-workload reference (a registered name
            like ``"poisson-churn"``, a class, or an instance -- see
            :mod:`repro.workloads.stochastic`), the default for
            :meth:`ExperimentRunner.run_scenario`.
        engine: execution engine -- ``"sequential"`` (default, the
            single-queue :class:`~repro.simulator.simulation.Simulator`),
            ``"sharded:K"`` (K event-queue shards advancing in lockstep
            epochs, deterministic and bit-identical in final allocations to
            sequential), or ``"sharded:K/parallel"`` (a persistent pool of
            one worker process per shard, resident across runs: multi-phase
            churn where each phase is scheduled after the previous phase's
            quiescence runs on all cores, sharing the serial engines'
            bit-exact schedule).  Incompatible with ``protocol_factory``.
    """

    def __init__(
        self,
        size=None,
        delay_model=LAN,
        seed=0,
        name=None,
        network=None,
        network_builder=None,
        protocol_factory=None,
        tracer_interval=None,
        trace_packets=True,
        notification_log=None,
        batch_notifications=True,
        notification_batch_window=None,
        routing_metric="hops",
        validate=True,
        engine=SEQUENTIAL,
        workload=None,
    ):
        if network is None and network_builder is None and size is None:
            raise ValueError("need a network, a network_builder or a named size")
        engine_kind, engine_shards, engine_parallel = parse_engine(engine)
        if engine_kind != SEQUENTIAL and protocol_factory is not None:
            raise ValueError(
                "engine=%r cannot be combined with protocol_factory (the "
                "factory owns simulator construction)" % (engine,)
            )
        self.engine = engine if engine is not None else SEQUENTIAL
        self.engine_kind = engine_kind
        self.engine_shards = engine_shards
        self.engine_parallel = engine_parallel
        self.size = size
        self.delay_model = delay_model
        self.seed = seed
        self.name = name
        self.network = network
        self.network_builder = network_builder
        self.protocol_factory = protocol_factory
        self.tracer_interval = tracer_interval
        self.trace_packets = trace_packets
        self.notification_log = notification_log
        self.batch_notifications = batch_notifications
        self.notification_batch_window = notification_batch_window
        self.routing_metric = routing_metric
        self.validate = validate
        self.workload = workload

    @classmethod
    def from_network_scenario(cls, scenario, **overrides):
        """Build a spec from a :class:`~repro.workloads.scenarios.NetworkScenario`.

        The scenario's own ``build`` is kept as the network builder, so a
        subclass with customized topology construction stays in charge.
        """
        overrides.setdefault("size", scenario.size)
        overrides.setdefault("delay_model", scenario.delay_model)
        overrides.setdefault("seed", scenario.seed)
        overrides.setdefault("network_builder", scenario.build)
        return cls(**overrides)

    @property
    def label(self):
        if self.name is not None:
            return self.name
        if self.size is not None:
            return "%s-%s" % (self.size, self.delay_model)
        network = self.network
        if network is not None and getattr(network, "name", None):
            return network.name
        return "custom"

    # ----------------------------------------------------------------- builders

    def build_network(self):
        if self.network is not None:
            return self.network
        if self.network_builder is not None:
            return self.network_builder()
        return NetworkScenario(self.size, self.delay_model, seed=self.seed).build()

    def build_tracer(self):
        if not self.trace_packets:
            return NullPacketTracer()
        if self.tracer_interval is not None:
            return PacketTracer(interval=self.tracer_interval)
        return PacketTracer()

    def build_protocol(self, network, tracer):
        if self.protocol_factory is not None:
            return self.protocol_factory(network, tracer)
        simulator = None
        plan = None
        if self.engine_kind != SEQUENTIAL:
            plan = partition_network(network, self.engine_shards)
            simulator = ShardedSimulator(
                plan, parallel=self.engine_parallel, seed=self.seed
            )
        protocol = BNeckProtocol(
            network,
            simulator=simulator,
            tracer=tracer,
            routing_metric=self.routing_metric,
            notification_log=self.notification_log,
            batch_notifications=self.batch_notifications,
            notification_batch_window=self.notification_batch_window,
        )
        if plan is not None:
            protocol.use_shard_plan(plan)
        return protocol

    def __repr__(self):
        return "ScenarioSpec(%r, seed=%d, log=%r, batch=%r, engine=%r)" % (
            self.label,
            self.seed,
            self.notification_log,
            self.batch_notifications,
            self.engine,
        )


class RunMeasurement(object):
    """One measured checkpoint: counters since the previous checkpoint.

    ``packets`` and ``rate_callbacks`` are deltas relative to the previous
    :meth:`ExperimentRunner.checkpoint` call (equal to the totals on the
    first); ``total_packets`` / ``events_processed`` are run-wide totals.
    """

    __slots__ = (
        "label",
        "description",
        "quiescence_time",
        "packets",
        "total_packets",
        "events_processed",
        "rate_callbacks",
        "validated",
    )

    def __init__(self, label, description, quiescence_time, packets, total_packets,
                 events_processed, rate_callbacks, validated):
        self.label = label
        self.description = description
        self.quiescence_time = quiescence_time
        self.packets = packets
        self.total_packets = total_packets
        self.events_processed = events_processed
        self.rate_callbacks = rate_callbacks
        self.validated = validated

    def as_dict(self):
        return {
            "label": self.label,
            "description": self.description,
            "quiescence_time_ms": self.quiescence_time * 1e3,
            "packets": self.packets,
            "total_packets": self.total_packets,
            "events": self.events_processed,
            "rate_callbacks": self.rate_callbacks,
            "validated": self.validated,
        }

    def __repr__(self):
        return "RunMeasurement(%r, quiescence=%.4g ms, packets=%d, valid=%r)" % (
            self.label,
            self.quiescence_time * 1e3,
            self.packets,
            self.validated,
        )


class ExperimentRunner(object):
    """Owns one protocol run: build, populate, drive, measure, validate.

    Args:
        spec: the :class:`ScenarioSpec` to realise.
        generator_seed: seed of the :class:`~repro.workloads.generator.WorkloadGenerator`
            (defaults to ``spec.seed``).
        progress: optional callable invoked with every
            :class:`~repro.workloads.dynamics.PhaseOutcome` produced by
            :meth:`run_phase` / :meth:`run_phases`.
    """

    def __init__(self, spec, generator_seed=None, progress=None):
        self.spec = spec
        self.progress = progress
        self.network = spec.build_network()
        self.tracer = spec.build_tracer()
        self.protocol = spec.build_protocol(self.network, self.tracer)
        self.generator_seed = spec.seed if generator_seed is None else generator_seed
        self._generator = None
        self.active_ids = []
        self._packets_at_checkpoint = 0
        self._callbacks_at_checkpoint = 0

    @property
    def generator(self):
        """The workload generator (created lazily: custom-topology runs that
        drive the session API by hand never need one)."""
        if self._generator is None:
            self._generator = WorkloadGenerator(self.network, seed=self.generator_seed)
        return self._generator

    # ----------------------------------------------------------------- workload

    def populate(self, count, join_window=(0.0, 1e-3), demand_sampler=None, prefix="s"):
        """Generate and install ``count`` random sessions; returns ``{id: session}``."""
        specs = self.generator.generate(count, join_window, demand_sampler, prefix)
        return self.install(specs)

    def install(self, specs):
        """Install pre-generated session specs and track their ids as active.

        Specs travel as broadcastable
        :class:`~repro.core.actions.JoinAction` records through the
        protocol's engine-transparent entry point (via
        :meth:`~repro.workloads.generator.WorkloadGenerator.install`), so
        installing works identically before a run, between phases on a
        serial engine, and between phases of a persistent-worker parallel
        run (where the batch is replayed in every worker).  Returns
        ``{session_id: session}``.
        """
        installed = self.generator.install(self.protocol, specs)
        self.active_ids.extend(installed)
        return installed

    def apply_actions(self, actions):
        """Broadcast a pre-resolved action batch and maintain membership.

        ``actions`` are :mod:`repro.core.actions` records (joins, leaves,
        changes, capacity changes) with every random choice resolved -- the
        currency of the stochastic workload library.  The batch goes through
        the protocol's engine-transparent entry point, and the runner's
        ``active_ids`` tracks the joins and leaves it contains.
        """
        actions = list(actions)
        result = schedule_actions(self.protocol, actions)
        joined = [action.session_id for action in actions if action.kind == "join"]
        left = {action.session_id for action in actions if action.kind == "leave"}
        self.active_ids = [
            session_id for session_id in self.active_ids if session_id not in left
        ] + [session_id for session_id in joined if session_id not in left]
        return result

    def run_scenario(self, workload=None, **parameters):
        """Drive a stochastic workload end to end; returns the measurements.

        ``workload`` (default: the spec's ``workload``) resolves through
        :func:`repro.workloads.stochastic.make_workload`; extra keyword
        arguments construct it when a name or class is given.  Each round the
        workload yields is broadcast, run to quiescence, measured and -- per
        the spec -- validated against the centralized/water-filling oracles,
        so every capacity change is checked on the *updated* network.
        Returns one :class:`RunMeasurement` per round.
        """
        if workload is None:
            workload = self.spec.workload
        if workload is None:
            raise ValueError(
                "no workload given and the ScenarioSpec names none; pass "
                "run_scenario(workload=...) or ScenarioSpec(workload=...)"
            )
        workload = make_workload(workload, **parameters)
        measurements = []
        for label, actions in workload.rounds(self):
            self.apply_actions(actions)
            measurement = self.checkpoint(label)
            if not measurement.validated:
                raise RuntimeError(
                    "allocation failed oracle validation after round %r of "
                    "workload %r" % (label, workload.name)
                )
            measurements.append(measurement)
        return measurements

    def run_phase(self, phase, start_time=None, demand_sampler=None,
                  change_demand_sampler=None, run_to_quiescence=True):
        """Apply one churn phase, maintain membership, and report its outcome."""
        outcome = apply_phase(
            self.protocol,
            self.generator,
            phase,
            self.active_ids,
            start_time=start_time,
            demand_sampler=demand_sampler,
            change_demand_sampler=change_demand_sampler,
            run_to_quiescence=run_to_quiescence,
        )
        removed = set(outcome.left_ids)
        self.active_ids = [
            session_id for session_id in self.active_ids if session_id not in removed
        ] + outcome.joined_ids
        if self.progress is not None:
            self.progress(outcome)
        return outcome

    def run_phases(self, phases, demand_sampler=None, inter_phase_gap=0.0):
        """Run consecutive churn phases, each to quiescence; returns the outcomes.

        The first phase starts at the simulator's current time (so phases
        scheduled after an earlier checkpoint are real future schedules on
        every engine, rather than relying on past-dated API calls executing
        immediately); each subsequent phase starts at the previous phase's
        observed quiescence time plus ``inter_phase_gap``.
        """
        outcomes = []
        start_time = self.protocol.simulator.now
        for phase in phases:
            outcome = self.run_phase(
                phase, start_time=start_time, demand_sampler=demand_sampler
            )
            outcomes.append(outcome)
            start_time = outcome.quiescence_time + inter_phase_gap
        return outcomes

    # ------------------------------------------------------------------ driving

    def run_until(self, time):
        """Advance the simulation to an absolute time horizon."""
        return self.protocol.run(until=time)

    def run_to_quiescence(self):
        """Run until the event queue drains; returns the quiescence time."""
        return self.protocol.run_until_quiescent()

    def close(self):
        """Release engine resources (persistent parallel workers, if any).

        Optional -- the worker pool is also reaped when the engine is garbage
        collected -- but deterministic teardown is friendlier in loops over
        many runners.  Idempotent; serial engines ignore it.
        """
        shutdown = getattr(self.protocol.simulator, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def __enter__(self):
        """Context-manager support: ``with ExperimentRunner(spec) as runner``.

        Guarantees :meth:`close` runs even when a phase raises mid-run, so a
        failing experiment can never leak a persistent worker pool.
        """
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # ---------------------------------------------------------------- measuring

    def validate(self):
        """Validate the current allocation against the centralized oracle."""
        return validate_against_oracle(self.protocol).valid

    def checkpoint(self, description=None):
        """Run to quiescence, validate (per the spec) and measure.

        Returns a :class:`RunMeasurement` whose ``packets`` and
        ``rate_callbacks`` count only the work since the previous checkpoint.
        """
        quiescence_time = self.run_to_quiescence()
        validated = self.validate() if self.spec.validate else True
        total_packets = self.tracer.total
        rate_callbacks = getattr(self.protocol, "rate_callbacks", 0)
        measurement = RunMeasurement(
            label=self.spec.label,
            description=description,
            quiescence_time=quiescence_time,
            packets=total_packets - self._packets_at_checkpoint,
            total_packets=total_packets,
            events_processed=self.protocol.simulator.events_processed,
            rate_callbacks=rate_callbacks - self._callbacks_at_checkpoint,
            validated=validated,
        )
        self._packets_at_checkpoint = total_packets
        self._callbacks_at_checkpoint = rate_callbacks
        return measurement

    def __repr__(self):
        return "ExperimentRunner(%r, active_sessions=%d, now=%r)" % (
            self.spec.label,
            len(self.active_ids),
            self.protocol.simulator.now,
        )
