"""Error metrics of Experiment 3 (Figure 7).

The paper evaluates the accuracy of the transient rates with two relative
errors, both in percent:

* **error at sources** -- per session, ``e = 100 * (a - x) / x`` where ``a`` is
  the rate currently assigned by the protocol and ``x`` the max-min fair rate
  of the final session configuration.  Positive errors mean over-estimation
  (risk of overload), negative errors mean under-estimation (unused capacity);
* **error in network links** -- per *bottleneck* link, the relative error
  between the sum of assigned rates of the sessions crossing it and the sum of
  their max-min fair rates, ``e = 100 * (sa - sx) / sx``.  This measures the
  stress the protocol puts on the links that matter.
"""

from repro.fairness.bottleneck import analyze_bottlenecks
from repro.simulator.statistics import summarize


def relative_errors(assigned, reference, session_ids=None):
    """Per-session percentage errors ``100 * (assigned - reference) / reference``.

    Sessions without a reference rate, or with a zero reference rate, are
    skipped (they carry no information about accuracy).
    """
    if session_ids is None:
        session_ids = reference.session_ids()
    errors = []
    for session_id in session_ids:
        if session_id not in reference:
            continue
        expected = float(reference.rate(session_id))
        if expected <= 0.0:
            continue
        actual = float(assigned.get(session_id, 0.0))
        errors.append(100.0 * (actual - expected) / expected)
    return errors


def error_summary(errors):
    """The aggregate plotted in Figure 7: mean, median, 10th and 90th percentiles."""
    return summarize(errors)


def bottleneck_link_errors(sessions, assigned, reference, algebra=None):
    """Per-bottleneck-link percentage errors of the aggregate assigned rate.

    Bottleneck links are identified on the *reference* (max-min fair)
    allocation; for each such link the error compares the total assigned rate
    of the crossing sessions against their total max-min rate.
    """
    sessions = list(sessions)
    analysis = analyze_bottlenecks(sessions, reference, algebra=algebra)
    errors = []
    for link in analysis.saturated_links():
        endpoints = link.endpoints
        # The analysis already indexed the crossing sessions per link; sorted
        # so the float sums below are order-stable across processes.
        crossing = sorted(
            analysis.restricted.get(endpoints, ())
        ) + sorted(analysis.unrestricted.get(endpoints, ()))
        expected = sum(float(reference.get(session_id, 0.0)) for session_id in crossing)
        if expected <= 0.0:
            continue
        actual = sum(float(assigned.get(session_id, 0.0)) for session_id in crossing)
        errors.append(100.0 * (actual - expected) / expected)
    return errors


def convergence_time(error_series, tolerance_percent=1.0):
    """The first sample time after which the worst error stays within tolerance.

    ``error_series`` is a list of ``(time, SummaryStatistics)``.  Returns
    ``None`` when the series never settles inside the tolerance band.
    """
    converged_at = None
    for time, stats in error_series:
        worst = max(abs(stats.minimum), abs(stats.maximum))
        if worst <= tolerance_percent:
            if converged_at is None:
                converged_at = time
        else:
            converged_at = None
    return converged_at
