"""Plain-text rendering of experiment results.

The benchmark harness and the examples print these tables: they carry the same
rows/series as the paper's Figures 5-8, so a reader can compare shapes (who
wins, by roughly what factor, where the curves bend) without any plotting
dependency.
"""


def format_table(headers, rows):
    """Render ``rows`` (sequences of cells) under ``headers`` with aligned columns."""
    headers = [str(header) for header in headers]
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell):
    if isinstance(cell, float):
        return "%.4g" % cell
    return str(cell)


def format_experiment1_table(rows):
    """Figure 5 as a table: quiescence time and packets per scenario and count."""
    headers = (
        "scenario",
        "sessions",
        "quiescence [ms]",
        "packets",
        "packets/session",
        "validated",
    )
    table_rows = [
        (
            row.scenario_label,
            row.session_count,
            row.time_to_quiescence * 1e3,
            row.total_packets,
            row.packets_per_session,
            "yes" if row.validated else "NO",
        )
        for row in rows
    ]
    return format_table(headers, table_rows)


def format_experiment2_table(result):
    """Figure 6 as two tables: per-phase timings and per-interval packet types."""
    phase_headers = ("phase", "joins", "leaves", "changes", "quiescence [ms]", "packets")
    phase_rows = [
        (
            outcome.phase.name,
            outcome.phase.joins,
            outcome.phase.leaves,
            outcome.phase.changes,
            outcome.duration * 1e3,
            outcome.packets,
        )
        for outcome in result.outcomes
    ]
    phase_table = format_table(phase_headers, phase_rows)

    packet_types = sorted(
        {ptype for _, counts in result.interval_series for ptype in counts}
    )
    interval_headers = ["interval start [ms]"] + packet_types + ["total"]
    interval_rows = []
    for start, counts in result.interval_series:
        row = [start * 1e3] + [counts.get(ptype, 0) for ptype in packet_types]
        row.append(sum(counts.values()))
        interval_rows.append(tuple(row))
    interval_table = format_table(interval_headers, interval_rows)
    return phase_table + "\n\n" + interval_table


def format_experiment3_table(result):
    """Figures 7 and 8 as tables: error percentiles and packets per interval."""
    sections = []
    for name in result.protocol_names():
        series = result.series(name)
        headers = (
            "time [ms]",
            "src err p10",
            "src err median",
            "src err p90",
            "src err mean",
            "link err mean",
            "packets/interval",
        )
        interval = result.config.sample_interval
        # Packet buckets are matched by index (not by float key) to avoid
        # floating-point mismatches between bucket starts and sample times.
        packets_by_bucket = {
            int(round(start / interval)): total for start, total in series.packets_series
        }
        link_by_time = dict(series.link_error_series)
        rows = []
        for time, stats in series.source_error_series:
            link_stats = link_by_time.get(time)
            bucket = int(round(time / interval)) - 1
            rows.append(
                (
                    time * 1e3,
                    stats.p10,
                    stats.median,
                    stats.p90,
                    stats.mean,
                    link_stats.mean if link_stats is not None else float("nan"),
                    packets_by_bucket.get(bucket, 0),
                )
            )
        convergence = (
            "%.4g ms" % (series.convergence_time * 1e3)
            if series.convergence_time is not None
            else "not converged"
        )
        sections.append(
            "protocol: %s   (convergence: %s, quiescent: %s, total packets: %d)\n%s"
            % (
                name,
                convergence,
                "yes" if series.quiescent else "no",
                series.total_packets,
                format_table(headers, rows),
            )
        )
    return "\n\n".join(sections)
