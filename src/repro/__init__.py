"""Reproduction of *B-Neck: A Distributed and Quiescent Max-min Fair Algorithm*.

Mozo, Lopez-Presa, Fernandez Anta (IEEE NCA 2011).

The library is organised as one package per system of the paper (see
``DESIGN.md`` for the full inventory):

* :mod:`repro.simulator` -- discrete-event simulation engine;
* :mod:`repro.network` -- network graph, routing, sessions, topologies;
* :mod:`repro.fairness` -- max-min fairness theory (water-filling, bottleneck
  analysis, verification);
* :mod:`repro.core` -- the B-Neck protocol (distributed and centralized);
* :mod:`repro.baselines` -- non-quiescent comparison protocols (BFYZ, CG, RCP);
* :mod:`repro.workloads` -- session workload and dynamics generators;
* :mod:`repro.experiments` -- the paper's Experiments 1-3 and their metrics.

Quickstart::

    from repro import BNeckProtocol, dumbbell_topology, MBPS

    network = dumbbell_topology(side_count=2, bottleneck_capacity=100 * MBPS)
    source = network.attach_host("west0", 1000 * MBPS, 1e-6)
    sink = network.attach_host("east0", 1000 * MBPS, 1e-6)
    protocol = BNeckProtocol(network)
    session, app = protocol.open_session(source.node_id, sink.node_id)
    protocol.run_until_quiescent()
    print(app.current_rate)
"""

from repro.core import BNeckProtocol, centralized_bneck, validate_against_oracle
from repro.fairness import RateAllocation, is_max_min_fair, water_filling
from repro.network import (
    MBPS,
    Network,
    Session,
    dumbbell_topology,
    line_topology,
    medium_network,
    parking_lot_topology,
    small_network,
    star_topology,
)
from repro.simulator import Simulator, microseconds, milliseconds

__version__ = "1.0.0"

__all__ = [
    "BNeckProtocol",
    "MBPS",
    "Network",
    "RateAllocation",
    "Session",
    "Simulator",
    "__version__",
    "centralized_bneck",
    "dumbbell_topology",
    "is_max_min_fair",
    "line_topology",
    "medium_network",
    "microseconds",
    "milliseconds",
    "parking_lot_topology",
    "small_network",
    "star_topology",
    "validate_against_oracle",
    "water_filling",
]
